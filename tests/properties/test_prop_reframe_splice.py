"""Header splice-patching is invisible: ``reframe`` byte-equivalence.

``EnvelopeCodec.reframe`` patches a single string attribute directly in
the frame's header bytes (the ack-stamp hot path) instead of parsing and
re-rendering the XML.  The splice is an optimisation, not a behaviour
change: for every generated envelope — arbitrary attribute values
including every XML-escaped character, percent-encoded ``keys`` attrs,
batches, trace ids — the spliced frame must be byte-identical to what a
``splice_enabled=False`` codec produces by full re-render, splice after
splice.  Legacy all-XML frames and multi-attribute changes must fall
back (``header_splices`` stays flat) and still agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serialization.envelope import (
    EnvelopeCodec,
    ObjectEnvelope,
    TypeEntry,
)

#: Exercises every XML-escaped character (& < > " plus tab/CR/LF) and the
#: percent sign the keys codec escapes with.  Control characters are
#: excluded: the re-render baseline reparses the XML it produced, and
#: bare control chars are not representable in XML 1.0 text.
_ATTR_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    " <>&\"'%/|,.-_=+\t\r\n"
)

attr_text = st.text(alphabet=_ATTR_ALPHABET, max_size=24)
opt_attr = st.none() | attr_text

#: The single-string attributes the splice path handles.
_SPLICEABLE = ("origin", "ack", "publish_ack", "home", "trace")


@st.composite
def envelopes(draw):
    n_types = draw(st.integers(1, 3))
    entries = [
        TypeEntry("demo.T%d" % index, "guid-%d" % index, "asm-%d" % index,
                  draw(st.none() | st.just("repo://t%d/1.0" % index)))
        for index in range(n_types)
    ]
    batch_roots = None
    keys = None
    if draw(st.booleans()):
        count = draw(st.integers(1, 3))
        batch_roots = [draw(st.integers(0, n_types - 1))
                       for _ in range(count)]
        if draw(st.booleans()):
            keys = [draw(opt_attr) for _ in range(count)]
    return ObjectEnvelope(
        entries, "binary", draw(st.binary(max_size=48)),
        batch_roots=batch_roots,
        origin=draw(opt_attr),
        ack=draw(opt_attr),
        publish_ack=draw(opt_attr),
        home=draw(opt_attr),
        keys=keys,
        trace=draw(opt_attr),
    )


def codec_pair():
    fast = EnvelopeCodec()
    slow = EnvelopeCodec()
    slow.splice_enabled = False
    return fast, slow


@settings(max_examples=150, deadline=None)
@given(envelope=envelopes(), name=st.sampled_from(_SPLICEABLE),
       value=opt_attr)
def test_splice_is_byte_identical_to_rerender(envelope, name, value):
    fast, slow = codec_pair()
    data = fast.envelope_to_bytes(envelope)
    renders_before = fast.stats.header_renders
    patched = fast.reframe(data, **{name: value})
    assert patched == slow.reframe(data, **{name: value})
    if isinstance(value, str):
        # The string change went down the splice path: one splice, no
        # XML re-render.
        assert fast.stats.header_splices == 1
        assert fast.stats.header_renders == renders_before
    # The patched frame still parses, with the attribute applied.
    assert getattr(fast.parse(patched), name) == value


@settings(max_examples=100, deadline=None)
@given(envelope=envelopes(),
       ops=st.lists(st.tuples(st.sampled_from(_SPLICEABLE), opt_attr),
                    min_size=1, max_size=4))
def test_chained_splices_stay_equivalent(envelope, ops):
    """Splice-of-a-splice: the patched frame is itself a valid splice
    target, and every intermediate stays byte-equal to the re-render
    baseline walking the same sequence."""
    fast, slow = codec_pair()
    fast_data = fast.envelope_to_bytes(envelope)
    slow_data = fast_data
    for name, value in ops:
        fast_data = fast.reframe(fast_data, **{name: value})
        slow_data = slow.reframe(slow_data, **{name: value})
        assert fast_data == slow_data


def test_multi_attribute_change_falls_back_to_rerender():
    fast, slow = codec_pair()
    envelope = ObjectEnvelope(
        [TypeEntry("demo.T", "guid-0", "asm", None)], "binary", b"\x01\x02")
    data = fast.envelope_to_bytes(envelope)
    out = fast.reframe(data, ack="tok", trace="tid")
    assert fast.stats.header_splices == 0
    assert out == slow.reframe(data, ack="tok", trace="tid")
    parsed = fast.parse(out)
    assert parsed.ack == "tok" and parsed.trace == "tid"


def test_legacy_frame_falls_back_without_splice():
    """Wire-v1 all-XML frames have no XME2 header to patch: reframe must
    take the parse-and-re-render path (splices stay flat) and still
    apply the change."""
    fast, slow = codec_pair()
    envelope = ObjectEnvelope(
        [TypeEntry("demo.T", "guid-0", "asm", None)], "binary", b"\x03\x04")
    legacy = fast.envelope_to_legacy_bytes(envelope)
    out = fast.reframe(legacy, ack="tok")
    assert fast.stats.header_splices == 0
    assert out == slow.reframe(legacy, ack="tok")
    assert fast.parse(out).ack == "tok"


def test_attr_removal_falls_back_and_agrees():
    fast, slow = codec_pair()
    envelope = ObjectEnvelope(
        [TypeEntry("demo.T", "guid-0", "asm", None)], "binary", b"\x05",
        ack="old-token", trace="tid")
    data = fast.envelope_to_bytes(envelope)
    out = fast.reframe(data, ack=None)
    assert fast.stats.header_splices == 0
    assert out == slow.reframe(data, ack=None)
    parsed = fast.parse(out)
    assert parsed.ack is None and parsed.trace == "tid"
