"""Property-based tests: compiled IL arithmetic agrees with ground truth."""

import string

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.langs.csharp import compile_source
from repro.runtime.loader import Runtime


def run_expression(expression, a, b):
    """Compile `return <expression>;` in a C#-like method and execute it."""
    source = """
    class Calc {
        public int F(int a, int b) { return %s; }
    }
    """ % expression
    info = compile_source(source, namespace="prop")[0]
    runtime = Runtime()
    runtime.load_type(info)
    return runtime.instantiate(info).invoke("F", a, b)


small_ints = st.integers(min_value=-1000, max_value=1000)
nonzero_ints = small_ints.filter(lambda n: n != 0)


class TestArithmeticAgreement:
    @settings(max_examples=60)
    @given(small_ints, small_ints)
    def test_addition(self, a, b):
        assert run_expression("a + b", a, b) == a + b

    @settings(max_examples=60)
    @given(small_ints, small_ints)
    def test_nested_expression(self, a, b):
        assert run_expression("(a + b) * 2 - a", a, b) == (a + b) * 2 - a

    @settings(max_examples=60)
    @given(small_ints, nonzero_ints)
    def test_division_truncates_toward_zero(self, a, b):
        # C-family semantics, not Python floor division.
        expected = abs(a) // abs(b)
        if (a >= 0) != (b >= 0):
            expected = -expected
        assert run_expression("a / b", a, b) == expected

    @settings(max_examples=60)
    @given(small_ints, nonzero_ints)
    def test_modulo_sign_of_dividend(self, a, b):
        expected = abs(a) % abs(b)
        if a < 0:
            expected = -expected
        assert run_expression("a % b", a, b) == expected

    @settings(max_examples=60)
    @given(small_ints, small_ints)
    def test_comparisons(self, a, b):
        source = """
        class Cmp {
            public bool Lt(int a, int b) { return a < b; }
            public bool Le(int a, int b) { return a <= b; }
            public bool Eq(int a, int b) { return a == b; }
        }
        """
        info = compile_source(source, namespace="prop")[0]
        runtime = Runtime()
        runtime.load_type(info)
        obj = runtime.instantiate(info)
        assert obj.invoke("Lt", a, b) == (a < b)
        assert obj.invoke("Le", a, b) == (a <= b)
        assert obj.invoke("Eq", a, b) == (a == b)

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=40))
    def test_loop_sums_match_closed_form(self, n):
        source = """
        class S {
            public int SumTo(int n) {
                int total = 0;
                int i = 1;
                while (i <= n) { total = total + i; i = i + 1; }
                return total;
            }
        }
        """
        info = compile_source(source, namespace="prop")[0]
        runtime = Runtime()
        runtime.load_type(info)
        assert runtime.instantiate(info).invoke("SumTo", n) == n * (n + 1) // 2


class TestCrossLanguageAgreement:
    @settings(max_examples=40)
    @given(small_ints, small_ints)
    def test_csharp_java_vb_same_results(self, a, b):
        from repro.langs.java import compile_source as compile_java
        from repro.langs.vb import compile_source as compile_vb

        cs = compile_source(
            "class M { public int F(int a, int b) { return a * 2 + b; } }",
            namespace="x1")[0]
        jv = compile_java(
            "class M { public int F(int a, int b) { return a * 2 + b; } }",
            namespace="x2")[0]
        vb = compile_vb(
            """
            Class M
                Public Function F(a As Integer, b As Integer) As Integer
                    Return a * 2 + b
                End Function
            End Class
            """,
            namespace="x3")[0]
        runtime = Runtime()
        results = []
        for info in (cs, jv, vb):
            runtime.load_type(info)
            results.append(runtime.instantiate(info).invoke("F", a, b))
        assert results[0] == results[1] == results[2] == a * 2 + b


class TestStringProperties:
    @settings(max_examples=40)
    @given(st.text(alphabet=string.ascii_letters, max_size=15),
           st.text(alphabet=string.ascii_letters, max_size=15))
    def test_concatenation(self, x, y):
        source = """
        class C {
            public string Join(string x, string y) { return x + "-" + y; }
        }
        """
        info = compile_source(source, namespace="prop")[0]
        runtime = Runtime()
        runtime.load_type(info)
        assert runtime.instantiate(info).invoke("Join", x, y) == x + "-" + y
