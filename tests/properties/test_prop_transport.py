"""Property-based tests over the full transport pipeline."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConformanceOptions
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.transport.protocol import InteropPeer

names = st.lists(
    st.text(alphabet=string.ascii_letters + " ", min_size=0, max_size=20),
    min_size=1,
    max_size=6,
)


def fresh_world():
    network = SimulatedNetwork()
    sender = InteropPeer("sender", network, options=ConformanceOptions.pragmatic())
    receiver = InteropPeer("receiver", network, options=ConformanceOptions.pragmatic())
    asm_a, _ = person_assembly_pair()
    sender.host_assembly(asm_a)
    receiver.declare_interest(person_java())
    return network, sender, receiver


class TestPipelineProperties:
    @settings(max_examples=25, deadline=None)
    @given(names)
    def test_values_arrive_intact_and_ordered(self, payloads):
        network, sender, receiver = fresh_world()
        for payload in payloads:
            sender.send("receiver", sender.new_instance("demo.a.Person", [payload]))
        assert [r.view.getPersonName() for r in receiver.inbox] == payloads

    @settings(max_examples=15, deadline=None)
    @given(names)
    def test_exactly_one_code_download_per_type(self, payloads):
        network, sender, receiver = fresh_world()
        for payload in payloads:
            sender.send("receiver", sender.new_instance("demo.a.Person", [payload]))
        assert receiver.transport_stats.assemblies_fetched == 1
        assert receiver.transport_stats.descriptions_fetched == 1

    @settings(max_examples=15, deadline=None)
    @given(names, st.integers(min_value=0, max_value=2**31))
    def test_lossy_network_with_retries_preserves_stream(self, payloads, seed):
        network = SimulatedNetwork(drop_rate=0.25, seed=seed)
        sender = InteropPeer("sender", network,
                             options=ConformanceOptions.pragmatic(),
                             max_retries=60)
        receiver = InteropPeer("receiver", network,
                               options=ConformanceOptions.pragmatic(),
                               max_retries=60)
        asm_a, _ = person_assembly_pair()
        sender.host_assembly(asm_a)
        receiver.declare_interest(person_java())
        for payload in payloads:
            sender.send("receiver", sender.new_instance("demo.a.Person", [payload]))
        assert [r.view.getPersonName() for r in receiver.inbox] == payloads

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_byte_cost_is_affine_in_object_count(self, n):
        """total_bytes(n) == setup_cost + n * marginal_cost, exactly —
        the protocol's accounting is deterministic."""
        def run(k):
            network, sender, receiver = fresh_world()
            for i in range(k):
                sender.send("receiver",
                            sender.new_instance("demo.a.Person", ["fixed"]))
            return network.stats.bytes_sent

        one, two = run(1), run(2)
        marginal = two - one
        assert run(n) == one + (n - 1) * marginal
