"""Property-based tests for binary wire format v2 (interned strings/types).

v2 must round-trip everything v1 did (cycles, shared references included),
stay decodable from v1 payloads produced by older peers, and actually earn
its keep: repeated strings and homogeneous object lists must encode
smaller than under v1.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixtures import person_assembly_pair
from repro.runtime.loader import Runtime
from repro.serialization.binary import BinarySerializer
from repro.serialization.errors import WireFormatError

finite_floats = st.floats(allow_nan=False, allow_infinity=False)

binary_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**62), max_value=2**62)
    | finite_floats
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)


@pytest.fixture
def runtime():
    rt = Runtime()
    asm_a, _ = person_assembly_pair()
    rt.load_assembly(asm_a)
    return rt


class TestV2RoundTrip:
    @settings(max_examples=150)
    @given(binary_values)
    def test_round_trip(self, value):
        codec = BinarySerializer()
        data = codec.serialize(value)
        assert data.startswith(b"RBS2")
        assert codec.deserialize(data) == value

    @settings(max_examples=100)
    @given(binary_values)
    def test_v1_payloads_still_decode(self, value):
        """Backward compatibility: payloads in the seed wire format are
        decodable by the v2-emitting serializer."""
        legacy = BinarySerializer(version=1)
        data = legacy.serialize(value)
        assert data.startswith(b"RBS1")
        assert BinarySerializer().deserialize(data) == value

    @settings(max_examples=100)
    @given(st.lists(st.sampled_from(["alpha", "beta", "gamma", ""]),
                    min_size=0, max_size=30))
    def test_interning_round_trips_repeats(self, words):
        codec = BinarySerializer()
        assert codec.deserialize(codec.serialize(words)) == words

    @settings(max_examples=60)
    @given(st.lists(st.text(max_size=20), min_size=1, max_size=6))
    def test_object_graphs(self, names):
        rt = Runtime()
        asm_a, _ = person_assembly_pair()
        rt.load_assembly(asm_a)
        codec = BinarySerializer(rt)
        people = [rt.new_instance("demo.a.Person", [n]) for n in names]
        restored = codec.deserialize(codec.serialize(people))
        assert [p.GetName() for p in restored] == names

    def test_shared_refs_and_cycles(self, runtime):
        codec = BinarySerializer(runtime)
        person = runtime.new_instance("demo.a.Person", ["Loop"])
        person.fields["name"] = person  # self-cycle through a field
        restored = codec.deserialize(codec.serialize([person, person]))
        assert restored[0] is restored[1]
        assert restored[0].fields["name"] is restored[0]

    def test_serializer_buffer_reuse_is_stateless(self, runtime):
        """Back-to-back serializations on one instance must not leak
        interning state or buffer contents between payloads."""
        codec = BinarySerializer(runtime)
        a = codec.serialize(["x", "x", "x"])
        b = codec.serialize(["x", "x", "x"])
        assert a == b
        assert codec.deserialize(a) == ["x", "x", "x"]


class TestV2Compactness:
    def test_repeated_strings_smaller_than_v1(self):
        value = [{"ticker": "AAPL", "venue": "XNAS"} for _ in range(20)]
        v1 = len(BinarySerializer(version=1).serialize(value))
        v2 = len(BinarySerializer().serialize(value))
        assert v2 < v1

    def test_homogeneous_object_list_smaller_than_v1(self, runtime):
        """Acceptance criterion: 50 same-type objects — the type GUID,
        type name and field names are transmitted once under v2."""
        people = [runtime.new_instance("demo.a.Person", ["p%d" % i])
                  for i in range(50)]
        v1 = len(BinarySerializer(runtime, version=1).serialize(people))
        v2 = len(BinarySerializer(runtime).serialize(people))
        assert v2 < v1
        # Per-object marginal cost: v1 repeats 16-byte GUID + names; v2
        # pays roughly one type-ref byte + interned field names.
        assert v2 < v1 * 0.6

    def test_unique_strings_no_regression_blowup(self):
        """All-distinct strings pay at most one extra varint bit each."""
        value = ["s%04d" % i for i in range(200)]
        v1 = len(BinarySerializer(version=1).serialize(value))
        v2 = len(BinarySerializer().serialize(value))
        assert v2 <= v1 + len(value)  # ≤1 extra byte per literal


class TestV2Robustness:
    def test_dangling_string_ref(self):
        # STR tag with an interned-string back-reference to index 0 in an
        # empty table: varint 0b1 = 1.
        with pytest.raises(WireFormatError):
            BinarySerializer().deserialize(b"RBS2\x05\x01")

    def test_dangling_type_ref(self, runtime):
        # OBJ tag with a type back-reference to index 0 in an empty table.
        with pytest.raises(WireFormatError):
            BinarySerializer(runtime).deserialize(b"RBS2\x08\x01")

    def test_malformed_type_literal_marker(self, runtime):
        # OBJ tag with an even, non-zero type code is not a valid literal.
        with pytest.raises(WireFormatError):
            BinarySerializer(runtime).deserialize(b"RBS2\x08\x02")

    def test_truncation(self):
        data = BinarySerializer().serialize(["hello", "hello"])
        for cut in range(4, len(data)):
            with pytest.raises(WireFormatError):
                BinarySerializer().deserialize(data[:cut])

    def test_trailing_garbage(self):
        data = BinarySerializer().serialize(42)
        with pytest.raises(WireFormatError):
            BinarySerializer().deserialize(data + b"\x00")

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            BinarySerializer(version=3)


class TestBatchFrames:
    """RBS2B: many values, one intern table (acceptance criterion)."""

    @settings(max_examples=100)
    @given(st.lists(binary_values, max_size=6))
    def test_batch_round_trip(self, values):
        codec = BinarySerializer()
        data = codec.serialize_batch(values)
        assert data.startswith(b"RBS2B")
        assert codec.deserialize_batch(data) == values

    @settings(max_examples=60)
    @given(st.lists(st.text(max_size=20), min_size=1, max_size=6))
    def test_batch_of_objects_round_trips(self, names):
        rt = Runtime()
        asm_a, _ = person_assembly_pair()
        rt.load_assembly(asm_a)
        codec = BinarySerializer(rt)
        people = [rt.new_instance("demo.a.Person", [n]) for n in names]
        restored = codec.deserialize_batch(codec.serialize_batch(people))
        assert [p.GetName() for p in restored] == names

    @settings(max_examples=50)
    @given(binary_values)
    def test_single_v2_frame_decodes_unchanged(self, value):
        """A v2 single-object frame is untouched by the batch feature:
        same bytes, same deserialize result, and deserialize_batch accepts
        it as a one-element batch."""
        codec = BinarySerializer()
        data = codec.serialize(value)
        assert data.startswith(b"RBS2") and not data.startswith(b"RBS2B")
        assert codec.deserialize(data) == value
        assert codec.deserialize_batch(data) == [value]

    def test_empty_batch(self):
        codec = BinarySerializer()
        data = codec.serialize_batch([])
        assert codec.deserialize_batch(data) == []

    def test_duplicate_objects_collapse_to_refs(self, runtime):
        """The same event batched k times (one peer, k matching
        subscriptions) costs a few REF bytes per extra copy — and decodes
        back to the *same* instance."""
        codec = BinarySerializer(runtime)
        event = runtime.new_instance("demo.a.Person", ["dup"])
        one = len(codec.serialize_batch([event]))
        four = len(codec.serialize_batch([event] * 4))
        assert four < one + 12  # ~2 bytes per duplicate, not a re-encode
        restored = codec.deserialize_batch(codec.serialize_batch([event] * 4))
        assert restored[1] is restored[0] and restored[3] is restored[0]

    def test_batch_shares_one_intern_table(self, runtime):
        """N same-type events in one frame beat N separate v2 frames: the
        GUID, type name and field names are paid once per frame."""
        codec = BinarySerializer(runtime)
        events = [runtime.new_instance("demo.a.Person", ["e%d" % i])
                  for i in range(10)]
        separate = sum(len(codec.serialize(e)) for e in events)
        batched = len(codec.serialize_batch(events))
        assert batched < separate * 0.6

    def test_deserialize_refuses_batch_frame(self, runtime):
        codec = BinarySerializer(runtime)
        data = codec.serialize_batch(["x"])
        with pytest.raises(WireFormatError, match="batch"):
            codec.deserialize(data)

    def test_v1_serializer_refuses_batches(self):
        with pytest.raises(ValueError):
            BinarySerializer(version=1).serialize_batch(["x"])

    def test_batch_truncation(self):
        codec = BinarySerializer()
        data = codec.serialize_batch(["hello", "hello", 42])
        for cut in range(5, len(data)):
            with pytest.raises(WireFormatError):
                codec.deserialize_batch(data[:cut])

    def test_batch_trailing_garbage(self):
        codec = BinarySerializer()
        data = codec.serialize_batch([1, 2])
        with pytest.raises(WireFormatError):
            codec.deserialize_batch(data + b"\x00")


class TestSchemaDrift:
    def test_wire_only_fields_recorded(self, runtime):
        """A field present on the wire but absent locally is kept on the
        instance and surfaced via last_schema_drift."""
        codec = BinarySerializer(runtime)
        person = runtime.new_instance("demo.a.Person", ["Drift"])
        person.fields["legacy_flag"] = True  # not declared on the type
        restored = codec.deserialize(codec.serialize(person))
        assert restored.fields["legacy_flag"] is True
        assert ("demo.a.Person", "legacy_flag") in codec.last_schema_drift

    def test_drift_resets_per_payload(self, runtime):
        codec = BinarySerializer(runtime)
        person = runtime.new_instance("demo.a.Person", ["Clean"])
        drifted = runtime.new_instance("demo.a.Person", ["Dirty"])
        drifted.fields["extra"] = 1
        codec.deserialize(codec.serialize(drifted))
        assert codec.last_schema_drift
        codec.deserialize(codec.serialize(person))
        assert codec.last_schema_drift == []
