"""Property-based tests for the conformance rules."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConformanceChecker, ConformanceOptions
from repro.cts.builder import TypeBuilder
from repro.cts.members import MethodInfo
from repro.cts.types import TypeInfo

identifiers = st.text(alphabet=string.ascii_letters, min_size=1, max_size=10)
value_types = st.sampled_from(["int", "string", "bool", "double"])


@st.composite
def simple_types(draw, name=None, assembly=None):
    builder = TypeBuilder(
        "gen." + (name or draw(identifiers)),
        assembly_name=assembly or draw(identifiers),
    )
    for index in range(draw(st.integers(0, 3))):
        builder.field("f%d" % index, draw(value_types))
    for index in range(draw(st.integers(0, 4))):
        params = [("p%d" % j, draw(value_types))
                  for j in range(draw(st.integers(0, 3)))]
        builder.method("m%d" % index, params, draw(value_types | st.just("void")))
    for arity in range(draw(st.integers(0, 2))):
        builder.ctor([("c%d" % j, draw(value_types)) for j in range(arity)])
    return builder.build()


def fresh_checker():
    return ConformanceChecker()


class TestReflexivity:
    @settings(max_examples=100)
    @given(simple_types())
    def test_every_type_conforms_to_itself(self, info):
        assert fresh_checker().conforms(info, info).ok


class TestEquivalenceImpliesConformance:
    @settings(max_examples=50)
    @given(st.data())
    def test_same_structure_different_assembly(self, data):
        name = data.draw(identifiers)
        left = data.draw(simple_types(name=name, assembly="asm1"))
        # Rebuild the identical structure under a different assembly name.
        from repro.cts.assembly import type_from_wire, type_to_wire

        wire = type_to_wire(left, include_bodies=False)
        wire["assembly"] = "asm2"
        right = type_from_wire(wire)
        assert fresh_checker().conforms(left, right).ok


class TestMonotonicity:
    @settings(max_examples=50)
    @given(simple_types())
    def test_removing_expected_members_preserves_conformance(self, info):
        """If T conforms to T', T also conforms to any T'' obtained from T'
        by dropping members (fewer obligations)."""
        checker = fresh_checker()
        assert checker.conforms(info, info).ok
        from repro.cts.members import TypeRef
        reduced = TypeInfo(
            info.full_name,
            kind=info.kind,
            superclass=info.superclass,
            interfaces=list(info.interfaces),
            fields=info.fields[:-1] if info.fields else [],
            methods=info.methods[:-1] if info.methods else [],
            constructors=info.constructors[:-1] if info.constructors else [],
            assembly_name="reduced",
        )
        assert checker.conforms(info, reduced).ok

    @settings(max_examples=50)
    @given(simple_types())
    def test_adding_expected_method_breaks_conformance(self, info):
        from repro.cts.members import ParameterInfo
        from repro.cts.types import VOID
        from repro.cts.members import TypeRef

        extended = TypeInfo(
            info.full_name,
            kind=info.kind,
            superclass=info.superclass,
            interfaces=list(info.interfaces),
            fields=list(info.fields),
            methods=list(info.methods)
            + [MethodInfo("definitelyNotThere", [], TypeRef.to(VOID))],
            constructors=list(info.constructors),
            assembly_name="extended",
        )
        assert not fresh_checker().conforms(info, extended).ok


class TestPermutationInvariance:
    @settings(max_examples=50)
    @given(st.permutations(["int", "string", "bool", "double"]))
    def test_expected_parameter_order_irrelevant(self, order):
        """With distinct parameter types, any reordering of the expected
        signature still conforms (rule iv permutations)."""
        provider = (
            TypeBuilder("x.T", assembly_name="a1")
            .method("m", [("p%d" % i, t) for i, t in
                          enumerate(["int", "string", "bool", "double"])], "void")
            .build()
        )
        expected = (
            TypeBuilder("x.T", assembly_name="a2")
            .method("m", [("q%d" % i, t) for i, t in enumerate(order)], "void")
            .build()
        )
        result = fresh_checker().conforms(provider, expected)
        assert result.ok
        match = result.mapping.method("m", 4)
        if match is not None:  # equivalence short-circuits for identity order
            # The permutation must be consistent: provider slot j gets an
            # expected argument of the provider's parameter type.
            provider_types = provider.methods[0].parameter_type_names()
            expected_types = expected.methods[0].parameter_type_names()
            for j, i in enumerate(match.permutation):
                assert provider_types[j] == expected_types[i]


class TestCacheConsistency:
    @settings(max_examples=30)
    @given(simple_types(), simple_types())
    def test_repeat_checks_stable(self, a, b):
        checker = fresh_checker()
        first = checker.conforms(a, b)
        second = checker.conforms(a, b)
        assert first.ok == second.ok
        assert first.verdict == second.verdict or first.ok == second.ok

    @settings(max_examples=30)
    @given(simple_types(), simple_types())
    def test_fresh_and_cached_checkers_agree(self, a, b):
        warm = fresh_checker()
        warm.conforms(a, b)
        cached = warm.conforms(a, b).ok
        fresh = fresh_checker().conforms(a, b).ok
        assert cached == fresh
