"""Property tests: key-aware compaction preserves latest-state replay.

The compaction contract, under arbitrary keyed workloads and segment
sizes:

- **latest-state equivalence** — folding replay into a key -> latest
  payload map gives the same result before and after compaction (compact
  then replay ≡ latest-state replay);
- **idempotence** — a second pass drops nothing;
- **cursor bound** — no record at/above ``retain_from`` (the slowest
  unacked cursor) is ever dropped;
- **recovery** — the holes compaction leaves survive a close/reopen
  (recovery's monotonic-offset scan) byte-identically.
"""

import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persistence import EventLog

#: A workload is a list of (key index, payload filler) appends; small key
#: spaces force overwrites, which is what compaction exists for.
workloads = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),
              st.binary(min_size=0, max_size=60)),
    min_size=1, max_size=40,
)


def key_of(record):
    """Synthetic per-record key: everything before the first ``|``."""
    key = record.payload.split(b"|", 1)[0].decode()
    return [key if key else None]


def fill(directory, workload, segment_max):
    log = EventLog(directory, segment_max_bytes=segment_max)
    for key_index, filler in workload:
        log.append(b"key%d|" % key_index + filler, origin="pub")
    return log


def latest_state(log):
    state = {}
    for record in log.replay():
        for key in key_of(record):
            if key is not None:
                state[key] = record.payload
    return state


class TestCompactionProperties:
    @settings(max_examples=30, deadline=None)
    @given(workloads, st.integers(min_value=64, max_value=512))
    def test_latest_state_equivalence_and_idempotence(self, workload,
                                                      segment_max):
        directory = tempfile.mkdtemp()
        try:
            log = fill(directory, workload, segment_max)
            before = latest_state(log)
            log.compact(key_of=key_of)
            assert latest_state(log) == before
            # Idempotent: an immediate second pass finds nothing stale.
            assert log.compact(key_of=key_of)["dropped_records"] == 0
            assert latest_state(log) == before
            log.close()
        finally:
            shutil.rmtree(directory)

    @settings(max_examples=30, deadline=None)
    @given(workloads, st.integers(min_value=64, max_value=512),
           st.integers(min_value=0, max_value=40))
    def test_never_crosses_the_slowest_unacked_cursor(self, workload,
                                                      segment_max, cursor):
        directory = tempfile.mkdtemp()
        try:
            log = fill(directory, workload, segment_max)
            log.compact(retain_from=cursor, key_of=key_of)
            offsets = [record.offset for record in log.replay()]
            # Every record the cursor has not acked is still replayable.
            expected_tail = [offset for offset in range(len(workload))
                             if offset >= cursor]
            assert [o for o in offsets if o >= cursor] == expected_tail
            log.close()
        finally:
            shutil.rmtree(directory)

    @settings(max_examples=25, deadline=None)
    @given(workloads, st.integers(min_value=64, max_value=512))
    def test_holes_survive_reopen(self, workload, segment_max):
        directory = tempfile.mkdtemp()
        try:
            log = fill(directory, workload, segment_max)
            log.compact(key_of=key_of)
            surviving = [(r.offset, r.origin, r.payload)
                         for r in log.replay()]
            log.close()
            reopened = EventLog(directory, segment_max_bytes=segment_max)
            assert reopened.torn_tail_truncations == 0
            assert [(r.offset, r.origin, r.payload)
                    for r in reopened.replay()] == surviving
            # Appends continue exactly where the pre-compaction log ended.
            assert reopened.next_offset == len(workload)
            offset = reopened.append(b"key0|after", origin="pub")
            assert offset == len(workload)
            reopened.close()
        finally:
            shutil.rmtree(directory)

    @settings(max_examples=25, deadline=None)
    @given(workloads, st.integers(min_value=64, max_value=512))
    def test_only_superseded_keyed_records_drop(self, workload, segment_max):
        """A dropped record must be (a) below the active segment and (b)
        superseded: every one of its keys has a later record."""
        directory = tempfile.mkdtemp()
        try:
            log = fill(directory, workload, segment_max)
            last_offset_of = {}
            for offset, (key_index, _) in enumerate(workload):
                last_offset_of["key%d" % key_index] = offset
            before = {record.offset for record in log.replay()}
            log.compact(key_of=key_of)
            after = {record.offset for record in log.replay()}
            for offset in before - after:
                key_index = workload[offset][0]
                assert last_offset_of["key%d" % key_index] > offset
            log.close()
        finally:
            shutil.rmtree(directory)
