"""Property tests: the event log round-trips arbitrary batches durably.

Acceptance criterion for the durability subsystem: random event batches
pushed through append → reopen → replay come back byte- and
value-identical, whatever the segment size forces in terms of rotation.
"""

import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixtures import person_assembly_pair
from repro.persistence import EventLog
from repro.runtime.loader import Runtime
from repro.serialization.envelope import EnvelopeCodec

names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=24
)
batches = st.lists(st.lists(names, min_size=1, max_size=4),
                   min_size=1, max_size=8)
payloads = st.lists(st.binary(min_size=0, max_size=200),
                    min_size=1, max_size=20)


class TestLogRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(payloads, st.integers(min_value=64, max_value=512))
    def test_raw_payloads_survive_reopen(self, blobs, segment_max):
        directory = tempfile.mkdtemp()
        try:
            log = EventLog(directory, segment_max_bytes=segment_max)
            for index, blob in enumerate(blobs):
                assert log.append(blob, origin="o%d" % index) == index
            log.close()

            reopened = EventLog(directory, segment_max_bytes=segment_max)
            records = list(reopened.replay())
            assert [r.payload for r in records] == blobs
            assert [r.offset for r in records] == list(range(len(blobs)))
            assert [r.origin for r in records] == \
                ["o%d" % i for i in range(len(blobs))]
            reopened.close()
        finally:
            shutil.rmtree(directory)

    @settings(max_examples=20, deadline=None)
    @given(batches, st.integers(min_value=256, max_value=4096))
    def test_event_batches_survive_append_reopen_replay(self, groups, segment_max):
        """Real RBS2B batch envelopes: encode → append → reopen → replay →
        decode gives back the same events, in order."""
        runtime = Runtime()
        asm_a, _ = person_assembly_pair()
        runtime.load_assembly(asm_a)
        codec = EnvelopeCodec(runtime)

        directory = tempfile.mkdtemp()
        try:
            log = EventLog(directory, segment_max_bytes=segment_max)
            for group in groups:
                events = [runtime.new_instance("demo.a.Person", [name])
                          for name in group]
                log.append(codec.encode_batch(events, origin="publisher"),
                           origin="publisher")
            log.close()

            reopened = EventLog(directory, segment_max_bytes=segment_max)
            decoded = []
            for record in reopened.replay():
                assert record.origin == "publisher"
                envelope = codec.parse(record.payload)
                assert envelope.origin == "publisher"
                decoded.append([value.fields["name"]
                                for value in codec.unwrap_batch(envelope)])
            assert decoded == groups
            reopened.close()
        finally:
            shutil.rmtree(directory)
