"""The socket fabric is observationally equal to the simulator.

One hypothesis-generated script of publishes, durable batches,
subscriber attachments and drains runs twice: on a
:class:`BrokerMesh` over the in-memory :class:`SimulatedNetwork` (the
deterministic twin) and on a :class:`SocketMesh` whose shards exchange
the very same protocol over real Unix-domain sockets.  The property:
every subscriber receives the byte-identical value sequence on both
fabrics.  Draining after every op pins the interleaving, so the
comparison is exact, not statistical — and the socket mesh must get
there without a single post-warm-up value decode on any shard.
"""

import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.tps import BrokerMesh, TpsPeer
from repro.apps.tps.procmesh import SocketMesh
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.serialization.binary import BinarySerializer

N_SHARDS = 3

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("pub"), st.integers(0, N_SHARDS - 1)),
        st.tuples(st.just("batch"), st.integers(0, N_SHARDS - 1),
                  st.integers(1, 3)),
        st.tuples(st.just("sub"), st.integers(0, N_SHARDS - 1)),
    ),
    min_size=1,
    max_size=8,
)


class _World:
    """One mesh (either fabric) plus its client peers, driven op by op."""

    def __init__(self, root, socket_fabric):
        self.socket_fabric = socket_fabric
        if socket_fabric:
            self.mesh = SocketMesh(shard_count=N_SHARDS,
                                   log_root=os.path.join(root, "logs"),
                                   replication_factor=1)
            self.network = self.mesh.client_network("clients")
        else:
            self.network = SimulatedNetwork()
            self.mesh = BrokerMesh(self.network, shard_count=N_SHARDS,
                                   log_root=os.path.join(root, "logs"),
                                   replication_factor=1)
        self.publisher = TpsPeer("publisher", self.network)
        asm_a, _ = person_assembly_pair()
        self.publisher.host_assembly(asm_a)
        self.delivered = {}
        self.subscribers = []
        self.seq = 0

        # Warm-up: teach every shard the type, then judge decode counts
        # on the steady state only.
        for shard_id in self.mesh.shard_ids:
            self.publisher.publish_async(
                shard_id,
                self.publisher.new_instance("demo.a.Person", ["warm"]))
        self.drain()
        for shard in self.mesh.shards:
            shard.codec.stats.decodes = 0

    def drain(self):
        self.mesh.run_until_idle()

    def apply(self, op):
        kind = op[0]
        if kind == "pub":
            self.publisher.publish_async(
                self.mesh.shard_ids[op[1]],
                self.publisher.new_instance("demo.a.Person",
                                            ["p%d" % self.seq]))
            self.seq += 1
        elif kind == "batch":
            events = [
                self.publisher.new_instance("demo.a.Person",
                                            ["b%d-%d" % (self.seq, j)])
                for j in range(op[2])
            ]
            self.seq += 1
            self.publisher.publish_durable(self.mesh.shard_ids[op[1]],
                                           events)
        else:
            name = "sub%02d" % len(self.subscribers)
            peer = TpsPeer(name, self.network)
            captured = self.delivered.setdefault(name, [])

            def capture(received, peer=peer, captured=captured):
                if received.accepted:
                    captured.append(
                        BinarySerializer(peer.runtime).serialize(
                            received.value))

            peer.on_receive(capture)
            peer.subscribe_remote(self.mesh.shard_ids[op[1]], person_java(),
                                  lambda view: None)
            self.subscribers.append(peer)
        # Drain after EVERY op: with at most one record in flight the
        # interleaving is pinned, so both fabrics deliver identically.
        self.drain()

    def close(self):
        self.mesh.close()


@settings(max_examples=8, deadline=None)
@given(ops=_ops)
def test_socket_mesh_equals_simulated_mesh(ops):
    root = tempfile.mkdtemp()
    worlds = []
    try:
        simulated = _World(os.path.join(root, "sim"), socket_fabric=False)
        worlds.append(simulated)
        socketed = _World(os.path.join(root, "sock"), socket_fabric=True)
        worlds.append(socketed)
        for op in ops:
            simulated.apply(op)
            socketed.apply(op)

        # Byte-identical delivery, subscriber by subscriber, in order.
        assert socketed.delivered == simulated.delivered

        # The zero-copy guarantee holds on real bytes too: admission,
        # forwarding and replication on the socket mesh stay header-only.
        for shard in socketed.mesh.shards:
            assert shard.codec.stats.decodes == 0, shard.peer_id
    finally:
        for world in worlds:
            world.close()
        shutil.rmtree(root, ignore_errors=True)
