"""Robustness properties: malformed inputs fail with the *declared* error
types, never with arbitrary internal exceptions."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.describe.xml_codec import XmlCodecError, deserialize_description
from repro.langs.cfamily import ParseError
from repro.langs.csharp import parse as parse_csharp
from repro.langs.vb import VbParseError, parse as parse_vb
from repro.serialization.binary import BinarySerializer
from repro.serialization.envelope import EnvelopeCodec
from repro.serialization.errors import SerializationError, WireFormatError


class TestBinaryDecoderRobustness:
    @settings(max_examples=200)
    @given(st.binary(max_size=64))
    def test_random_bytes_never_crash(self, data):
        codec = BinarySerializer()
        try:
            codec.deserialize(data)
        except SerializationError:
            pass  # the declared failure mode

    @settings(max_examples=100)
    @given(st.binary(max_size=48), st.integers(0, 47))
    def test_corrupted_valid_payloads(self, payload, position):
        codec = BinarySerializer()
        data = codec.serialize(["seed", 123, payload.decode("latin-1")])
        if position >= len(data):
            return
        corrupted = bytes(
            b ^ 0xFF if i == position else b for i, b in enumerate(data)
        )
        try:
            codec.deserialize(corrupted)
        except SerializationError:
            pass  # acceptable; silent wrong answers are acceptable too
        # (corruption of a length prefix may reshape values, but must never
        # raise anything other than a SerializationError)


class TestEnvelopeRobustness:
    @settings(max_examples=100)
    @given(st.binary(max_size=64))
    def test_random_bytes(self, data):
        codec = EnvelopeCodec()
        try:
            codec.parse(data)
        except WireFormatError:
            pass

    @settings(max_examples=100)
    @given(st.text(alphabet=string.printable, max_size=80))
    def test_random_text(self, text):
        codec = EnvelopeCodec()
        try:
            codec.parse(text.encode("utf-8"))
        except WireFormatError:
            pass


class TestDescriptionXmlRobustness:
    @settings(max_examples=100)
    @given(st.text(alphabet=string.printable, max_size=80))
    def test_random_text(self, text):
        try:
            deserialize_description(text)
        except XmlCodecError:
            pass


class TestParserRobustness:
    @settings(max_examples=150)
    @given(st.text(alphabet=string.printable, max_size=60))
    def test_csharp_parser_never_crashes(self, source):
        try:
            parse_csharp(source)
        except ParseError:
            pass

    @settings(max_examples=150)
    @given(st.text(alphabet=string.printable, max_size=60))
    def test_vb_parser_never_crashes(self, source):
        try:
            parse_vb(source)
        except VbParseError:
            pass

    @settings(max_examples=50)
    @given(st.text(alphabet="(){};.=" + string.ascii_letters + " \n", max_size=80))
    def test_punctuation_soup(self, source):
        try:
            parse_csharp("class C { " + source)
        except ParseError:
            pass
