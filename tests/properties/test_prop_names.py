"""Property-based tests for name conformance machinery."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.names import (
    NamePolicy,
    identifier_tokens,
    levenshtein,
    wildcard_match,
)

words = st.text(alphabet=string.ascii_letters + string.digits + "_", max_size=24)
short_words = st.text(alphabet=string.ascii_lowercase, max_size=10)


class TestLevenshteinMetric:
    @given(words)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(words, words)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words, words)
    def test_zero_iff_equal(self, a, b):
        assert (levenshtein(a, b) == 0) == (a == b)

    @given(words, words)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(words, words)
    def test_at_least_length_difference(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))

    @settings(max_examples=30)
    @given(short_words, short_words, short_words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words, words, st.integers(min_value=0, max_value=5))
    def test_bounded_variant_consistent(self, a, b, bound):
        exact = levenshtein(a, b)
        bounded = levenshtein(a, b, upper_bound=bound)
        if exact <= bound:
            assert bounded == exact
        else:
            assert bounded > bound

    @given(words, st.text(alphabet=string.ascii_letters, min_size=1, max_size=3))
    def test_append_costs_at_most_length(self, a, suffix):
        assert levenshtein(a, a + suffix) == len(suffix)


class TestWildcardProperties:
    @given(words)
    def test_star_matches_everything(self, text):
        assert wildcard_match("*", text)

    @given(short_words)
    def test_literal_pattern_matches_itself(self, text):
        assert wildcard_match(text, text)

    @given(short_words, short_words)
    def test_prefix_star(self, prefix, rest):
        assert wildcard_match(prefix + "*", prefix + rest)

    @given(short_words, short_words)
    def test_star_suffix(self, head, suffix):
        assert wildcard_match("*" + suffix, head + suffix)

    @given(short_words)
    def test_question_requires_exact_length(self, text):
        pattern = "?" * len(text)
        assert wildcard_match(pattern, text)
        assert not wildcard_match(pattern + "?", text)


class TestTokenProperties:
    @given(words)
    def test_tokens_lowercase(self, name):
        for token in identifier_tokens(name):
            assert token == token.lower()

    @given(words)
    def test_tokens_reassemble_content(self, name):
        rebuilt = "".join(identifier_tokens(name))
        assert rebuilt == name.replace("_", "").lower()

    @given(words)
    def test_no_empty_tokens(self, name):
        assert all(identifier_tokens(name))


class TestPolicyProperties:
    @given(words)
    def test_reflexive_any_policy(self, name):
        for policy in (
            NamePolicy(),
            NamePolicy(max_distance=2),
            NamePolicy(allow_token_subset=True),
            NamePolicy(case_sensitive=True),
        ):
            assert policy.conforms(name, name)

    @given(words, words)
    def test_strict_policy_symmetric(self, a, b):
        policy = NamePolicy()
        assert policy.conforms(a, b) == policy.conforms(b, a)

    @given(words, words)
    def test_relaxation_monotone(self, a, b):
        """Anything the strict policy accepts, relaxed policies accept."""
        strict = NamePolicy()
        if strict.conforms(a, b):
            assert NamePolicy(max_distance=3).conforms(a, b)
            assert NamePolicy(allow_token_subset=True).conforms(a, b)

    @given(words, words)
    def test_case_sensitive_implies_insensitive(self, a, b):
        if NamePolicy(case_sensitive=True).conforms(a, b):
            assert NamePolicy().conforms(a, b)
