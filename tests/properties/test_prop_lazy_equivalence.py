"""Lazy (zero-copy) admission is an optimisation, not a behaviour change.

Two meshes — one on the default lazy hot path, one with
``lazy_admission=False`` (the eager materialize-everything baseline) —
are driven through identical hypothesis-generated interleavings of
publishes, durable batch publishes, subscriber attachments and drains.
The properties:

- every subscriber receives the byte-identical value sequence on both
  meshes (values re-serialized through :class:`BinarySerializer`);
- replica logs are byte-identical to their origin shard's log records
  at the same offsets (both meshes);
- after a per-shard warm-up publish, the lazy mesh's shard codecs
  perform ZERO value-level decodes — forwarded, relayed and replicated
  records cross shard boundaries header-only.
"""

import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.tps import BrokerMesh, TpsBroker, TpsPeer
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.serialization.binary import BinarySerializer

N_SHARDS = 3

# One op = (kind, shard index[, batch size]).  "pub" is a fire-and-forget
# publish homed on a chosen shard, "batch" a durable multi-value publish
# (ONE log record), "sub" attaches a new remote subscriber at a chosen
# shard, "drain" pumps the mesh to quiescence mid-sequence so buffered
# and freshly-queued traffic interleave differently across examples.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("pub"), st.integers(0, N_SHARDS - 1)),
        st.tuples(st.just("batch"), st.integers(0, N_SHARDS - 1),
                  st.integers(1, 3)),
        st.tuples(st.just("sub"), st.integers(0, N_SHARDS - 1)),
        st.tuples(st.just("drain"),),
    ),
    min_size=1,
    max_size=12,
)


def run_mesh(root, ops, lazy):
    """Drive one mesh through ``ops``; returns it plus the per-subscriber
    delivered value bytes.  Caller must ``close()`` the mesh."""
    network = SimulatedNetwork()
    kwargs = {} if lazy else {"lazy_admission": False}
    mesh = BrokerMesh(network, shard_count=N_SHARDS,
                      log_root=os.path.join(root, "logs"),
                      replication_factor=1, **kwargs)
    publisher = TpsPeer("publisher", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)

    # Warm-up: the first publish a shard sees triggers the eager
    # code-fetch path (the type is still unknown there).  One publish
    # homed on every shard teaches the whole mesh the type, after which
    # the measured phase must stay decode-free on the lazy mesh.
    for shard_id in mesh.shard_ids:
        publisher.publish_async(
            shard_id, publisher.new_instance("demo.a.Person", ["warm"]))
    mesh.run_until_idle()
    for shard in mesh.shards:
        shard.codec.stats.decodes = 0

    delivered = {}
    subscribers = []

    def add_subscriber(shard_index):
        name = "sub%02d" % len(subscribers)
        peer = TpsPeer(name, network)
        captured = delivered.setdefault(name, [])

        def capture(received, peer=peer, captured=captured):
            if received.accepted:
                captured.append(
                    BinarySerializer(peer.runtime).serialize(received.value))

        peer.on_receive(capture)
        peer.subscribe_remote(mesh.shard_ids[shard_index], person_java(),
                              lambda view: None)
        subscribers.append(peer)

    seq = 0
    for op in ops:
        kind = op[0]
        if kind == "pub":
            publisher.publish_async(
                mesh.shard_ids[op[1]],
                publisher.new_instance("demo.a.Person", ["p%d" % seq]))
            seq += 1
        elif kind == "batch":
            events = [
                publisher.new_instance("demo.a.Person",
                                       ["b%d-%d" % (seq, j)])
                for j in range(op[2])
            ]
            seq += 1
            publisher.publish_durable(mesh.shard_ids[op[1]], events)
        elif kind == "sub":
            add_subscriber(op[1])
        else:
            mesh.run_until_idle()
    mesh.run_until_idle()
    return mesh, delivered


def assert_replicas_match_origins(mesh):
    """Every replica record must be the byte-identical payload the origin
    shard logged at the same offset."""
    for origin in mesh.shards:
        origin_payloads = {record.offset: bytes(record.payload)
                           for record in origin.event_log.replay()}
        for follower_id in origin.followers:
            replica = mesh.shard(follower_id).replicas.log_for(
                origin.peer_id, create=False)
            if replica is None:
                continue
            for record in replica.replay():
                assert bytes(record.payload) == \
                    origin_payloads[record.offset]


@settings(max_examples=15, deadline=None)
@given(ops=_ops)
def test_lazy_mesh_equals_eager_mesh(ops):
    root = tempfile.mkdtemp()
    meshes = []
    try:
        lazy_mesh, lazy_delivered = run_mesh(
            os.path.join(root, "lazy"), ops, lazy=True)
        meshes.append(lazy_mesh)
        eager_mesh, eager_delivered = run_mesh(
            os.path.join(root, "eager"), ops, lazy=False)
        meshes.append(eager_mesh)

        # Byte-identical delivery, subscriber by subscriber, in order.
        assert lazy_delivered == eager_delivered

        # The zero-copy guarantee: after warm-up, no shard on the lazy
        # mesh decodes a single value — publishes are admitted from the
        # header, forwards/relays travel as frames, replication streams
        # payload bytes verbatim.
        for shard in lazy_mesh.shards:
            assert shard.codec.stats.decodes == 0, shard.peer_id

        # Replication is byte-exact on both meshes.
        assert_replicas_match_origins(lazy_mesh)
        assert_replicas_match_origins(eager_mesh)
    finally:
        for mesh in meshes:
            mesh.close()
        shutil.rmtree(root, ignore_errors=True)


def run_broker(root, ops, lazy):
    """Drive ONE non-mesh :class:`TpsBroker` through ``ops`` — the same
    alphabet as :func:`run_mesh` with the shard index collapsed to the
    single broker.  Returns (broker, delivered bytes per subscriber);
    caller must ``close()`` the broker."""
    network = SimulatedNetwork()
    broker = TpsBroker("broker", network, log_dir=os.path.join(root, "log"),
                       lazy_admission=lazy)
    publisher = TpsPeer("publisher", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)

    publisher.publish_async(
        "broker", publisher.new_instance("demo.a.Person", ["warm"]))
    network.run_until_idle()
    broker.codec.stats.decodes = 0

    delivered = {}
    subscribers = []

    def add_subscriber():
        name = "sub%02d" % len(subscribers)
        peer = TpsPeer(name, network)
        captured = delivered.setdefault(name, [])

        def capture(received, peer=peer, captured=captured):
            if received.accepted:
                captured.append(
                    BinarySerializer(peer.runtime).serialize(received.value))

        peer.on_receive(capture)
        peer.subscribe_remote("broker", person_java(), lambda view: None)
        subscribers.append(peer)

    seq = 0
    for op in ops:
        kind = op[0]
        if kind == "pub":
            publisher.publish_async(
                "broker",
                publisher.new_instance("demo.a.Person", ["p%d" % seq]))
            seq += 1
        elif kind == "batch":
            events = [
                publisher.new_instance("demo.a.Person",
                                       ["b%d-%d" % (seq, j)])
                for j in range(op[2])
            ]
            seq += 1
            publisher.publish_durable("broker", events)
        elif kind == "sub":
            add_subscriber()
        else:
            network.run_until_idle()
    network.run_until_idle()
    return broker, delivered


@settings(max_examples=15, deadline=None)
@given(ops=_ops)
def test_lazy_broker_equals_eager_broker(ops):
    """The non-mesh broker now shares the mesh's lazy admission: the
    same interleavings deliver byte-identical sequences on the lazy
    default and the ``lazy_admission=False`` eager baseline, and the
    lazy broker performs zero value-level decodes after warm-up."""
    root = tempfile.mkdtemp()
    brokers = []
    try:
        lazy_broker, lazy_delivered = run_broker(
            os.path.join(root, "lazy"), ops, lazy=True)
        brokers.append(lazy_broker)
        eager_broker, eager_delivered = run_broker(
            os.path.join(root, "eager"), ops, lazy=False)
        brokers.append(eager_broker)

        assert lazy_delivered == eager_delivered
        assert lazy_broker.codec.stats.decodes == 0

        # Same durable history, record for record.  (The wrapper can
        # differ — lazy admission persists a single-object envelope as
        # received where the eager path re-encodes it as a batch of one
        # — so the comparison is offsets, not raw bytes.)
        lazy_offsets = [record.offset
                        for record in lazy_broker.event_log.replay()]
        eager_offsets = [record.offset
                         for record in eager_broker.event_log.replay()]
        assert lazy_offsets == eager_offsets
    finally:
        for broker in brokers:
            broker.close()
        shutil.rmtree(root, ignore_errors=True)


_local_ops = st.lists(
    st.one_of(
        st.tuples(st.just("person"), st.integers(1, 3)),
        st.tuples(st.just("account"), st.integers(1, 3)),
        st.tuples(st.just("sub"),),
    ),
    min_size=1, max_size=10,
)


@settings(max_examples=20, deadline=None)
@given(ops=_local_ops)
def test_local_broker_frame_publish_equals_eager(ops):
    """The in-process broker's frame-publish path is the same
    optimisation contract: a ``publish_frame`` on the lazy header-driven
    broker delivers the byte-identical value sequence the eager
    decode-everything baseline delivers, and a publish that matches no
    local subscription decodes ZERO values."""
    from repro.apps.tps.broker import LocalBroker
    from repro.fixtures import account_csharp
    from repro.cts.assembly import Assembly
    from repro.runtime.loader import Runtime
    from repro.serialization.envelope import EnvelopeCodec

    runtime = Runtime()
    asm_a, _ = person_assembly_pair()
    runtime.load_assembly(asm_a)
    runtime.load_assembly(Assembly("bank", [account_csharp()]))
    encoder = EnvelopeCodec(runtime)

    lazy = LocalBroker(runtime=runtime)
    eager = LocalBroker(runtime=runtime)
    lazy_delivered, eager_delivered = [], []

    def subscribe():
        # Subscriptions match Person only — Account publishes are the
        # no-match traffic that must stay decode-free on the lazy side.
        # Handlers receive conformance proxies; the proxied name is the
        # observable value identity.
        lazy.subscribe(person_java(),
                       lambda event: lazy_delivered.append(
                           event.getPersonName()))
        eager.subscribe(person_java(),
                        lambda event: eager_delivered.append(
                            event.getPersonName()))

    seq = 0
    for op in ops:
        if op[0] == "sub":
            subscribe()
            continue
        type_name = ("demo.a.Person" if op[0] == "person"
                     else "demo.bank.Account")
        values = [
            runtime.new_instance(type_name, ["v%d-%d" % (seq, j)]
                                 if op[0] == "person"
                                 else ["v%d-%d" % (seq, j), j])
            for j in range(op[1])
        ]
        seq += 1
        frame = encoder.encode_batch(values)
        counted = lazy.publish_frame(frame)
        # Eager baseline: materialize every value up front, publish one
        # by one — the pre-frame-publish behaviour.
        decoded = eager.codec.unwrap_batch(eager.codec.parse(frame))
        eager_count = sum(eager.publish(value) for value in decoded)
        assert counted == eager_count

    assert lazy_delivered == eager_delivered
    assert lazy.published == eager.published

    # The zero-decode claim, isolated: with subscriptions attached that
    # cannot match, a fresh no-match publish touches the header only.
    no_match = LocalBroker(runtime=runtime)
    no_match.subscribe(person_java(), lambda event: None)
    account = runtime.new_instance("demo.bank.Account", ["acct", 1])
    assert no_match.publish_frame(encoder.encode_batch([account])) == 0
    assert no_match.codec.stats.decodes == 0


@settings(max_examples=10, deadline=None)
@given(ops=_ops, drop_percent=st.integers(0, 30), seed=st.integers(0, 7))
def test_replicas_stay_byte_identical_under_loss(ops, drop_percent, seed):
    """Replication on a lossy fabric (drops + re-sends) still lands only
    byte-identical copies of origin records — the gap-rejecting watermark
    protocol never persists a frame the origin did not log."""
    root = tempfile.mkdtemp()
    mesh = None
    try:
        network = SimulatedNetwork(drop_rate=drop_percent / 100.0, seed=seed)
        mesh = BrokerMesh(network, shard_count=N_SHARDS,
                          log_root=os.path.join(root, "logs"),
                          replication_factor=2)
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        seq = 0
        for op in ops:
            if op[0] in ("pub", "batch"):
                publisher.publish_async(
                    mesh.shard_ids[op[1]],
                    publisher.new_instance("demo.a.Person", ["l%d" % seq]))
                seq += 1
            elif op[0] == "drain":
                mesh.run_until_idle()
        mesh.run_until_idle()
        assert_replicas_match_origins(mesh)
    finally:
        if mesh is not None:
            mesh.close()
        shutil.rmtree(root, ignore_errors=True)
