"""Property-based round-trip tests for every codec."""

import math
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cts.builder import TypeBuilder
from repro.describe.description import describe
from repro.describe.xml_codec import deserialize_description, serialize_description
from repro.fixtures import person_assembly_pair
from repro.runtime.loader import Runtime
from repro.serialization.binary import BinarySerializer
from repro.serialization.envelope import EnvelopeCodec
from repro.serialization.soap import SoapSerializer

# XML 1.0 cannot carry control characters; restrict to printable text for
# the SOAP/XML codecs, full unicode for binary.
xml_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=40
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False)

json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**60), max_value=2**60)
    | finite_floats
    | xml_text,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(xml_text, children, max_size=4),
    max_leaves=20,
)

binary_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**62), max_value=2**62)
    | finite_floats
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)


class TestBinaryRoundTrip:
    @settings(max_examples=150)
    @given(binary_values)
    def test_round_trip(self, value):
        codec = BinarySerializer()
        assert codec.deserialize(codec.serialize(value)) == value

    @given(st.integers())
    def test_arbitrary_integers(self, n):
        codec = BinarySerializer()
        assert codec.deserialize(codec.serialize(n)) == n


class TestSoapRoundTrip:
    @settings(max_examples=75)
    @given(json_like)
    def test_round_trip(self, value):
        codec = SoapSerializer()
        assert codec.deserialize(codec.serialize(value)) == value


class TestEnvelopeRoundTrip:
    @settings(max_examples=50)
    @given(json_like)
    def test_round_trip_binary_payload(self, value):
        codec = EnvelopeCodec()
        assert codec.decode(codec.encode(value)) == value


class TestObjectGraphRoundTrip:
    @settings(max_examples=50)
    @given(st.lists(xml_text, min_size=1, max_size=5))
    def test_person_graphs(self, names):
        runtime = Runtime()
        asm_a, _ = person_assembly_pair()
        runtime.load_assembly(asm_a)
        codec = BinarySerializer(runtime)
        people = [runtime.new_instance("demo.a.Person", [n]) for n in names]
        restored = codec.deserialize(codec.serialize(people))
        assert [p.GetName() for p in restored] == names


# -- generated type descriptions --------------------------------------------

identifiers = st.text(alphabet=string.ascii_letters, min_size=1, max_size=12)
type_names = st.sampled_from(["int", "string", "bool", "double", "void", "x.Custom"])


@st.composite
def random_types(draw):
    builder = TypeBuilder("gen." + draw(identifiers))
    for _ in range(draw(st.integers(0, 4))):
        builder.field(
            draw(identifiers),
            draw(type_names.filter(lambda t: t != "void")),
            visibility=draw(st.sampled_from(["public", "private"])),
        )
    for _ in range(draw(st.integers(0, 4))):
        params = [
            (draw(identifiers), draw(type_names.filter(lambda t: t != "void")))
            for _ in range(draw(st.integers(0, 3)))
        ]
        builder.method(
            draw(identifiers),
            params,
            draw(type_names),
            static=draw(st.booleans()),
        )
    for _ in range(draw(st.integers(0, 2))):
        params = [
            (draw(identifiers), draw(type_names.filter(lambda t: t != "void")))
            for _ in range(draw(st.integers(0, 3)))
        ]
        builder.ctor(params)
    return builder.build()


class TestDescriptionRoundTrip:
    @settings(max_examples=75)
    @given(random_types())
    def test_xml_round_trip(self, info):
        description = describe(info)
        restored = deserialize_description(serialize_description(description))
        assert restored == description
        assert restored.guid() == info.guid

    @settings(max_examples=50)
    @given(random_types())
    def test_skeleton_fingerprint_preserved(self, info):
        """The description's skeletal TypeInfo is structurally identical to
        the original (bodies aside), hence same fingerprint and identity."""
        skeleton = describe(info).to_type_info()
        assert skeleton.fingerprint() == info.fingerprint()
