"""Tests for GUID type identities."""

import pytest

from repro.cts.identity import Guid, type_guid


class TestGuid:
    def test_requires_16_bytes(self):
        with pytest.raises(ValueError):
            Guid(b"short")

    def test_requires_bytes_not_str(self):
        with pytest.raises(ValueError):
            Guid("x" * 16)

    def test_from_name_deterministic(self):
        assert Guid.from_name("abc") == Guid.from_name("abc")

    def test_from_name_distinct(self):
        assert Guid.from_name("abc") != Guid.from_name("abd")

    def test_str_format(self):
        text = str(Guid.from_name("abc"))
        parts = text.split("-")
        assert [len(p) for p in parts] == [8, 4, 4, 4, 12]

    def test_parse_round_trip(self):
        guid = Guid.from_name("something")
        assert Guid.parse(str(guid)) == guid

    def test_parse_accepts_no_dashes(self):
        guid = Guid.from_name("x")
        assert Guid.parse(str(guid).replace("-", "")) == guid

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Guid.parse("not-a-guid")

    def test_hashable_and_usable_as_key(self):
        d = {Guid.from_name("a"): 1}
        assert d[Guid.from_name("a")] == 1

    def test_ordering(self):
        a, b = sorted([Guid(b"\xff" * 16), Guid(b"\x00" * 16)])
        assert a.bytes == b"\x00" * 16
        assert b.bytes == b"\xff" * 16

    def test_equality_against_other_types(self):
        assert Guid.from_name("a") != "a"

    def test_repr_contains_hex(self):
        guid = Guid.from_name("a")
        assert str(guid) in repr(guid)


class TestTypeGuid:
    def test_binds_assembly(self):
        assert type_guid("asm1", "T") != type_guid("asm2", "T")

    def test_binds_name(self):
        assert type_guid("asm", "T1") != type_guid("asm", "T2")

    def test_binds_fingerprint(self):
        assert type_guid("asm", "T", "fp1") != type_guid("asm", "T", "fp2")

    def test_deterministic(self):
        assert type_guid("asm", "T", "fp") == type_guid("asm", "T", "fp")
