"""Tests for array types in the CTS and the conformance rules."""

import pytest

from repro.core import ConformanceChecker, ConformanceOptions, Verdict
from repro.cts.builder import TypeBuilder
from repro.cts.registry import TypeRegistry
from repro.cts.types import INT, OBJECT, STRING, TypeKind, array_of, lookup_builtin
from repro.fixtures import person_csharp, person_java


class TestArrayTypes:
    def test_array_of_builtin(self):
        arr = array_of(INT)
        assert arr.full_name == "System.Int32[]"
        assert arr.kind is TypeKind.ARRAY
        assert arr.is_array
        assert arr.element.resolved is INT

    def test_array_types_memoised(self):
        assert array_of(INT) is array_of(INT)
        assert array_of(INT) is not array_of(STRING)

    def test_lookup_builtin_array_spellings(self):
        assert lookup_builtin("int[]") is array_of(INT)
        assert lookup_builtin("System.String[]") is array_of(STRING)
        assert lookup_builtin("nosuch[]") is None

    def test_nested_arrays(self):
        matrix = lookup_builtin("int[][]")
        assert matrix is array_of(array_of(INT))
        assert matrix.full_name == "System.Int32[][]"

    def test_registry_synthesizes_user_arrays(self):
        registry = TypeRegistry()
        person = person_csharp()
        registry.register(person)
        arr = registry.get("demo.a.Person[]")
        assert arr is not None
        assert arr.is_array
        assert arr.element.resolved is person

    def test_fingerprint_distinguishes_elements(self):
        assert array_of(INT).guid != array_of(STRING).guid


class TestArrayConformance:
    def test_same_element_conforms(self):
        checker = ConformanceChecker()
        assert checker.conforms(array_of(INT), array_of(INT)).ok

    def test_different_primitive_elements_fail(self):
        checker = ConformanceChecker()
        assert not checker.conforms(array_of(INT), array_of(STRING)).ok

    def test_array_vs_non_array_fails(self):
        checker = ConformanceChecker()
        assert not checker.conforms(array_of(INT), INT).ok
        assert not checker.conforms(INT, array_of(INT)).ok

    def test_arrays_conform_to_object(self):
        checker = ConformanceChecker()
        assert checker.conforms(array_of(INT), OBJECT).ok

    def test_covariant_user_elements(self):
        """Person[] (provider dialect) conforms to Person[] (expected
        dialect) when the elements conform implicitly."""
        registry = TypeRegistry()
        a, b = person_csharp(), person_java()
        registry.register_all([a, b])
        checker = ConformanceChecker(
            resolver=registry, options=ConformanceOptions.pragmatic()
        )
        result = checker.conforms(array_of(a), array_of(b))
        assert result.ok
        assert result.verdict is Verdict.IMPLICIT_STRUCTURAL

    def test_nonconformant_user_elements(self):
        from repro.fixtures import account_csharp

        registry = TypeRegistry()
        a, acct = person_csharp(), account_csharp()
        registry.register_all([a, acct])
        checker = ConformanceChecker(
            resolver=registry, options=ConformanceOptions.pragmatic()
        )
        assert not checker.conforms(array_of(acct), array_of(a)).ok


class TestArrayMembers:
    def test_method_with_array_signature(self):
        """Types whose methods traffic in arrays conform member-wise."""
        registry = TypeRegistry()
        provider = (
            TypeBuilder("x.Stats", assembly_name="a1")
            .method("Sum", [("xs", "int[]")], "int")
            .method("Names", [], "string[]")
            .build()
        )
        expected = (
            TypeBuilder("x.Stats", assembly_name="a2")
            .method("Sum", [("values", "int[]")], "int")
            .method("Names", [], "string[]")
            .build()
        )
        checker = ConformanceChecker(resolver=registry)
        assert checker.conforms(provider, expected).ok

    def test_array_element_mismatch_in_member(self):
        provider = (
            TypeBuilder("x.Stats", assembly_name="a1")
            .method("Sum", [("xs", "int[]")], "int")
            .build()
        )
        expected = (
            TypeBuilder("x.Stats", assembly_name="a2")
            .method("Sum", [("xs", "string[]")], "int")
            .build()
        )
        assert not ConformanceChecker().conforms(provider, expected).ok

    def test_csharp_frontend_parses_arrays(self):
        from repro.langs.csharp import compile_source

        info = compile_source(
            """
            class Holder {
                public int[] values;
                public string[] Tags(int[] keys) { return null; }
            }
            """,
            namespace="t",
        )[0]
        assert info.find_field("values").type_ref.full_name == "System.Int32[]"
        method = info.find_method("Tags")
        assert method.return_type.full_name == "System.String[]"
        assert method.parameter_type_names() == ["System.Int32[]"]

    def test_frontend_user_type_arrays_qualified(self):
        from repro.langs.csharp import compile_source

        info = compile_source(
            "class Group { public Person[] members; }",
            namespace="t",
        )[0]
        assert info.find_field("members").type_ref.full_name == "t.Person[]"

    def test_array_methods_execute(self):
        """Arrays are Python lists at runtime; IL code can receive and
        return them."""
        from repro.langs.csharp import compile_source
        from repro.runtime.loader import Runtime

        info = compile_source(
            """
            class Stats {
                public int First(int[] xs) { return xs.pop(0); }
            }
            """,
            namespace="t",
        )[0]
        runtime = Runtime()
        runtime.load_type(info)
        stats = runtime.instantiate(info)
        assert stats.invoke("First", [7, 8, 9]) == 7
