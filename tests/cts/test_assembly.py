"""Tests for assemblies and the full-type wire form."""

import pytest

from repro.cts.assembly import (
    Assembly,
    NotSerializableError,
    ref_from_wire,
    ref_to_wire,
    type_from_wire,
    type_to_wire,
)
from repro.cts.builder import TypeBuilder
from repro.cts.members import TypeRef
from repro.cts.types import STRING
from repro.fixtures import person_csharp, person_assembly_pair


class TestRefWire:
    def test_round_trip(self):
        ref = TypeRef.to(STRING)
        restored = ref_from_wire(ref_to_wire(ref))
        assert restored.full_name == "System.String"
        assert restored.guid == STRING.guid

    def test_none_passthrough(self):
        assert ref_to_wire(None) is None
        assert ref_from_wire(None) is None

    def test_unresolved_ref_keeps_path(self):
        ref = TypeRef("a.B", download_path="repo://x")
        restored = ref_from_wire(ref_to_wire(ref))
        assert restored.download_path == "repo://x"
        assert restored.guid is None


class TestTypeWire:
    def test_round_trip_preserves_identity(self):
        person = person_csharp()
        restored = type_from_wire(type_to_wire(person))
        assert restored.guid == person.guid
        assert restored.full_name == person.full_name

    def test_round_trip_preserves_members(self):
        person = person_csharp()
        restored = type_from_wire(type_to_wire(person))
        assert [m.name for m in restored.methods] == [m.name for m in person.methods]
        assert [f.name for f in restored.fields] == [f.name for f in person.fields]
        assert len(restored.constructors) == len(person.constructors)

    def test_round_trip_preserves_il_bodies(self):
        person = person_csharp()
        restored = type_from_wire(type_to_wire(person))
        original_body = person.find_method("GetName").body
        restored_body = restored.find_method("GetName").body
        assert restored_body == original_body

    def test_without_bodies(self):
        person = person_csharp()
        restored = type_from_wire(type_to_wire(person, include_bodies=False))
        assert restored.find_method("GetName").body is None

    def test_native_bodies_refuse_to_serialize(self):
        native = (
            TypeBuilder("x.N")
            .method("f", [], "int", body=lambda self: 42)
            .build()
        )
        with pytest.raises(NotSerializableError):
            type_to_wire(native)

    def test_native_bodies_ok_when_bodies_excluded(self):
        native = (
            TypeBuilder("x.N")
            .method("f", [], "int", body=lambda self: 42)
            .build()
        )
        wire = type_to_wire(native, include_bodies=False)
        assert wire["methods"][0]["body"] is None


class TestAssembly:
    def test_download_path_default(self):
        assembly = Assembly("demo", [], version="2.1.0")
        assert assembly.download_path == "repo://demo/2.1.0"

    def test_types_adopt_assembly_metadata(self):
        person = person_csharp()
        assembly = Assembly("pkg", [person])
        assert person.assembly_name == "pkg"
        assert person.download_path == assembly.download_path

    def test_find_type(self):
        assembly, _ = person_assembly_pair()
        assert assembly.find_type("demo.a.Person") is not None
        assert assembly.find_type("no.Such") is None

    def test_wire_round_trip(self):
        assembly, _ = person_assembly_pair()
        restored = Assembly.from_wire(assembly.to_wire())
        assert restored.name == assembly.name
        assert restored.version == assembly.version
        assert restored.type_names() == assembly.type_names()
        assert restored.types[0].guid == assembly.types[0].guid

    def test_wire_round_trip_executes(self):
        from repro.runtime.loader import Runtime

        assembly, _ = person_assembly_pair()
        restored = Assembly.from_wire(assembly.to_wire())
        runtime = Runtime()
        runtime.load_assembly(restored)
        instance = runtime.new_instance("demo.a.Person", ["Alan"])
        assert instance.invoke("GetName") == "Alan"
