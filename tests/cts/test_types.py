"""Tests for TypeInfo and the builtin type universe."""

import pytest

from repro.cts.builder import TypeBuilder
from repro.cts.members import FieldInfo, TypeRef, Visibility
from repro.cts.types import (
    BOOL,
    DOUBLE,
    INT,
    OBJECT,
    STRING,
    TypeInfo,
    TypeKind,
    VOID,
    builtin_ref,
    lookup_builtin,
    python_value_type,
)


class TestNaming:
    def test_namespace_and_simple_name(self):
        info = TypeInfo("demo.pkg.Person")
        assert info.namespace == "demo.pkg"
        assert info.simple_name == "Person"

    def test_no_namespace(self):
        info = TypeInfo("Person")
        assert info.namespace == ""
        assert info.simple_name == "Person"


class TestStructure:
    def _person(self):
        return (
            TypeBuilder("demo.Person")
            .field("name", "string", visibility="private")
            .field("age", "int")
            .method("GetName", [], "string")
            .method("GetName2", [], "string", visibility="private")
            .ctor([("n", "string")])
            .build()
        )

    def test_public_filters(self):
        person = self._person()
        assert [f.name for f in person.public_fields()] == ["age"]
        assert [m.name for m in person.public_methods()] == ["GetName"]
        assert len(person.public_constructors()) == 1

    def test_find_field(self):
        person = self._person()
        assert person.find_field("name").visibility is Visibility.PRIVATE
        assert person.find_field("missing") is None

    def test_find_method_by_arity(self):
        person = self._person()
        assert person.find_method("GetName", 0) is not None
        assert person.find_method("GetName", 2) is None

    def test_find_constructor(self):
        person = self._person()
        assert person.find_constructor(1) is not None
        assert person.find_constructor(3) is None

    def test_referenced_type_names_deduplicated(self):
        person = self._person()
        names = person.referenced_type_names()
        assert names.count("System.String") == 1
        assert "System.Int32" in names
        assert "System.Object" in names  # superclass


class TestFingerprint:
    def test_same_structure_same_fingerprint(self):
        a = TypeBuilder("x.T").field("f", "int").build()
        b = TypeBuilder("x.T").field("f", "int").build()
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_case_sensitive_names(self):
        # Case differences are NOT equivalence: they require a translating
        # mapping, so the fingerprints (and identities) must differ.
        a = TypeBuilder("x.T").method("GetName", [], "string").build()
        b = TypeBuilder("x.T").method("getname", [], "string").build()
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_modifier_aware(self):
        a = TypeBuilder("x.T").method("M", [], "void", static=True).build()
        b = TypeBuilder("x.T").method("M", [], "void").build()
        assert a.fingerprint() != b.fingerprint()

    def test_member_change_changes_fingerprint(self):
        a = TypeBuilder("x.T").field("f", "int").build()
        b = TypeBuilder("x.T").field("f", "string").build()
        assert a.fingerprint() != b.fingerprint()

    def test_guid_derives_from_fingerprint(self):
        a = TypeBuilder("x.T").field("f", "int").build()
        b = TypeBuilder("x.T").field("f", "string").build()
        assert a.guid != b.guid


class TestEquality:
    def test_types_equal_by_guid(self):
        a = TypeBuilder("x.T").build()
        b = TypeBuilder("x.T").build()
        assert a == b
        assert hash(a) == hash(b)

    def test_structurally_different_not_equal(self):
        a = TypeBuilder("x.T").build()
        b = TypeBuilder("x.T").field("f", "int").build()
        assert a != b


class TestBuiltins:
    def test_primitives_are_primitive(self):
        assert INT.is_primitive
        assert STRING.is_primitive
        assert not OBJECT.is_primitive

    def test_lookup_by_full_name(self):
        assert lookup_builtin("System.Int32") is INT

    def test_lookup_by_alias(self):
        assert lookup_builtin("int") is INT
        assert lookup_builtin("Integer") is INT
        assert lookup_builtin("string") is STRING
        assert lookup_builtin("boolean") is BOOL
        assert lookup_builtin("object") is OBJECT

    def test_lookup_unknown_none(self):
        assert lookup_builtin("wibble") is None

    def test_builtin_ref_resolved(self):
        assert builtin_ref("void").resolved is VOID

    def test_builtin_ref_unknown_raises(self):
        with pytest.raises(KeyError):
            builtin_ref("wibble")


class TestPythonValueType:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, BOOL),
            (0, INT),
            (1.5, DOUBLE),
            ("x", STRING),
            (None, OBJECT),
            ([], OBJECT),
        ],
    )
    def test_mapping(self, value, expected):
        assert python_value_type(value) is expected

    def test_bool_before_int(self):
        # bool is a subclass of int in Python; ensure BOOL wins.
        assert python_value_type(False) is BOOL
