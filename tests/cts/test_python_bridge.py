"""Tests for bridging native Python classes into the CTS."""

import pytest

from repro.cts.python_bridge import BridgedInstance, bridge_class
from repro.cts.types import INT, STRING, VOID
from repro.core import ConformanceChecker, ConformanceOptions
from repro.remoting.dynamic import wrap


class PyPerson:
    """A plain Python class playing the Person role."""

    _name: str

    def __init__(self, name: str):
        self._name = name

    def GetName(self) -> str:
        return self._name

    def SetName(self, n: str) -> None:
        self._name = n


class TestBridgeClass:
    def test_type_name(self):
        info = bridge_class(PyPerson)
        assert info.full_name == "python.PyPerson"

    def test_custom_name(self):
        info = bridge_class(PyPerson, full_name="demo.Person")
        assert info.full_name == "demo.Person"

    def test_methods_discovered(self):
        info = bridge_class(PyPerson)
        names = {m.name for m in info.methods}
        assert {"GetName", "SetName"} <= names

    def test_private_methods_skipped(self):
        class WithPrivate:
            def visible(self) -> int:
                return 1

            def _hidden(self) -> int:
                return 2

        info = bridge_class(WithPrivate)
        names = {m.name for m in info.methods}
        assert "visible" in names
        assert "_hidden" not in names

    def test_return_types_from_annotations(self):
        info = bridge_class(PyPerson)
        assert info.find_method("GetName").return_type.full_name == STRING.full_name
        assert info.find_method("SetName").return_type.full_name == VOID.full_name

    def test_parameter_types_from_annotations(self):
        info = bridge_class(PyPerson)
        setter = info.find_method("SetName")
        assert setter.parameter_type_names() == [STRING.full_name]

    def test_underscore_fields_become_private(self):
        info = bridge_class(PyPerson)
        field = info.find_field("name")
        assert field is not None
        assert field.visibility.value == "private"

    def test_constructor_from_init(self):
        info = bridge_class(PyPerson)
        assert len(info.constructors) == 1
        assert info.constructors[0].parameter_type_names() == [STRING.full_name]


class TestBridgedInstance:
    def test_invoke(self):
        wrapped = BridgedInstance(PyPerson("Guy"))
        assert wrapped.invoke("GetName") == "Guy"

    def test_repro_protocol(self):
        wrapped = BridgedInstance(PyPerson("Guy"))
        assert wrapped._repro_invoke("GetName", []) == "Guy"
        assert wrapped._repro_type().full_name == "python.PyPerson"

    def test_field_access_via_underscore(self):
        wrapped = BridgedInstance(PyPerson("Guy"))
        assert wrapped.get_field("name") == "Guy"
        wrapped.set_field("name", "Gal")
        assert wrapped.invoke("GetName") == "Gal"


class TestBridgeInteroperability:
    def test_python_object_conforms_to_cts_person(self):
        """A live Python object can stand in for a compiled CTS type."""
        from repro.fixtures import person_java

        checker = ConformanceChecker(options=ConformanceOptions.pragmatic())
        bridged_type = bridge_class(PyPerson, full_name="python.Person")
        expected = person_java()
        result = checker.conforms(bridged_type, expected)
        assert result.ok

        view = wrap(BridgedInstance(PyPerson("Monty"), bridged_type), expected, checker)
        assert view.getPersonName() == "Monty"
        view.setPersonName("Python")
        assert view.getPersonName() == "Python"
