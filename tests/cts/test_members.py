"""Tests for the CTS member model."""

import pytest

from repro.cts.members import (
    ConstructorInfo,
    FieldInfo,
    MethodInfo,
    Modifiers,
    ParameterInfo,
    TypeRef,
    Visibility,
)
from repro.cts.types import INT, OBJECT, STRING, TypeInfo, VOID


class TestModifiers:
    def test_tokens_round_trip(self):
        mods = Modifiers.STATIC | Modifiers.ABSTRACT
        assert Modifiers.from_tokens(mods.tokens()) == mods

    def test_none_has_no_tokens(self):
        assert Modifiers.NONE.tokens() == []

    def test_from_tokens_case_insensitive(self):
        assert Modifiers.from_tokens(["Static"]) == Modifiers.STATIC

    def test_unknown_token_raises(self):
        with pytest.raises(KeyError):
            Modifiers.from_tokens(["wibble"])


class TestTypeRef:
    def test_unresolved_by_default(self):
        ref = TypeRef("x.Y")
        assert not ref.is_resolved
        assert ref.resolved is None

    def test_to_builds_resolved_ref(self):
        ref = TypeRef.to(STRING)
        assert ref.is_resolved
        assert ref.resolved is STRING
        assert ref.guid == STRING.guid

    def test_resolve_with_fills_guid(self):
        ref = TypeRef("System.String")
        ref.resolve_with(STRING)
        assert ref.guid == STRING.guid
        assert ref.is_resolved

    def test_equality_by_guid_when_present(self):
        assert TypeRef.to(STRING) == TypeRef.to(STRING)
        assert TypeRef.to(STRING) != TypeRef.to(INT)

    def test_equality_by_name_when_unresolved(self):
        assert TypeRef("a.B") == TypeRef("a.B")
        assert TypeRef("a.B") != TypeRef("a.C")

    def test_repr_shows_state(self):
        assert "unresolved" in repr(TypeRef("a.B"))
        assert "resolved" in repr(TypeRef.to(STRING))


class TestFieldInfo:
    def test_signature(self):
        field = FieldInfo("name", TypeRef.to(STRING), Visibility.PRIVATE)
        assert "private" in field.signature()
        assert "System.String" in field.signature()
        assert "name" in field.signature()

    def test_default_visibility_public(self):
        assert FieldInfo("x", TypeRef.to(INT)).visibility is Visibility.PUBLIC


class TestMethodInfo:
    def _method(self):
        return MethodInfo(
            "SetName",
            [ParameterInfo("n", TypeRef.to(STRING))],
            TypeRef.to(VOID),
        )

    def test_arity(self):
        assert self._method().arity == 1

    def test_parameter_type_names(self):
        assert self._method().parameter_type_names() == ["System.String"]

    def test_signature_mentions_everything(self):
        signature = self._method().signature()
        assert "SetName" in signature
        assert "System.Void" in signature
        assert "System.String n" in signature

    def test_signature_includes_modifiers(self):
        method = MethodInfo("F", [], TypeRef.to(VOID), modifiers=Modifiers.STATIC)
        assert "static" in method.signature()


class TestConstructorInfo:
    def test_arity_and_signature(self):
        ctor = ConstructorInfo([ParameterInfo("n", TypeRef.to(STRING))])
        assert ctor.arity == 1
        assert ".ctor" in ctor.signature()
