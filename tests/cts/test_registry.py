"""Tests for the type registry."""

import pytest

from repro.cts.builder import TypeBuilder
from repro.cts.members import TypeRef
from repro.cts.registry import DuplicateTypeError, TypeNotFoundError, TypeRegistry
from repro.cts.types import INT, OBJECT, STRING


@pytest.fixture
def registry():
    return TypeRegistry()


@pytest.fixture
def some_type():
    return TypeBuilder("demo.T").field("f", "int").build()


class TestRegistration:
    def test_register_and_get(self, registry, some_type):
        registry.register(some_type)
        assert registry.get("demo.T") is some_type

    def test_register_same_identity_idempotent(self, registry, some_type):
        registry.register(some_type)
        twin = TypeBuilder("demo.T").field("f", "int").build()
        assert registry.register(twin) is some_type

    def test_register_conflicting_identity_raises(self, registry, some_type):
        registry.register(some_type)
        other = TypeBuilder("demo.T").field("g", "string").build()
        with pytest.raises(DuplicateTypeError):
            registry.register(other)

    def test_replace_allows_conflict(self, registry, some_type):
        registry.register(some_type)
        other = TypeBuilder("demo.T").field("g", "string").build()
        registry.register(other, replace=True)
        assert registry.get("demo.T") is other

    def test_register_all(self, registry):
        types = [TypeBuilder("a.A").build(), TypeBuilder("a.B").build()]
        registry.register_all(types)
        assert registry.get("a.A") is not None
        assert registry.get("a.B") is not None


class TestLookup:
    def test_builtins_preloaded(self, registry):
        assert registry.get("System.Int32") is INT
        assert registry.get("System.Object") is OBJECT

    def test_builtin_alias_lookup(self, registry):
        assert registry.get("int") is INT

    def test_get_by_guid(self, registry, some_type):
        registry.register(some_type)
        assert registry.get_by_guid(some_type.guid) is some_type

    def test_require_raises_for_unknown(self, registry):
        with pytest.raises(TypeNotFoundError):
            registry.require("no.Such")

    def test_contains_name(self, registry, some_type):
        registry.register(some_type)
        assert registry.contains_name("demo.T")
        assert registry.contains_name("string")
        assert not registry.contains_name("no.Such")


class TestResolve:
    def test_resolve_by_name(self, registry, some_type):
        registry.register(some_type)
        ref = TypeRef("demo.T")
        assert registry.resolve(ref) is some_type
        assert ref.is_resolved

    def test_resolve_by_guid_beats_name(self, registry, some_type):
        registry.register(some_type)
        ref = TypeRef("wrong.Name", guid=some_type.guid)
        assert registry.resolve(ref) is some_type

    def test_resolve_memoizes(self, registry, some_type):
        registry.register(some_type)
        ref = TypeRef("demo.T")
        registry.resolve(ref)
        assert ref.resolved is some_type

    def test_try_resolve_returns_none(self, registry):
        assert registry.try_resolve(TypeRef("no.Such")) is None

    def test_resolve_unknown_raises(self, registry):
        with pytest.raises(TypeNotFoundError):
            registry.resolve(TypeRef("no.Such"))


class TestIteration:
    def test_user_types_excludes_builtins(self, registry, some_type):
        registry.register(some_type)
        users = registry.user_types()
        assert users == [some_type]

    def test_len_counts_everything(self, registry, some_type):
        before = len(registry)
        registry.register(some_type)
        assert len(registry) == before + 1


class TestShadowRegistration:
    """Version coexistence: same full name, different identities."""

    def _versions(self):
        v1 = TypeBuilder("app.T", assembly_name="v1").field("a", "int").build()
        v2 = (
            TypeBuilder("app.T", assembly_name="v2")
            .field("a", "int")
            .field("b", "string")
            .build()
        )
        return v1, v2

    def test_shadow_keeps_both_by_guid(self, registry):
        v1, v2 = self._versions()
        registry.register(v1)
        registry.register(v2, shadow=True)
        assert registry.get_by_guid(v1.guid) is v1
        assert registry.get_by_guid(v2.guid) is v2

    def test_name_lookup_keeps_first(self, registry):
        v1, v2 = self._versions()
        registry.register(v1)
        registry.register(v2, shadow=True)
        assert registry.get("app.T") is v1

    def test_shadow_same_identity_is_noop(self, registry):
        v1, _ = self._versions()
        registry.register(v1)
        twin = TypeBuilder("app.T", assembly_name="v1").field("a", "int").build()
        assert registry.register(twin, shadow=True) is v1

    def test_without_shadow_still_raises(self, registry):
        v1, v2 = self._versions()
        registry.register(v1)
        with pytest.raises(DuplicateTypeError):
            registry.register(v2)
