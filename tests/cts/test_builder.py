"""Tests for the fluent type builder."""

import pytest

from repro.cts.builder import TypeBuilder, interface_builder
from repro.cts.members import Modifiers, Visibility
from repro.cts.types import OBJECT, TypeKind
from repro.runtime.loader import Runtime


class TestHeritage:
    def test_default_superclass_is_object(self):
        info = TypeBuilder("x.T").build()
        assert info.superclass.full_name == OBJECT.full_name

    def test_extends(self):
        info = TypeBuilder("x.T").extends("x.Base").build()
        assert info.superclass.full_name == "x.Base"

    def test_implements(self):
        info = TypeBuilder("x.T").implements("x.IA", "x.IB").build()
        assert [i.full_name for i in info.interfaces] == ["x.IA", "x.IB"]

    def test_interface_builder_has_no_superclass(self):
        iface = interface_builder("x.I").build()
        assert iface.kind is TypeKind.INTERFACE
        assert iface.superclass is None


class TestMembers:
    def test_field_options(self):
        info = (
            TypeBuilder("x.T")
            .field("a", "int")
            .field("b", "string", visibility="private", static=True)
            .build()
        )
        b = info.find_field("b")
        assert b.visibility is Visibility.PRIVATE
        assert b.modifiers & Modifiers.STATIC

    def test_method_params_as_tuples(self):
        info = TypeBuilder("x.T").method("m", [("a", "int"), ("b", "string")], "void").build()
        method = info.find_method("m")
        assert [p.name for p in method.parameters] == ["a", "b"]
        assert method.parameter_type_names() == ["System.Int32", "System.String"]

    def test_method_params_as_bare_types(self):
        info = TypeBuilder("x.T").method("m", ["int"], "void").build()
        assert info.find_method("m").parameters[0].name == "arg0"

    def test_method_flags(self):
        info = TypeBuilder("x.T").method("m", [], "void", static=True, abstract=True).build()
        mods = info.find_method("m").modifiers
        assert mods & Modifiers.STATIC
        assert mods & Modifiers.ABSTRACT

    def test_user_type_refs_stay_unresolved(self):
        info = TypeBuilder("x.T").field("f", "other.U").build()
        assert not info.find_field("f").type_ref.is_resolved


class TestExecutableBodies:
    def test_getter_setter_shorthands(self):
        info = (
            TypeBuilder("x.P")
            .field("name", "string", visibility="private")
            .getter("GetName", "name", "string")
            .setter("SetName", "name", "string")
            .ctor([("n", "string")], body=lambda self, n: self.set_field("name", n))
            .build()
        )
        runtime = Runtime()
        runtime.load_type(info)
        obj = runtime.instantiate(info, ["Rob"])
        assert obj.invoke("GetName") == "Rob"
        obj.invoke("SetName", "Jim")
        assert obj.invoke("GetName") == "Jim"

    def test_native_lambda_body(self):
        info = TypeBuilder("x.M").method("Add", [("a", "int"), ("b", "int")], "int",
                                         body=lambda self, a, b: a + b).build()
        runtime = Runtime()
        runtime.load_type(info)
        obj = runtime.instantiate(info)
        assert obj.invoke("Add", 2, 3) == 5
