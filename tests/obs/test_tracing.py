"""Unit tests for per-record tracing: id minting, the bounded span
ring, cross-shard stitching and the timeline renderer."""

from repro.obs.tracing import (
    SPAN_STAGES,
    TraceBuffer,
    TraceIdSource,
    render_timeline,
    spans_to_log,
    stitch,
)


class TestTraceIdSource:
    def test_ids_are_unique_and_tagged(self):
        source = TraceIdSource("shard0")
        ids = [source.next() for _ in range(100)]
        assert len(set(ids)) == 100
        assert all(trace.startswith(source.tag + "-") for trace in ids)

    def test_different_nodes_get_different_tags(self):
        assert TraceIdSource("shard0").tag != TraceIdSource("shard1").tag

    def test_ids_are_compact(self):
        # Varint-cheap in the header: tag (6 hex) + dash + short counter.
        assert len(TraceIdSource("a-very-long-shard-name").next()) <= 12


class TestTraceBuffer:
    def test_record_and_events(self):
        ring = TraceBuffer("shard0")
        ring.record("t-1", "admit", {"src": "pub", "bytes": 10})
        ring.record("t-1", "route", {"records": 1})
        spans = ring.events()
        assert [span["stage"] for span in spans] == ["admit", "route"]
        assert spans[0]["node"] == "shard0"
        assert spans[0]["trace"] == "t-1"
        assert spans[0]["src"] == "pub"
        assert spans[0]["seq"] < spans[1]["seq"]

    def test_none_trace_is_not_recorded(self):
        ring = TraceBuffer("shard0")
        ring.record(None, "admit")
        assert len(ring) == 0

    def test_ring_is_bounded(self):
        ring = TraceBuffer("shard0", capacity=8)
        for index in range(100):
            ring.record("t-%d" % index, "route")
        assert len(ring) == 8
        # Oldest events fell off; the newest survived.
        assert ring.events()[-1]["trace"] == "t-99"
        assert ring.events()[0]["trace"] == "t-92"

    def test_events_filter_by_trace(self):
        ring = TraceBuffer("shard0")
        ring.record("t-1", "admit")
        ring.record("t-2", "admit")
        ring.record("t-1", "dispatch")
        assert [span["stage"] for span in ring.events("t-1")] == \
            ["admit", "dispatch"]

    def test_trace_ids_distinct_oldest_first(self):
        ring = TraceBuffer("shard0")
        for trace in ("a", "b", "a", "c"):
            ring.record(trace, "route")
        assert ring.trace_ids() == ["a", "b", "c"]


class TestStitch:
    def test_orders_by_wall_clock_then_node_then_seq(self):
        shard_a = [{"ts": 2.0, "node": "a", "seq": 1, "trace": "t"},
                   {"ts": 1.0, "node": "a", "seq": 2, "trace": "t"}]
        shard_b = [{"ts": 1.0, "node": "b", "seq": 1, "trace": "t"},
                   {"ts": 1.0, "node": "a", "seq": 1, "trace": "t"}]
        merged = stitch([shard_a, shard_b])
        keys = [(span["ts"], span["node"], span["seq"]) for span in merged]
        assert keys == sorted(keys)

    def test_filters_to_one_trace(self):
        spans = [{"ts": 1.0, "trace": "x"}, {"ts": 2.0, "trace": "y"}]
        assert [span["trace"] for span in stitch([spans], trace="y")] == ["y"]


class TestSpansToLog:
    def test_cross_peer_stages_chart(self):
        spans = [
            {"node": "s1", "stage": "admit", "src": "pub", "bytes": 64},
            {"node": "s1", "stage": "append", "offset": 0},
            {"node": "s1", "stage": "replicate",
             "followers": ["s2", "s3"], "bytes": 64},
            {"node": "s1", "stage": "route", "records": 1},
            {"node": "s1", "stage": "ack", "peer": "sub0"},
        ]
        log = spans_to_log(spans)
        assert ("pub", "s1", "admit", 64) in log
        assert ("s1", "s2", "replicate", 64) in log
        assert ("s1", "s3", "replicate", 64) in log
        assert ("sub0", "s1", "ack", 0) in log
        # Point events (append/route) have no second lifeline.
        assert not any(entry[2] in ("append", "route") for entry in log)

    def test_local_admit_stays_out_of_chart(self):
        assert spans_to_log(
            [{"node": "s1", "stage": "admit", "src": "s1"}]) == []


class TestRenderTimeline:
    def test_empty(self):
        assert render_timeline([]) == "(no spans)"
        assert "t-9" in render_timeline([], trace="t-9")

    def test_timeline_table_and_chart(self):
        spans = [
            {"seq": 1, "ts": 10.0, "node": "s1", "trace": "t-1",
             "stage": "admit", "src": "pub", "bytes": 32},
            {"seq": 2, "ts": 10.001, "node": "s1", "trace": "t-1",
             "stage": "route", "records": 1},
            {"seq": 1, "ts": 10.002, "node": "s2", "trace": "t-1",
             "stage": "admit", "src": "s1", "bytes": 32},
        ]
        text = render_timeline(spans, trace="t-1")
        assert "trace t-1 — 3 spans across 2 node(s)" in text
        assert "+    0.000ms" in text
        assert "admit" in text and "route" in text
        # The sequence chart section renders the cross-shard hop.
        assert "s1" in text and "s2" in text

    def test_span_stages_cover_pipeline(self):
        assert SPAN_STAGES == ("admit", "route", "append", "replicate",
                               "dispatch", "ack")
