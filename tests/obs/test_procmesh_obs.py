"""Operational-API integration tests: SocketMesh and ProcessMesh.

The in-process :class:`SocketMesh` tests cover the HTTP route table,
auth and admin plumbing cheaply; the single :class:`ProcessMesh` test is
the PR's acceptance path — a record published through real OS processes
leaves a stitched cross-shard trace timeline, every node serves a
parseable ``/metrics`` page, one node answers ``/mesh/*`` for the whole
mesh, and admin operations are token-guarded end to end.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.apps.tps import TpsPeer
from repro.apps.tps.procmesh import (
    ADMIN_OPS,
    KIND_PROC_STOP,
    ProcessMesh,
    SocketMesh,
)
from repro.fixtures import person_assembly_pair, person_java
from repro.obs.metrics import parse_exposition


def get(url, token=None, method="GET", body=None, timeout=20):
    request = urllib.request.Request(url, data=body, method=method)
    if token is not None:
        request.add_header("Authorization", "Bearer " + token)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def mesh_get(mesh, url, **kwargs):
    """Fetch from an in-process SocketMesh node.  The mesh's polled HTTP
    server only answers while the mesh is pumped, so the request runs on
    a helper thread while this thread drives :meth:`SocketMesh.flush`."""
    box = {}

    def fetch():
        box["result"] = get(url, **kwargs)

    thread = threading.Thread(target=fetch, daemon=True)
    thread.start()
    while thread.is_alive():
        mesh.flush()
        thread.join(timeout=0.001)
    return box["result"]


def metric_groups(samples):
    """Top-level family groups present on an exposition page."""
    return {name.split("_")[1] for name in samples}


@pytest.fixture
def socket_mesh(tmp_path):
    mesh = SocketMesh(shard_count=3, name="obssock",
                      log_root=str(tmp_path / "logs"), replication_factor=1)
    driver = mesh.client_network("obssock-driver")
    publisher = TpsPeer("publisher", driver)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    delivered = []
    subscriber = TpsPeer("sub0", driver)
    # Durable: the subscription is persisted with the shard's log, so it
    # survives the restart-in-place admin test below.
    subscriber.subscribe_durable_remote(mesh.shard_for("sub0"),
                                        person_java(), delivered.append,
                                        cursor="sub0-cursor")
    try:
        yield mesh, publisher, delivered
    finally:
        mesh.close()


def publish_one(mesh, publisher, shard_id, text="hello"):
    publisher.publish_async(
        shard_id, publisher.new_instance("demo.a.Person", [text]))
    mesh.run_until_idle()


class TestSocketMeshHttp:
    def test_metrics_page_parses_and_covers_families(self, socket_mesh):
        mesh, publisher, delivered = socket_mesh
        publish_one(mesh, publisher, mesh.shard_for("sub0"))
        assert delivered
        server = mesh.serve_http()
        assert mesh.serve_http() is server  # idempotent

        status, payload = mesh_get(mesh, server.address + "/metrics")
        assert status == 200
        samples = parse_exposition(payload.decode("utf-8"))
        groups = metric_groups(samples)
        assert {"pipeline", "log", "replication", "transport",
                "mesh", "trace"} <= groups
        # Every shard labels its samples on the merged page.
        labels = {dict(pairs).get("shard")
                  for pairs in samples["repro_pipeline_events_routed"]}
        assert labels == set(mesh.shard_ids)

    def test_stats_and_shard_filter(self, socket_mesh):
        mesh, publisher, _ = socket_mesh
        server = mesh.serve_http()
        status, payload = mesh_get(mesh, server.address + "/stats")
        assert status == 200
        assert set(json.loads(payload)["shards"]) == set(mesh.shard_ids)

        shard_id = mesh.shard_ids[0]
        status, payload = mesh_get(mesh, server.address + "/stats?shard=" + shard_id)
        assert status == 200
        assert "events_routed" in json.loads(payload)
        assert mesh_get(mesh, server.address + "/metrics?shard=nope")[0] == 404

    def test_log_cursors_replicas_pages(self, socket_mesh):
        mesh, publisher, _ = socket_mesh
        publish_one(mesh, publisher, mesh.shard_ids[0])
        server = mesh.serve_http()
        for path in ("/log", "/cursors", "/replicas"):
            status, payload = mesh_get(mesh, server.address + path)
            assert status == 200, path
            assert set(json.loads(payload)) == set(mesh.shard_ids), path

    def test_trace_listing_and_timeline(self, socket_mesh):
        mesh, publisher, delivered = socket_mesh
        publish_one(mesh, publisher, mesh.shard_for("sub0"))
        server = mesh.serve_http()
        status, payload = mesh_get(mesh, server.address + "/trace")
        traces = json.loads(payload)["traces"]
        assert status == 200 and traces
        status, payload = mesh_get(mesh, server.address + "/trace?id=" + traces[-1])
        body = json.loads(payload)
        assert body["spans"]
        assert "timeline" in body
        assert traces[-1] in mesh.render_trace(traces[-1])

    def test_admin_requires_token_and_counts_rejects(self, socket_mesh):
        mesh, publisher, _ = socket_mesh
        publish_one(mesh, publisher, mesh.shard_ids[0])
        server = mesh.serve_http()
        url = server.address + "/admin/compact"
        assert mesh_get(mesh, url, method="POST", body=b"")[0] == 401
        assert mesh_get(mesh, url, token="wrong", method="POST", body=b"")[0] == 401
        assert server.unauthorized == 2
        status, payload = mesh_get(mesh, url, token=mesh.auth_token,
                                   method="POST", body=b"")
        assert status == 200
        envelope = json.loads(payload)
        assert envelope["ok"] and envelope["op"] == "compact"
        assert envelope["epoch"] == mesh.epoch
        assert set(envelope["result"]) == set(mesh.shard_ids)

    def test_admin_prune_and_bad_op_routes(self, socket_mesh):
        mesh, publisher, _ = socket_mesh
        server = mesh.serve_http()
        status, payload = mesh_get(
            mesh, server.address + "/admin/prune", token=mesh.auth_token,
            method="POST", body=json.dumps({"max_idle_incarnations": 1})
            .encode("utf-8"))
        assert status == 200
        envelope = json.loads(payload)
        assert envelope["ok"] and envelope["op"] == "prune"
        assert set(envelope["result"]) == set(mesh.shard_ids)
        assert mesh_get(mesh, server.address + "/admin/explode",
                        token=mesh.auth_token, method="POST",
                        body=b"")[0] == 404
        assert "restart_shard" in ADMIN_OPS

    def test_restart_shard_over_http(self, socket_mesh):
        mesh, publisher, delivered = socket_mesh
        shard_id = mesh.shard_for("sub0")
        status, payload = mesh_get(
            mesh, mesh.serve_http().address + "/admin/restart_shard",
            token=mesh.auth_token, method="POST",
            body=json.dumps({"shard": shard_id}).encode("utf-8"))
        assert status == 200
        # The rebuilt shard recovered its subscriptions: a fresh publish
        # still reaches the durable subscriber.
        publish_one(mesh, publisher, shard_id, "after-restart")
        assert any(value.getPersonName() == "after-restart"
                   for value in delivered)

    def test_compact_without_log_is_400(self, tmp_path):
        mesh = SocketMesh(shard_count=2, name="obsnolog")
        try:
            server = mesh.serve_http()
            status, payload = mesh_get(mesh, server.address + "/admin/compact",
                                  token=mesh.auth_token, method="POST",
                                  body=b"")
            assert status == 400
        finally:
            mesh.close()


class TestProcessMeshObservability:
    def test_cross_process_trace_http_and_admin(self, tmp_path):
        mesh = ProcessMesh(shard_count=4, name="obsproc",
                           log_root=str(tmp_path / "logs"),
                           replication_factor=1)
        try:
            driver = mesh.network
            publisher = TpsPeer("publisher", driver)
            asm_a, _ = person_assembly_pair()
            publisher.host_assembly(asm_a)
            delivered = []
            subscriber = TpsPeer("sub0", driver)
            home = mesh.shard_for("sub0")
            subscriber.subscribe_remote(home, person_java(),
                                        delivered.append)
            # Warm every shard: the first record of a type rides the
            # eager code-fetch path, whose per-value forward re-encode
            # does not carry the trace id.  Every later record is
            # admitted header-only and the id travels in the frame bytes.
            for shard_id in mesh.shard_ids:
                publisher.publish_async(
                    shard_id,
                    publisher.new_instance("demo.a.Person", ["warm"]))
            for _ in range(2000):
                driver.poll(0.01)
                if len(delivered) >= len(mesh.shard_ids):
                    break
            warm_count = len(delivered)
            assert warm_count >= len(mesh.shard_ids)

            # Publish to a DIFFERENT shard: the record must cross a real
            # process boundary to reach the subscriber.
            target = next(sid for sid in mesh.shard_ids if sid != home)
            publisher.publish_async(
                target, publisher.new_instance("demo.a.Person", ["x"]))
            for _ in range(2000):
                driver.poll(0.01)
                if len(delivered) > warm_count:
                    break
            assert len(delivered) > warm_count

            # -- the acceptance path: a stitched cross-shard timeline --
            spans = mesh.trace_events()
            by_trace = {}
            for span in spans:
                by_trace.setdefault(span["trace"], []).append(span)
            trace, journey = next(
                (trace, journey) for trace, journey in by_trace.items()
                if len({span["node"] for span in journey}) >= 2)
            stages = {span["stage"] for span in journey}
            assert {"admit", "append", "route", "dispatch"} <= stages
            timeline = mesh.render_trace(trace)
            assert "2 node(s)" in timeline or "3 node(s)" in timeline
            assert "admit" in timeline

            # -- every node serves parseable /metrics with the four
            #    acceptance families --
            address = mesh.http_address(target)
            status, payload = get(address + "/metrics")
            assert status == 200
            groups = metric_groups(parse_exposition(payload.decode("utf-8")))
            assert {"pipeline", "log", "replication", "transport"} <= groups

            # -- one node answers for the whole mesh --
            status, payload = get(address + "/mesh/stats")
            assert status == 200
            assert set(json.loads(payload)["mesh"]) == set(mesh.shard_ids)
            status, payload = get(address + "/mesh/metrics")
            assert status == 200
            merged = parse_exposition(payload.decode("utf-8"))
            shards_seen = {dict(pairs).get("shard")
                           for pairs in merged["repro_pipeline_events_routed"]}
            assert shards_seen == set(mesh.shard_ids)
            status, payload = get(address + "/mesh/trace?id=" + trace)
            assert status == 200
            assert trace in json.loads(payload)["timeline"]

            # -- admin surface: token-guarded over HTTP and sockets --
            assert get(address + "/admin/compact", method="POST",
                       body=b"")[0] == 401
            status, payload = get(address + "/admin/compact",
                                  token=mesh.auth_token, method="POST",
                                  body=b"")
            assert status == 200
            result = mesh.admin("prune", target,
                                {"max_idle_incarnations": 3})
            assert result["ok"] and "pruned" in result["result"]

            # Unauthorized proc_stop is refused and counted; the HTTP
            # 401 above is counted on its own gauge.
            assert driver.request("nosy", target, KIND_PROC_STOP,
                                  b"wrong-token") == b"DENIED"
            node = mesh.shard_stats(target)
            assert node["unauthorized"] >= 1
            assert node["http_unauthorized"] >= 1

            # -- in-place restart keeps the shard serving --
            restart = mesh.restart_shard(target)
            assert restart["ok"] and restart["result"]["restarting"] == target
            for _ in range(200):
                driver.poll(0.01)
                if mesh.shard_stats(target).get("restarts"):
                    break
            assert mesh.shard_stats(target)["restarts"] == 1
            before_restart = len(delivered)
            publisher.publish_async(
                target, publisher.new_instance("demo.a.Person", ["again"]))
            for _ in range(2000):
                driver.poll(0.01)
                if len(delivered) > before_restart:
                    break
            assert len(delivered) > before_restart
        finally:
            mesh.stop()
