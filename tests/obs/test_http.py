"""Unit tests for the polled HTTP operational server: routing, render
rules, auth, and error handling.

The production server is polled from a pump loop; here a daemon thread
polls it so plain ``urllib`` calls from the test thread get answered.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.obs.http import HttpError, ObsHttpServer, json_body


@contextmanager
def serving(server):
    stop = threading.Event()

    def pump():
        # poll() never blocks (zero-timeout select); yield the GIL so the
        # test thread's urllib call makes progress between polls.
        while not stop.is_set():
            server.poll()
            time.sleep(0.001)

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        stop.set()
        thread.join(timeout=2)
        server.close()


def get(url, token=None, method="GET", body=None):
    request = urllib.request.Request(url, data=body, method=method)
    if token is not None:
        request.add_header("Authorization", "Bearer " + token)
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, response.headers.get("Content-Type"), \
                response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type"), error.read()


class TestJsonBody:
    def test_empty_body_is_empty_object(self):
        assert json_body(b"") == {}

    def test_object_parses(self):
        assert json_body(b'{"op": "compact"}') == {"op": "compact"}

    @pytest.mark.parametrize("body", [b"not json", b"[1,2]", b'"str"',
                                      b"\xff\xfe"])
    def test_non_object_rejected_with_400(self, body):
        with pytest.raises(HttpError) as excinfo:
            json_body(body)
        assert excinfo.value.status == 400


class TestRoutesAndRender:
    def test_render_rules_and_query(self):
        server = ObsHttpServer()
        server.route("GET", "/text", lambda query, body: "plain\n")
        server.route("GET", "/json",
                     lambda query, body: {"q": query.get("x")})
        server.route("GET", "/raw",
                     lambda query, body: ("application/x-custom", b"\x00\x01"))
        with serving(server):
            status, content_type, payload = get(server.address + "/text")
            assert (status, payload) == (200, b"plain\n")
            assert content_type.startswith("text/plain")

            status, content_type, payload = get(server.address + "/json?x=7&x=9")
            assert status == 200
            assert content_type == "application/json"
            assert json.loads(payload) == {"q": "9"}  # last value wins

            status, content_type, payload = get(server.address + "/raw")
            assert (content_type, payload) == ("application/x-custom",
                                               b"\x00\x01")

    def test_post_body_reaches_handler(self):
        server = ObsHttpServer(token="secret")
        server.route("POST", "/echo",
                     lambda query, body: {"got": body.decode("utf-8")},
                     auth=True)
        with serving(server):
            status, _, payload = get(server.address + "/echo", token="secret",
                                     method="POST", body=b"hello")
            assert status == 200
            assert json.loads(payload) == {"got": "hello"}

    def test_404_405_and_request_counter(self):
        server = ObsHttpServer()
        server.route("GET", "/only-get", lambda query, body: "ok")
        with serving(server):
            assert get(server.address + "/missing")[0] == 404
            assert get(server.address + "/only-get", method="POST",
                       body=b"")[0] == 405
            assert get(server.address + "/only-get")[0] == 200
        assert server.requests >= 3

    def test_http_error_sets_status(self):
        server = ObsHttpServer()

        def handler(query, body):
            raise HttpError(400, "bad shard")

        server.route("GET", "/boom", handler)
        with serving(server):
            status, _, payload = get(server.address + "/boom")
            assert (status, payload) == (400, b"bad shard\n")

    def test_handler_crash_is_500_not_fatal(self):
        server = ObsHttpServer()
        server.route("GET", "/crash",
                     lambda query, body: 1 / 0)
        server.route("GET", "/fine", lambda query, body: "ok")
        with serving(server):
            assert get(server.address + "/crash")[0] == 500
            # The pump survived the broken route.
            assert get(server.address + "/fine")[0] == 200


class TestAuth:
    def test_wrong_and_missing_token_rejected_and_counted(self):
        server = ObsHttpServer(token="secret")
        server.route("POST", "/admin", lambda query, body: {"ok": True},
                     auth=True)
        with serving(server):
            assert get(server.address + "/admin", method="POST",
                       body=b"")[0] == 401
            assert get(server.address + "/admin", token="wrong",
                       method="POST", body=b"")[0] == 401
            assert get(server.address + "/admin", token="secret",
                       method="POST", body=b"")[0] == 200
        assert server.unauthorized == 2

    def test_no_token_seals_admin_surface(self):
        server = ObsHttpServer(token=None)
        server.route("POST", "/admin", lambda query, body: {"ok": True},
                     auth=True)
        with serving(server):
            # Even an empty bearer token cannot open a token-less server.
            assert get(server.address + "/admin", token="",
                       method="POST", body=b"")[0] == 401
        assert server.unauthorized == 1

    def test_unauthenticated_read_routes_stay_open(self):
        server = ObsHttpServer(token="secret")
        server.route("GET", "/stats", lambda query, body: {"up": 1})
        with serving(server):
            assert get(server.address + "/stats")[0] == 200
