"""Stats-schema regression suite.

Every ``stats()`` dict is a published compatibility view — downstream
tooling (benchmarks/report.py, the soak harness, the CI smoke jobs)
indexes these keys by name.  These tests pin the exact key sets so a
refactor that drops or renames one fails loudly here, and pin the
metrics-registry group sets that mirror them.
"""

import pytest

from repro.apps.tps import BrokerMesh, TpsPeer
from repro.apps.tps.broker import LocalBroker, TpsBroker
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.net.socket_transport import SocketNetwork
from repro.obs.bridge import register_network_metrics
from repro.obs.metrics import MetricsRegistry

LOCAL_BROKER_KEYS = {"published", "delivered", "subscriptions", "routing"}

TPS_BROKER_KEYS = {"events_routed", "subscriptions", "routing",
                   "transport", "codec"}

TPS_DURABLE_EXTRA_KEYS = {"log", "cursors", "events_replayed",
                          "replay_failures", "delivery_failures",
                          "retention_lost_records", "pending_acks"}

#: A durable mesh shard always carries the forward/batch counters, the
#: replica store (it may hold records replicated *to* it) and the
#: backlog-fetch service counters; the ``replication`` leader summary
#: appears only when a replication factor is configured.
MESH_SHARD_EXTRA_KEYS = {"batches_sent", "batch_events", "forwards_sent",
                         "forward_events", "forwards_received",
                         "gossip_failures", "summary_types",
                         "pending_deliveries", "replicas", "replica_records",
                         "replica_rejects", "healed_records",
                         "events_fetched", "fetches_served",
                         "fetch_records_served", "fetch_failures",
                         "epoch", "handoffs", "adoptions"}

MESH_REPLICATED_EXTRA_KEYS = {"replication"}

BROKER_MESH_KEYS = {"epoch", "shards", "events_routed", "forwards_sent",
                    "forward_events", "batch_events", "gossip_failures",
                    "events_replayed", "replay_failures", "events_fetched",
                    "records_replicated", "replica_records",
                    "healed_records"}

TRANSPORT_SNAPSHOT_KEYS = {"node", "epoch", "peer_epochs",
                           "frames_sent", "frames_received",
                           "frames_lost", "bytes_received", "framing_errors",
                           "blocked_sends", "bytes_copied",
                           "queue_high_water", "links",
                           "recv_pool", "by_kind_messages", "by_kind_bytes"}

WATERMARK_KEYS = {"sent", "acked", "queued", "lag"}


def durable_mesh(tmp_path, **kwargs):
    network = SimulatedNetwork()
    mesh = BrokerMesh(network, shard_count=2, log_root=str(tmp_path / "log"),
                      **kwargs)
    publisher = TpsPeer("publisher", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    delivered = []
    subscriber = TpsPeer("sub0", network)
    subscriber.subscribe_remote(mesh.shard_for("sub0"), person_java(),
                                delivered.append)
    publisher.publish_async(mesh.shard_for("publisher"),
                            publisher.new_instance("demo.a.Person", ["x"]))
    mesh.run_until_idle()
    assert delivered
    return network, mesh


class TestStatsKeySets:
    def test_local_broker(self):
        assert set(LocalBroker().stats()) == LOCAL_BROKER_KEYS

    def test_tps_broker_without_log(self):
        network = SimulatedNetwork()
        broker = TpsBroker("solo", network)
        assert set(broker.stats()) == TPS_BROKER_KEYS
        broker.close()

    def test_tps_broker_with_log(self, tmp_path):
        network = SimulatedNetwork()
        broker = TpsBroker("solo", network, log_dir=str(tmp_path / "log"))
        assert set(broker.stats()) == TPS_BROKER_KEYS | TPS_DURABLE_EXTRA_KEYS
        broker.close()

    def test_mesh_shard(self, tmp_path):
        _, mesh = durable_mesh(tmp_path)
        shard = mesh.shards[0]
        expected = (TPS_BROKER_KEYS | TPS_DURABLE_EXTRA_KEYS
                    | MESH_SHARD_EXTRA_KEYS)
        assert set(shard.stats()) == expected
        mesh.close()

    def test_mesh_shard_with_replication(self, tmp_path):
        _, mesh = durable_mesh(tmp_path, replication_factor=1)
        shard = mesh.shards[0]
        expected = (TPS_BROKER_KEYS | TPS_DURABLE_EXTRA_KEYS
                    | MESH_SHARD_EXTRA_KEYS | MESH_REPLICATED_EXTRA_KEYS)
        assert set(shard.stats()) == expected
        replication = shard.stats()["replication"]
        assert set(replication) == {"factor", "followers",
                                    "records_replicated", "batches_sent",
                                    "resends"}
        for marks in replication["followers"].values():
            assert set(marks) == WATERMARK_KEYS
        mesh.close()

    def test_broker_mesh(self, tmp_path):
        _, mesh = durable_mesh(tmp_path)
        snapshot = mesh.stats()
        assert set(snapshot) == BROKER_MESH_KEYS
        assert set(snapshot["shards"]) == set(mesh.shard_ids)
        mesh.close()

    def test_socket_transport_snapshot(self):
        network = SocketNetwork("schema-node")
        try:
            assert set(network.transport_snapshot()) == \
                TRANSPORT_SNAPSHOT_KEYS
        finally:
            network.close()


class TestWatermarkLagGauge:
    def test_per_follower_lag_is_queued_minus_acked_depth(self, tmp_path):
        """The satellite bugfix: queued-but-unacked replication depth is
        visible per follower, in stats() and as a labeled gauge."""
        _, mesh = durable_mesh(tmp_path, replication_factor=1)
        shard = next(s for s in mesh.shards if s.replication is not None
                     and s.replication.watermarks())
        for follower, marks in shard.replication.watermarks().items():
            assert marks["lag"] == marks["queued"] - marks["acked"]
            assert marks["lag"] == 0  # idle mesh: everything acked
        family = shard.metrics.get("replication.watermark_lag")
        assert family is not None
        assert family.labelnames == ("follower",)
        lag_by_follower = family.value()
        assert lag_by_follower  # at least one follower sampled
        assert all(value == 0 for value in lag_by_follower.values())
        mesh.close()


class TestMetricsGroupSets:
    """The registry tree mirrors stats(): group presence is part of the
    schema (log/replication groups appear only when configured)."""

    def test_tps_broker_groups(self, tmp_path):
        network = SimulatedNetwork()
        plain = TpsBroker("plain", network)
        assert set(plain.metrics.snapshot()) == \
            {"codec", "pipeline", "protocol", "routing", "trace"}
        durable = TpsBroker("durable", network, log_dir=str(tmp_path / "log"))
        assert set(durable.metrics.snapshot()) == \
            {"codec", "pipeline", "protocol", "routing", "log", "trace"}
        untraced = TpsBroker("untraced", network, tracing=False)
        assert "trace" not in untraced.metrics.snapshot()
        for broker in (plain, durable, untraced):
            broker.close()

    def test_mesh_shard_groups(self, tmp_path):
        _, mesh = durable_mesh(tmp_path, replication_factor=1)
        shard = mesh.shards[0]
        assert set(shard.metrics.snapshot()) == \
            {"codec", "pipeline", "protocol", "routing", "log", "trace",
             "mesh", "replication"}
        mesh.close()

    def test_network_registration_adds_transport_group(self):
        registry = MetricsRegistry()
        network = SocketNetwork("metrics-node")
        try:
            register_network_metrics(registry, network)
            tree = registry.snapshot()
            assert set(tree) == {"transport"}
            assert tree["transport"]["links"] == 0
            assert tree["transport"]["frames_sent"] == 0
        finally:
            network.close()

    def test_stats_and_metrics_agree(self, tmp_path):
        """The registry samples the same counters stats() reports."""
        _, mesh = durable_mesh(tmp_path)
        shard = mesh.shards[0]
        stats = shard.stats()
        tree = shard.metrics.snapshot()
        assert tree["pipeline"]["events_routed"] == stats["events_routed"]
        assert tree["log"]["records"] == stats["log"]["records"]
        assert tree["mesh"]["forwards_sent"] == stats["forwards_sent"]
        mesh.close()
