"""Trace-propagation property: one id per record journey, zero decodes.

A hypothesis-generated publish script runs on a replicated
:class:`BrokerMesh`.  The properties:

- every publish mints exactly ONE trace id, and every span that id
  produces — across the home shard, forward hops and replica followers —
  carries that same id (the id travels inside the frame bytes, so a
  second mint anywhere would prove a header re-encode);
- each journey's home shard records the full ``admit -> append ->
  replicate -> route -> dispatch`` stage ladder;
- propagation costs nothing on the zero-copy path: no shard decodes a
  single value for warm-type records;
- every span ring stays within its configured capacity.
"""

import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.tps import BrokerMesh, TpsPeer
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork

N_SHARDS = 3

_publishes = st.lists(st.integers(0, N_SHARDS - 1), min_size=1, max_size=10)


def build_world(root, trace_capacity=512):
    network = SimulatedNetwork()
    mesh = BrokerMesh(network, shard_count=N_SHARDS, log_root=root,
                      replication_factor=1, trace_capacity=trace_capacity)
    publisher = TpsPeer("publisher", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    delivered = []
    subscribers = []
    for index in range(N_SHARDS * 2):
        peer = TpsPeer("sub%02d" % index, network)
        peer.subscribe_remote(mesh.shard_for(peer.peer_id), person_java(),
                              delivered.append)
        subscribers.append(peer)
    return network, mesh, publisher, delivered


def warm_and_reset(mesh, publisher):
    """Teach every shard the type, then zero the trace rings and decode
    counters so only the measured publishes are visible."""
    for shard_id in mesh.shard_ids:
        publisher.publish_async(
            shard_id, publisher.new_instance("demo.a.Person", ["warm"]))
    mesh.run_until_idle()
    for shard in mesh.shards:
        shard.tracer._events.clear()
        shard.codec.stats.decodes = 0


@settings(max_examples=10, deadline=None)
@given(script=_publishes)
def test_one_trace_id_per_journey_and_zero_decodes(script):
    root = tempfile.mkdtemp(prefix="traceprop-")
    try:
        network, mesh, publisher, delivered = build_world(root)
        warm_and_reset(mesh, publisher)
        delivered.clear()

        for index, shard_index in enumerate(script):
            publisher.publish_async(
                mesh.shard_ids[shard_index],
                publisher.new_instance("demo.a.Person", ["e%d" % index]))
        mesh.run_until_idle()
        assert len(delivered) == len(script) * len(mesh.shard_ids) * 2

        spans = [span for shard in mesh.shards
                 for span in shard.tracer.events()]
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span["trace"], []).append(span)

        # One mint per publish: N publishes -> exactly N distinct ids.
        assert len(by_trace) == len(script)

        for trace, journey in by_trace.items():
            # The home shard saw the publisher directly; forward hops
            # admit the same id from the home shard — never a fresh one.
            admits = [span for span in journey if span["stage"] == "admit"]
            origins = {span["src"] for span in admits}
            assert "publisher" in origins
            home = next(span["node"] for span in admits
                        if span["src"] == "publisher")
            stages = [span["stage"] for span in journey
                      if span["node"] == home]
            assert stages[:3] == ["admit", "append", "replicate"]
            assert "route" in stages and "dispatch" in stages

        # Zero-copy preserved: tracing added no value decodes anywhere.
        for shard in mesh.shards:
            assert shard.codec.stats.decodes == 0, shard.peer_id
        mesh.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)


@settings(max_examples=5, deadline=None)
@given(n_events=st.integers(1, 40), capacity=st.integers(1, 16))
def test_span_ring_never_exceeds_capacity(n_events, capacity):
    root = tempfile.mkdtemp(prefix="tracering-")
    try:
        network, mesh, publisher, delivered = build_world(
            root, trace_capacity=capacity)
        home = mesh.shard_for("publisher")
        for index in range(n_events):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person",
                                             ["r%d" % index]))
        mesh.run_until_idle()
        for shard in mesh.shards:
            assert len(shard.tracer) <= capacity
        mesh.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
