"""Unit tests for the metrics registry (counters, gauges, histograms,
families, snapshot tree, Prometheus exposition and its parser)."""

import pytest

from repro.apps.tps.procmesh import merge_expositions
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)


class TestInstruments:
    def test_counter(self):
        counter = Counter()
        assert counter.get() == 0
        counter.inc()
        counter.inc(41)
        assert counter.get() == 42

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(7)
        gauge.inc()
        gauge.dec(3)
        assert gauge.get() == 5

    def test_histogram_counts_and_sum(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        data = histogram.get()
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(555.5)
        assert data["max"] == 500.0
        # Cumulative buckets, +Inf last.
        assert data["buckets"] == {"1": 1, "10": 2, "100": 3, "+Inf": 4}

    def test_histogram_percentile_is_bucket_resolution(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for _ in range(99):
            histogram.observe(0.5)
        histogram.observe(50.0)
        # p50 lands in the first bucket: reported as its upper bound,
        # capped by the observed max when that is lower.
        assert histogram.percentile(0.50) == 1.0
        # The tail quantile lands in the 100.0 bucket but the reported
        # value is capped by the exact observed maximum.
        assert histogram.percentile(0.999) == 50.0

    def test_histogram_overflow_bucket_reports_exact_max(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(123.0)
        assert histogram.percentile(0.99) == 123.0

    def test_histogram_max_caps_bucket_bound(self):
        histogram = Histogram(bounds=(1.0, 1000.0))
        histogram.observe(2.0)
        # The sample sits in the 1000.0 bucket but the observed max is 2.
        assert histogram.percentile(0.5) == 2.0

    def test_empty_histogram_percentiles(self):
        histogram = Histogram()
        assert histogram.percentile(0.99) == 0.0
        assert histogram.percentiles() == {
            "p50": 0.0, "p99": 0.0, "p999": 0.0, "max": 0.0, "samples": 0}

    def test_percentiles_schema(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.percentiles()
        assert set(summary) == {"p50", "p99", "p999", "max", "samples"}
        assert summary["samples"] == 3
        assert summary["max"] == 3.0

    @pytest.mark.parametrize("bounds", [(), (1.0, 1.0), (2.0, 1.0)])
    def test_bad_bounds_rejected(self, bounds):
        with pytest.raises(ValueError):
            Histogram(bounds=bounds)

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == \
            sorted(set(DEFAULT_LATENCY_BUCKETS_MS))


class TestFamily:
    def test_bad_name_rejected(self):
        for name in ("Bad", "1x", "a..b", "a-b", ""):
            with pytest.raises(ValueError):
                Family(name, "counter")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Family("x", "summary")

    def test_two_label_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Family("x", "counter", labelnames=("a", "b"))

    def test_sampled_histogram_rejected(self):
        with pytest.raises(ValueError):
            Family("x", "histogram", sample=lambda: 1)

    def test_unlabeled_family_proxies_to_anonymous_child(self):
        family = Family("x", "counter")
        family.inc(3)
        assert family.value() == 3
        assert family.items() == [("", 3)]

    def test_unlabeled_native_family_samples_zero_from_birth(self):
        # An untouched family must still emit a sample line — the CI
        # loss-oracle gauges are scraped before anything increments them.
        assert Family("x", "gauge").value() == 0
        assert Family("x", "counter").items() == [("", 0)]

    def test_labeled_children_on_demand(self):
        family = Family("x", "counter", labelnames=("node",))
        family.labels("a").inc()
        family.labels("b").inc(2)
        assert family.value() == {"a": 1, "b": 2}

    def test_sampled_scalar_and_dict(self):
        box = {"n": 5}
        scalar = Family("x", "gauge", sample=lambda: box["n"])
        assert scalar.value() == 5
        box["n"] = 9
        assert scalar.value() == 9  # read at snapshot time, not declare time
        labeled = Family("y", "gauge", labelnames=("k",),
                         sample=lambda: {"b": 2, "a": 1})
        assert labeled.items() == [("a", 1), ("b", 2)]


class TestRegistry:
    def test_declare_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("a.b", "help")
        again = registry.counter("a.b")
        assert first is again

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError):
            registry.gauge("a.b")

    def test_get_and_families(self):
        registry = MetricsRegistry()
        family = registry.gauge("x")
        assert registry.get("x") is family
        assert registry.get("missing") is None
        assert family in list(registry.families())

    def test_snapshot_nests_dotted_names(self):
        registry = MetricsRegistry()
        registry.counter("pipeline.events_routed").inc(3)
        registry.gauge("pipeline.pending").set(1)
        registry.counter("transport.frames_sent").inc()
        registry.gauge("lag", labelnames=("follower",),
                       sample=lambda: {"f1": 4})
        tree = registry.snapshot()
        assert tree == {
            "pipeline": {"events_routed": 3, "pending": 1},
            "transport": {"frames_sent": 1},
            "lag": {"f1": 4},
        }

    def test_snapshot_includes_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("latency", buckets=(1.0, 10.0)).observe(0.5)
        leaf = registry.snapshot()["latency"]
        assert leaf["count"] == 1
        assert leaf["buckets"]["+Inf"] == 1


class TestExposition:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("pipeline.events_routed", "routed").inc(7)
        registry.gauge("soak.lost", "loss oracle")
        registry.gauge("replication.watermark_lag", "per-follower lag",
                       labelnames=("follower",),
                       sample=lambda: {"shard1": 2})
        registry.histogram("soak.latency_ms", "latency",
                           buckets=(1.0, 10.0)).observe(3.0)
        return registry

    def test_exposition_round_trips_through_parser(self):
        text = self.build().exposition()
        samples = parse_exposition(text)
        assert samples["repro_pipeline_events_routed"][()] == 7.0
        assert samples["repro_soak_lost"][()] == 0.0
        assert samples["repro_replication_watermark_lag"][
            (("follower", "shard1"),)] == 2.0
        assert samples["repro_soak_latency_ms_count"][()] == 1.0
        assert samples["repro_soak_latency_ms_sum"][()] == 3.0
        assert samples["repro_soak_latency_ms_bucket"][(("le", "10"),)] == 1.0
        assert samples["repro_soak_latency_ms_bucket"][(("le", "+Inf"),)] == 1.0

    def test_exposition_has_help_and_type_lines(self):
        text = self.build().exposition()
        assert "# HELP repro_pipeline_events_routed routed" in text
        assert "# TYPE repro_pipeline_events_routed counter" in text
        assert "# TYPE repro_soak_latency_ms histogram" in text

    def test_extra_labels_attach_to_every_sample(self):
        text = self.build().exposition(extra_labels=[("shard", "s0")])
        samples = parse_exposition(text)
        assert samples["repro_pipeline_events_routed"][
            (("shard", "s0"),)] == 7.0
        assert samples["repro_replication_watermark_lag"][
            (("shard", "s0"), ("follower", "shard1"))] == 2.0

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert "myapp_a 1" in registry.exposition(prefix="myapp")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("x", labelnames=("k",),
                       sample=lambda: {'we"ird\n': 1})
        samples = parse_exposition(registry.exposition())
        (pairs,) = samples["repro_x"]
        assert pairs[0][0] == "k"

    @pytest.mark.parametrize("text", [
        "", "# only a comment\n", "not a sample line !\n",
        "repro_x{unterminated 1\n", "repro_x notanumber\n",
    ])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_exposition(text)


class TestMergeExpositions:
    def test_merge_dedupes_comment_lines(self):
        registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
        registry_a.counter("x", "the x counter").inc()
        registry_b.counter("x", "the x counter").inc(2)
        merged = merge_expositions([
            registry_a.exposition(extra_labels=[("shard", "a")]),
            registry_b.exposition(extra_labels=[("shard", "b")]),
            "",
        ])
        assert merged.count("# HELP repro_x") == 1
        assert merged.count("# TYPE repro_x") == 1
        samples = parse_exposition(merged)
        assert samples["repro_x"][(("shard", "a"),)] == 1.0
        assert samples["repro_x"][(("shard", "b"),)] == 2.0
