"""Tests for the XML type-description codec."""

import pytest

from repro.describe.description import describe
from repro.describe.xml_codec import (
    XmlCodecError,
    deserialize_description,
    serialize_description,
    serialize_description_bytes,
)
from repro.cts.builder import TypeBuilder, interface_builder
from repro.fixtures import person_csharp, person_vb


class TestRoundTrip:
    def test_person_round_trip(self):
        description = describe(person_csharp())
        restored = deserialize_description(serialize_description(description))
        assert restored == description

    def test_bytes_round_trip(self):
        description = describe(person_csharp())
        restored = deserialize_description(serialize_description_bytes(description))
        assert restored == description

    def test_round_trip_preserves_identity(self):
        description = describe(person_vb())
        restored = deserialize_description(serialize_description(description))
        assert restored.guid() == description.guid()

    def test_round_trip_interface(self):
        iface = (
            interface_builder("x.INamed")
            .method("GetName", [], "string")
            .build()
        )
        restored = deserialize_description(serialize_description(describe(iface)))
        skeleton = restored.to_type_info()
        assert skeleton.is_interface
        assert skeleton.find_method("GetName") is not None

    def test_round_trip_modifiers_and_visibility(self):
        info = (
            TypeBuilder("x.T")
            .field("hidden", "int", visibility="private", static=True)
            .method("M", [("a", "int")], "void", static=True)
            .build()
        )
        restored = deserialize_description(serialize_description(describe(info)))
        skeleton = restored.to_type_info()
        assert skeleton.find_field("hidden").visibility.value == "private"
        assert "static" in skeleton.find_field("hidden").modifiers.tokens()
        assert "static" in skeleton.find_method("M").modifiers.tokens()

    def test_round_trip_supertypes(self):
        info = (
            TypeBuilder("x.T")
            .extends("x.Base")
            .implements("x.IA", "x.IB")
            .build()
        )
        skeleton = deserialize_description(
            serialize_description(describe(info))
        ).to_type_info()
        assert skeleton.superclass.full_name == "x.Base"
        assert [i.full_name for i in skeleton.interfaces] == ["x.IA", "x.IB"]

    def test_round_trip_parameter_names(self):
        info = TypeBuilder("x.T").method("M", [("alpha", "int"), ("beta", "string")], "void").build()
        skeleton = deserialize_description(
            serialize_description(describe(info))
        ).to_type_info()
        assert [p.name for p in skeleton.find_method("M").parameters] == ["alpha", "beta"]


class TestFormat:
    def test_xml_is_human_readable(self):
        text = serialize_description(describe(person_csharp()))
        assert text.startswith("<TypeDescription")
        assert 'name="demo.a.Person"' in text
        assert "<Method" in text
        assert "<Field" in text
        assert "<Constructor" in text

    def test_guid_attribute_present(self):
        person = person_csharp()
        text = serialize_description(describe(person))
        assert str(person.guid) in text


class TestErrors:
    def test_invalid_xml(self):
        with pytest.raises(XmlCodecError):
            deserialize_description("<oops")

    def test_wrong_root(self):
        with pytest.raises(XmlCodecError):
            deserialize_description("<Other/>")

    def test_missing_name(self):
        with pytest.raises(XmlCodecError):
            deserialize_description('<TypeDescription guid="abc"/>')

    def test_missing_guid(self):
        with pytest.raises(XmlCodecError):
            deserialize_description('<TypeDescription name="x.T"/>')

    def test_unknown_child_element(self):
        person = person_csharp()
        text = serialize_description(describe(person))
        bad = text.replace("</TypeDescription>", "<Wibble/></TypeDescription>")
        with pytest.raises(XmlCodecError):
            deserialize_description(bad)
