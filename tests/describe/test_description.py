"""Tests for TypeDescription (paper Section 5)."""

import pytest

from repro.core import ConformanceChecker, ConformanceOptions
from repro.cts.builder import TypeBuilder
from repro.cts.assembly import Assembly
from repro.describe.description import TypeDescription, describe
from repro.fixtures import employee_csharp, person_csharp, person_java


class TestConstruction:
    def test_from_type_info(self, person_cs):
        description = TypeDescription.from_type_info(person_cs)
        assert description.type_name() == person_cs.full_name
        assert description.guid() == person_cs.guid

    def test_describe_alias(self, person_cs):
        assert describe(person_cs).guid() == person_cs.guid

    def test_bodies_stripped(self, person_cs):
        description = describe(person_cs)
        skeleton = description.to_type_info()
        assert skeleton.find_method("GetName").body is None
        assert skeleton.constructors[0].body is None

    def test_member_counts(self, person_cs):
        counts = describe(person_cs).member_counts()
        assert counts == {
            "fields": 1, "methods": 2, "constructors": 1, "interfaces": 0,
        }

    def test_metadata_preserved(self, person_cs):
        Assembly("person-a", [person_cs])  # stamps download path
        description = describe(person_cs)
        assert description.assembly_name == "person-a"
        assert description.download_path == "repo://person-a/1.0.0"
        assert description.language == "csharp"


class TestNonRecursive:
    def test_referenced_types_listed_not_embedded(self):
        address, employee = employee_csharp()
        Assembly("hr-a", [address, employee])
        description = describe(employee)
        refs = description.referenced_types()
        # Address appears as a reference with a download path...
        assert "demo.a.Address" in refs
        assert refs["demo.a.Address"] == "repo://hr-a/1.0.0"
        # ...but its own members are nowhere in the description.
        assert "street" not in str(description.wire)

    def test_primitive_references_included(self, person_cs):
        refs = describe(person_cs).referenced_types()
        assert "System.String" in refs


class TestITypeDescription:
    def test_equals_by_identity(self, person_cs):
        assert describe(person_cs).equals(describe(person_cs))

    def test_not_equals_different_types(self, person_cs, person_java):
        assert not describe(person_cs).equals(describe(person_java))

    def test_conforms_without_implementation(self, person_cs, person_java):
        """The point of descriptions: conformance checkable with no code."""
        checker = ConformanceChecker(options=ConformanceOptions.pragmatic())
        provider = describe(person_cs)
        expected = describe(person_java)
        assert provider.conforms(expected, checker)

    def test_conforms_rejects(self, person_cs, account):
        checker = ConformanceChecker(options=ConformanceOptions.pragmatic())
        assert not describe(account).conforms(describe(person_cs), checker)

    def test_conforms_requires_description(self, person_cs):
        checker = ConformanceChecker()
        with pytest.raises(TypeError):
            describe(person_cs).conforms(object(), checker)


class TestSkeletonIdentity:
    def test_skeleton_preserves_guid(self, person_cs):
        skeleton = describe(person_cs).to_type_info()
        assert skeleton.guid == person_cs.guid

    def test_skeleton_cached(self, person_cs):
        description = describe(person_cs)
        assert description.to_type_info() is description.to_type_info()

    def test_descriptions_hashable(self, person_cs):
        assert len({describe(person_cs), describe(person_cs)}) == 1
