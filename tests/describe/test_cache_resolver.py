"""Tests for the description cache and the layered resolver."""

import pytest

from repro.core import ConformanceChecker, ConformanceOptions
from repro.cts.members import TypeRef
from repro.cts.registry import TypeRegistry
from repro.describe.cache import DescriptionCache
from repro.describe.description import describe
from repro.describe.resolver import DescriptionResolver
from repro.fixtures import employee_csharp, employee_java, person_csharp


class TestDescriptionCache:
    def test_put_get_by_guid(self):
        cache = DescriptionCache()
        description = describe(person_csharp())
        cache.put(description)
        assert cache.get_by_guid(description.guid()) is description

    def test_put_get_by_name(self):
        cache = DescriptionCache()
        description = describe(person_csharp())
        cache.put(description)
        assert cache.get_by_name("demo.a.Person") is description

    def test_hit_miss_counters(self):
        cache = DescriptionCache()
        description = describe(person_csharp())
        cache.put(description)
        cache.get_by_name("demo.a.Person")
        cache.get_by_name("no.Such")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_len_and_clear(self):
        cache = DescriptionCache()
        cache.put(describe(person_csharp()))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert not cache.contains_name("demo.a.Person")


class TestDescriptionResolver:
    def test_resolves_from_registry_first(self):
        registry = TypeRegistry()
        person = person_csharp()
        registry.register(person)
        resolver = DescriptionResolver(registry)
        assert resolver.try_resolve(TypeRef("demo.a.Person")) is person

    def test_resolves_from_cache_second(self):
        resolver = DescriptionResolver()
        description = describe(person_csharp())
        resolver.learn(description)
        resolved = resolver.try_resolve(TypeRef("demo.a.Person"))
        assert resolved is description.to_type_info()

    def test_fetch_hook_called_last(self):
        calls = []

        def fetch(name, path):
            calls.append((name, path))
            return describe(person_csharp())

        resolver = DescriptionResolver(fetch=fetch)
        ref = TypeRef("demo.a.Person", download_path="repo://p/1")
        resolved = resolver.try_resolve(ref)
        assert resolved is not None
        assert calls == [("demo.a.Person", "repo://p/1")]
        assert resolver.fetches == 1

    def test_fetch_result_cached(self):
        count = [0]

        def fetch(name, path):
            count[0] += 1
            return describe(person_csharp())

        resolver = DescriptionResolver(fetch=fetch)
        resolver.try_resolve(TypeRef("demo.a.Person"))
        resolver.try_resolve(TypeRef("demo.a.Person"))
        assert count[0] == 1  # second hit served from the cache

    def test_unresolvable_returns_none(self):
        resolver = DescriptionResolver()
        assert resolver.try_resolve(TypeRef("no.Such")) is None

    def test_resolved_ref_short_circuit(self):
        from repro.cts.types import STRING

        resolver = DescriptionResolver()
        assert resolver.try_resolve(TypeRef.to(STRING)) is STRING


class TestResolverDrivenConformance:
    def test_nested_types_resolved_through_descriptions(self):
        """Employee(a) vs Employee(b): the Address member types resolve via
        cached descriptions only — no implementation needed anywhere."""
        addr_a, emp_a = employee_csharp()
        addr_b, emp_b = employee_java()

        resolver = DescriptionResolver()
        resolver.learn(describe(addr_a))
        resolver.learn(describe(addr_b))

        checker = ConformanceChecker(
            resolver=resolver, options=ConformanceOptions.pragmatic()
        )
        result = checker.conforms(
            describe(emp_a).to_type_info(), describe(emp_b).to_type_info()
        )
        assert result.ok
        # Resolution really went through the resolver (not warnings-by-name).
        assert not result.warnings

    def test_fetch_hook_drives_nested_resolution(self):
        addr_a, emp_a = employee_csharp()
        addr_b, emp_b = employee_java()
        remote = {
            "demo.a.Address": describe(addr_a),
            "demo.b.Address": describe(addr_b),
        }
        fetched = []

        def fetch(name, path):
            fetched.append(name)
            return remote.get(name)

        resolver = DescriptionResolver(fetch=fetch)
        checker = ConformanceChecker(
            resolver=resolver, options=ConformanceOptions.pragmatic()
        )
        result = checker.conforms(
            describe(emp_a).to_type_info(), describe(emp_b).to_type_info()
        )
        assert result.ok
        assert set(fetched) == {"demo.a.Address", "demo.b.Address"}
