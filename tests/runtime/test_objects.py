"""Tests for CtsInstance and the invoke protocol."""

import pytest

from repro.fixtures import person_assembly_pair
from repro.runtime.loader import Runtime
from repro.runtime.objects import (
    CtsInstance,
    UnknownFieldError,
    UnknownMethodError,
    is_invokable,
)


@pytest.fixture
def runtime():
    rt = Runtime()
    asm_a, _ = person_assembly_pair()
    rt.load_assembly(asm_a)
    return rt


@pytest.fixture
def person(runtime):
    return runtime.new_instance("demo.a.Person", ["Ada"])


class TestFieldProtocol:
    def test_get_field(self, person):
        assert person.get_field("name") == "Ada"

    def test_set_field(self, person):
        person.set_field("name", "Grace")
        assert person.get_field("name") == "Grace"

    def test_unknown_field_get(self, person):
        with pytest.raises(UnknownFieldError):
            person.get_field("missing")

    def test_unknown_field_set(self, person):
        with pytest.raises(UnknownFieldError):
            person.set_field("missing", 1)


class TestInvokeProtocol:
    def test_invoke(self, person):
        assert person.invoke("GetName") == "Ada"

    def test_repro_invoke(self, person):
        assert person._repro_invoke("GetName", []) == "Ada"

    def test_repro_type(self, person):
        assert person._repro_type().full_name == "demo.a.Person"

    def test_is_invokable(self, person):
        assert is_invokable(person)
        assert not is_invokable(object())
        assert not is_invokable(42)


class TestPythonicSugar:
    def test_attribute_read_field(self, person):
        assert person.name == "Ada"

    def test_attribute_write_field(self, person):
        person.name = "Edsger"
        assert person.get_field("name") == "Edsger"

    def test_attribute_method_binding(self, person):
        getter = person.GetName
        assert getter() == "Ada"
        person.SetName("Barbara")
        assert person.GetName() == "Barbara"

    def test_unknown_attribute(self, person):
        with pytest.raises(AttributeError):
            person.nothing_here

    def test_underscore_attributes_not_intercepted(self, person):
        with pytest.raises(AttributeError):
            person._not_a_protocol_method


class TestEqualityAndRepr:
    def test_equality_by_type_and_fields(self, runtime):
        a = runtime.new_instance("demo.a.Person", ["X"])
        b = runtime.new_instance("demo.a.Person", ["X"])
        c = runtime.new_instance("demo.a.Person", ["Y"])
        assert a == b
        assert a != c

    def test_repr_shows_fields(self, person):
        assert "demo.a.Person" in repr(person)
        assert "Ada" in repr(person)
