"""Tests for the runtime loader: assemblies, inheritance, dispatch."""

import pytest

from repro.cts.assembly import Assembly
from repro.cts.builder import TypeBuilder
from repro.fixtures import person_assembly_pair
from repro.langs.csharp import compile_source
from repro.runtime.loader import (
    AbstractMethodError,
    ConstructorNotFoundError,
    Runtime,
    default_field_value,
)
from repro.runtime.objects import UnknownMethodError
from repro.cts.members import TypeRef
from repro.cts.types import BOOL, DOUBLE, INT, STRING


class TestLoading:
    def test_load_assembly_registers_types(self):
        runtime = Runtime()
        asm_a, _ = person_assembly_pair()
        runtime.load_assembly(asm_a)
        assert runtime.registry.get("demo.a.Person") is not None
        assert runtime.has_assembly("person-a")
        assert runtime.loaded_assemblies() == ["person-a"]

    def test_load_type_direct(self):
        runtime = Runtime()
        info = TypeBuilder("x.T").build()
        runtime.load_type(info)
        assert runtime.registry.get("x.T") is info


class TestDefaults:
    @pytest.mark.parametrize(
        "type_info,expected",
        [(INT, 0), (DOUBLE, 0.0), (BOOL, False), (STRING, None)],
    )
    def test_default_field_value(self, type_info, expected):
        assert default_field_value(TypeRef.to(type_info)) == expected

    def test_fields_initialized_with_defaults(self):
        types = compile_source(
            "class C { public int n; public bool b; public string s; }",
            namespace="t",
        )
        runtime = Runtime()
        runtime.load_type(types[0])
        obj = runtime.instantiate(types[0])
        assert obj.n == 0
        assert obj.b is False
        assert obj.s is None


class TestInstantiation:
    def test_implicit_default_ctor(self):
        runtime = Runtime()
        info = TypeBuilder("x.T").field("f", "int").build()
        runtime.load_type(info)
        assert runtime.instantiate(info).f == 0

    def test_missing_ctor_arity(self):
        runtime = Runtime()
        info = TypeBuilder("x.T").build()
        runtime.load_type(info)
        with pytest.raises(ConstructorNotFoundError):
            runtime.instantiate(info, [1, 2])

    def test_raw_instance_skips_ctor(self):
        runtime = Runtime()
        asm_a, _ = person_assembly_pair()
        runtime.load_assembly(asm_a)
        info = runtime.registry.require("demo.a.Person")
        raw = runtime.raw_instance(info, {"name": "preset"})
        assert raw.GetName() == "preset"

    def test_new_instance_by_name(self):
        runtime = Runtime()
        asm_a, _ = person_assembly_pair()
        runtime.load_assembly(asm_a)
        assert runtime.new_instance("demo.a.Person", ["N"]).GetName() == "N"


class TestInheritance:
    def _family(self):
        return compile_source(
            """
            class Animal {
                public string kind;
                public Animal() { this.kind = "animal"; }
                public string Describe() { return "a " + this.kind; }
                public string Kind() { return this.kind; }
            }
            class Dog : Animal {
                public Dog() { this.kind = "dog"; }
                public string Bark() { return "woof"; }
            }
            """,
            namespace="zoo",
        )

    def test_inherited_method_dispatch(self):
        runtime = Runtime()
        for info in self._family():
            runtime.load_type(info)
        dog = runtime.new_instance("zoo.Dog")
        assert dog.invoke("Bark") == "woof"
        assert dog.invoke("Describe") == "a dog"  # inherited, sees subclass field

    def test_inherited_fields_present(self):
        runtime = Runtime()
        for info in self._family():
            runtime.load_type(info)
        dog = runtime.new_instance("zoo.Dog")
        assert "kind" in dog.fields

    def test_override_wins(self):
        types = compile_source(
            """
            class Base {
                public string Who() { return "base"; }
            }
            class Derived : Base {
                public string Who() { return "derived"; }
            }
            """,
            namespace="o",
        )
        runtime = Runtime()
        for info in types:
            runtime.load_type(info)
        derived = runtime.new_instance("o.Derived")
        assert derived.invoke("Who") == "derived"


class TestInvocationErrors:
    def test_unknown_method(self):
        runtime = Runtime()
        asm_a, _ = person_assembly_pair()
        runtime.load_assembly(asm_a)
        person = runtime.new_instance("demo.a.Person", ["x"])
        with pytest.raises(UnknownMethodError):
            runtime.invoke(person, "Nope")

    def test_abstract_method(self):
        runtime = Runtime()
        info = TypeBuilder("x.A").method("M", [], "void").build()  # no body
        runtime.load_type(info)
        obj = runtime.instantiate(info)
        with pytest.raises(AbstractMethodError):
            obj.invoke("M")

    def test_bad_body_kind(self):
        runtime = Runtime()
        info = TypeBuilder("x.A").method("M", [], "void", body="not runnable").build()
        runtime.load_type(info)
        obj = runtime.instantiate(info)
        with pytest.raises(TypeError):
            obj.invoke("M")
