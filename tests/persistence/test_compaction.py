"""Key-aware log compaction, retention floor, fsync group-commit.

Compaction rewrites closed segments keeping only the latest record per
(type fingerprint, entity key) — a long-retention log then holds the
latest state per entity instead of raw history.  The invariants under
test: latest-state replay equivalence, idempotence, the slowest-cursor
bound, and survival of reopen/recovery over the holes compaction leaves.
"""

import os

from repro.apps.tps import TpsBroker, TpsPeer
from repro.cli import main as cli_main
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.persistence import EventLog
from repro.serialization.envelope import envelope_record_keys


def make_world(tmp_path, **log_kwargs):
    network = SimulatedNetwork()
    log_kwargs.setdefault("segment_max_bytes", 2000)
    broker = TpsBroker("broker", network, log_dir=str(tmp_path / "broker"),
                       log_kwargs=log_kwargs)
    publisher = TpsPeer("pub", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    return network, broker, publisher


def overwrite_heavy(publisher, rounds=20, keys=3):
    """Publish rounds × keys events where only the key field matters —
    Person's key field is ``name``, so round N overwrites round N-1."""
    for _ in range(rounds):
        for key in range(keys):
            publisher.publish(
                "broker",
                publisher.new_instance("demo.a.Person", ["key-%d" % key]))


def latest_state(log):
    """key -> (offset, payload keys) fold over a full replay."""
    latest = {}
    for record in log.replay():
        for key in envelope_record_keys(record.payload) or ():
            if key is not None:
                latest[key] = record.offset
    return latest


class TestBrokerCompaction:
    def test_latest_state_survives_history_drops(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        overwrite_heavy(publisher)
        before_state = latest_state(broker.event_log)
        before_bytes = broker.event_log.size_bytes
        summary = broker.compact_log()
        assert summary["dropped_records"] > 0
        assert latest_state(broker.event_log) == before_state
        assert broker.event_log.size_bytes < before_bytes / 3
        # Idempotent: nothing left to drop.
        assert broker.compact_log()["dropped_records"] == 0

    def test_active_segment_is_never_rewritten(self, tmp_path):
        network, broker, publisher = make_world(
            tmp_path, segment_max_bytes=1 << 20)
        overwrite_heavy(publisher, rounds=5)
        # Everything lives in the single active segment: untouchable.
        assert broker.compact_log()["dropped_records"] == 0
        assert broker.event_log.record_count == 15

    def test_never_crosses_slowest_cursor(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="slow")
        network.run_until_idle()
        subscriber.close()  # goes offline: everything below stays unacked
        cursor = broker.cursors.get("slow")
        overwrite_heavy(publisher)
        summary = broker.compact_log()
        assert summary["bound"] <= cursor
        # Every unacked record is still replayable, stale keys included.
        offsets = [record.offset for record in broker.event_log.replay()]
        assert [o for o in offsets if o >= cursor] == \
            list(range(cursor, broker.event_log.next_offset))

    def test_reopen_and_replay_over_holes(self, tmp_path):
        """Recovery's monotonic-offset scan accepts compaction holes, and
        a late durable subscriber replays exactly the surviving records."""
        network, broker, publisher = make_world(tmp_path)
        overwrite_heavy(publisher)
        broker.compact_log()
        surviving = [record.offset for record in broker.event_log.replay()]
        broker.close()

        revived = TpsBroker("broker", network,
                            log_dir=str(tmp_path / "broker"),
                            log_kwargs={"segment_max_bytes": 2000})
        assert revived.event_log.torn_tail_truncations == 0
        assert [r.offset for r in revived.event_log.replay()] == surviving
        got = []
        late = TpsPeer("late", network)
        late.subscribe_durable_remote("broker", person_java(), got.append,
                                      cursor="late-c")
        network.run_until_idle()
        assert len(got) == len(surviving)
        assert sorted({v.getPersonName() for v in got}) == \
            ["key-0", "key-1", "key-2"]
        revived.close()


class TestEventLogCompactionEdges:
    def test_unkeyed_records_are_retained(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=120)
        for index in range(8):
            log.append(b"opaque-%d" % index, origin="pub")  # no envelope
        assert log.compact()["dropped_records"] == 0
        assert log.record_count == 8

    def test_custom_key_of(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=80)

        def key_of(record):
            return [record.payload.decode().split("=")[0]]

        for index in range(9):
            log.append(b"k%d=%d" % (index % 2, index), origin="pub")
        summary = log.compact(key_of=key_of)
        assert summary["dropped_records"] > 0
        payloads = [record.payload for record in log.replay()]
        # Latest value of each key survives; k0's latest is offset 8
        # (active segment), k1's is offset 7.
        assert b"k1=7" in payloads and b"k0=8" in payloads
        assert b"k0=0" not in payloads

    def test_emptied_segment_is_removed(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=60)

        def key_of(record):
            return ["only-key"]

        for index in range(6):
            log.append(b"v%d" % index, origin="pub")
        segments_before = len([name for name in os.listdir(str(tmp_path))
                               if name.endswith(".seg")])
        summary = log.compact(key_of=key_of)
        assert summary["removed_segments"] > 0
        segments_after = len([name for name in os.listdir(str(tmp_path))
                              if name.endswith(".seg")])
        assert segments_after < segments_before
        reopened_offsets = [record.offset for record in log.replay()]
        log.close()
        recovered = EventLog(str(tmp_path), segment_max_bytes=60)
        assert [r.offset for r in recovered.replay()] == reopened_offsets
        recovered.close()


class TestRetentionFloor:
    def fill(self, log, count):
        for index in range(count):
            log.append(b"x" * 40, origin="pub")

    def test_floor_pins_segments(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=120, max_segments=2)
        log.set_retention_floor(0)
        self.fill(log, 12)
        assert log.first_offset == 0  # nothing dropped: all pinned
        assert log.retention_pinned > 0
        log.set_retention_floor(None)
        self.fill(log, 1)  # retention re-evaluates on the next append
        assert log.first_offset > 0
        log.close()

    def test_retain_unacked_broker_gates_retention_until_prune(self, tmp_path):
        network = SimulatedNetwork()
        broker = TpsBroker("broker", network,
                           log_dir=str(tmp_path / "broker"),
                           log_kwargs={"segment_max_bytes": 600,
                                       "max_segments": 2},
                           retain_unacked=True)
        publisher = TpsPeer("pub", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        gone = TpsPeer("gone", network)
        gone.subscribe_durable_remote("broker", person_java(),
                                      lambda v: None, cursor="gone-c")
        network.run_until_idle()
        gone.close()
        for index in range(30):
            publisher.publish("broker",
                              publisher.new_instance("demo.a.Person",
                                                     ["r%d" % index]))
        # The abandoned cursor pinned everything it has not acked.
        assert broker.event_log.first_offset == broker.cursors.get("gone-c")
        assert broker.retention_lost_records == 0
        # Pruning the dead cursor releases the pin (its last_active is the
        # current incarnation, so it takes an idle threshold of 0 -> use
        # a fresh incarnation by reopening the broker).
        broker.close()
        revived = TpsBroker("broker", network,
                            log_dir=str(tmp_path / "broker"),
                            log_kwargs={"segment_max_bytes": 600,
                                        "max_segments": 2},
                            retain_unacked=True)
        assert revived.prune_cursors(max_idle_incarnations=1) == ["gone-c"]
        publisher.publish("broker",
                          publisher.new_instance("demo.a.Person", ["after"]))
        assert revived.event_log.first_offset > 0  # retention caught up
        revived.close()

    def test_recovery_does_not_defeat_prune(self, tmp_path):
        """Crash-recovery mechanically re-registers every persisted
        remote cursor; that must NOT count as the subscriber returning,
        or an abandoned cursor could never be pruned on a broker that
        restarts (and would pin the retention floor forever)."""
        network = SimulatedNetwork()
        broker = TpsBroker("broker", network,
                           log_dir=str(tmp_path / "broker"))
        gone = TpsPeer("gone", network)
        gone.subscribe_durable_remote("broker", person_java(),
                                      lambda v: None, cursor="gone-c")
        network.run_until_idle()
        gone.close()  # the subscriber never returns
        for _ in range(3):
            broker.close()
            broker = TpsBroker("broker", network,
                               log_dir=str(tmp_path / "broker"))
            assert [s.cursor_name
                    for s in broker.recover_durable_subscriptions()] \
                == ["gone-c"]
        assert broker.prune_cursors(max_idle_incarnations=3) == ["gone-c"]
        broker.close()

    def test_compact_on_retention_reclaims_when_pinned(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=80, max_bytes=200,
                       compact_on_retention=True)
        log.set_retention_floor(0)  # everything pinned

        import repro.persistence.log as log_module
        original = log_module._RETENTION_COMPACT_INTERVAL
        log_module._RETENTION_COMPACT_INTERVAL = 4
        try:
            # Unkeyed payloads: compaction keeps them all, but the pass runs.
            for index in range(12):
                log.append(b"y" * 40, origin="pub")
        finally:
            log_module._RETENTION_COMPACT_INTERVAL = original
        assert log.retention_pinned > 0
        assert log.compactions > 0
        assert log.first_offset == 0  # pinned records all survived
        log.close()


class TestFsyncGroupCommit:
    def test_fsync_every_n(self, tmp_path):
        log = EventLog(str(tmp_path), fsync_every_n=4)
        for index in range(10):
            log.append(b"r%d" % index, origin="pub")
        assert log.fsyncs == 2  # records 4 and 8
        log.close()  # the tail (2 unsynced records) syncs at close
        assert log.fsyncs == 3

    def test_fsync_interval(self, tmp_path):
        log = EventLog(str(tmp_path), fsync_interval_ms=0.0)
        for index in range(3):
            log.append(b"r%d" % index, origin="pub")
        assert log.fsyncs == 3  # a zero interval is always due
        log.close()

    def test_no_policy_means_no_fsync(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append(b"r", origin="pub")
        log.close()
        assert log.fsyncs == 0

    def test_sync_is_an_explicit_barrier(self, tmp_path):
        log = EventLog(str(tmp_path), fsync_every_n=100)
        log.append(b"r", origin="pub")
        assert log.fsyncs == 0
        log.sync()
        assert log.fsyncs == 1
        log.sync()  # nothing unsynced: a no-op
        assert log.fsyncs == 1
        log.close()


class TestCompactCli:
    def run_cli(self, argv):
        import io
        out = io.StringIO()
        code = cli_main(argv, out=out)
        return code, out.getvalue()

    def test_compact_command_is_cursor_bounded(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        network.run_until_idle()
        # Acked history below the cursor is compactable...
        overwrite_heavy(publisher, rounds=10)
        network.run_until_idle()
        subscriber.close()
        cursor = broker.cursors.get("sub-c")
        assert cursor > 0
        # ...while everything published after the subscriber left is not.
        overwrite_heavy(publisher, rounds=10)
        records_before = broker.event_log.record_count
        broker.close()

        code, output = self.run_cli(["log", "compact",
                                     str(tmp_path / "broker")])
        assert code == 0
        assert "reclaimed" in output
        assert "slowest cursor %d" % cursor in output

        reopened = EventLog(str(tmp_path / "broker" / "events"),
                            segment_max_bytes=2000)
        assert reopened.record_count < records_before
        offsets = [record.offset for record in reopened.replay()]
        assert [o for o in offsets if o >= cursor] == \
            list(range(cursor, reopened.next_offset))
        reopened.close()

    def test_compact_missing_directory_errors(self):
        code, output = self.run_cli(["log", "compact", "/no/such/dir"])
        assert code == 2
        assert "error:" in output
