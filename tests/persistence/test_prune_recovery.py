"""Regression: recovery replay must not count as subscriber activity.

``restart_shard()``/broker recovery re-registers durable cursors
mechanically and replays their backlogs; replay advances cursors past
non-conforming and self-published records nothing is delivered for.
Before the fix, *any* ``CursorStore.advance`` refreshed the idleness
stamp — so a broker that kept restarting (and replication catch-up makes
recovery replays longer) could keep an abandoned subscriber's cursor
alive forever, pinning the retention floor ``prune()`` exists to release.
Only subscriber-driven advances (an echoed ack, a local handler run) may
refresh the stamp.
"""

from repro.apps.tps import TpsBroker, TpsPeer
from repro.cts.assembly import Assembly
from repro.fixtures import account_csharp, person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.persistence import CursorStore


def test_mechanical_recovery_advances_do_not_block_prune(tmp_path):
    network = SimulatedNetwork()
    log_dir = str(tmp_path / "broker")
    broker = TpsBroker("broker", network, log_dir=log_dir)
    publisher = TpsPeer("pub", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    publisher.host_assembly(Assembly("bank", [account_csharp()]))

    got = []
    subscriber = TpsPeer("sub", network)
    subscriber.subscribe_durable_remote("broker", person_java(), got.append,
                                        cursor="d-c")
    network.run_until_idle()
    subscriber.close()  # the subscriber never returns

    # Non-conforming traffic keeps flowing: logged, never delivered to
    # the abandoned cursor — replay advances it mechanically per restart.
    publisher.publish_async(
        "broker", publisher.new_instance("demo.bank.Account", ["o", 1]))
    network.run_until_idle()
    broker.close()

    for _ in range(3):
        broker = TpsBroker("broker", network, log_dir=log_dir)
        restored = broker.recover_durable_subscriptions()
        assert [s.cursor_name for s in restored] == ["d-c"]
        network.run_until_idle()
        # The mechanical advance really happened (the cursor moved past
        # the non-conforming record)...
        assert broker.cursors.get("d-c") == broker.event_log.next_offset
        publisher.publish_async(
            "broker", publisher.new_instance("demo.bank.Account", ["o", 2]))
        network.run_until_idle()
        broker.close()

    broker = TpsBroker("broker", network, log_dir=log_dir)
    # ...yet it never counted as the subscriber coming back.
    assert broker.prune_cursors(max_idle_incarnations=3) == ["d-c"]
    assert "d-c" not in broker.cursors
    broker.close()


def test_ack_driven_advance_still_counts_as_activity(tmp_path):
    """The counterpart: a subscriber that stays connected and keeps
    acking must never be pruned, however many incarnations pass."""
    network = SimulatedNetwork()
    log_dir = str(tmp_path / "broker")
    broker = TpsBroker("broker", network, log_dir=log_dir)
    publisher = TpsPeer("pub", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)

    got = []
    subscriber = TpsPeer("sub", network)
    subscriber.subscribe_durable_remote("broker", person_java(), got.append,
                                        cursor="live-c")
    network.run_until_idle()
    broker.close()

    for index in range(3):
        broker = TpsBroker("broker", network, log_dir=log_dir)
        broker.recover_durable_subscriptions()
        publisher.publish_async(
            "broker",
            publisher.new_instance("demo.a.Person", ["p%d" % index]))
        network.run_until_idle()  # delivered AND acked: real activity
        broker.close()

    broker = TpsBroker("broker", network, log_dir=log_dir)
    assert broker.prune_cursors(max_idle_incarnations=3) == []
    assert "live-c" in broker.cursors
    assert len(got) == 3
    broker.close()


def test_cursor_store_advance_touch_discipline(tmp_path):
    store = CursorStore(str(tmp_path / "cursors.json"))
    store.register("c")
    first = store.entry("c")["last_active"]
    assert store.advance("c", 5, touch=False)
    assert store.entry("c")["last_active"] == first
    assert store.advance("c", 9)  # default: subscriber-driven, touches
    assert store.entry("c")["last_active"] == store.incarnation
