"""Publisher-side durability: the ``publish_durable`` acked-publish path.

The broker acknowledges the publish token only after the batch has been
appended to its durable log, which extends the at-least-once guarantee
back to the publisher: anything unacked can be resent verbatim, and the
duplicate is covered by the existing at-least-once delivery contract.
"""

from repro.apps.tps import BrokerMesh, TpsBroker, TpsPeer
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork


def make_world(tmp_path, **broker_kwargs):
    network = SimulatedNetwork()
    broker = TpsBroker("broker", network,
                       log_dir=str(tmp_path / "broker"), **broker_kwargs)
    publisher = TpsPeer("pub", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    return network, broker, publisher


class TestPublishDurable:
    def test_ack_arrives_after_append(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        token = publisher.publish_durable(
            "broker", publisher.new_instance("demo.a.Person", ["d1"]))
        # In flight until the network drains: nothing ran inline.
        assert publisher.unacked_publishes() == [token]
        assert broker.event_log.record_count == 0
        network.run_until_idle()
        assert publisher.unacked_publishes() == []
        assert publisher.transport_stats.publishes_acked == 1
        assert broker.transport_stats.publish_acks_sent == 1
        assert broker.event_log.record_count == 1

    def test_batch_publish_is_one_log_record(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        events = [publisher.new_instance("demo.a.Person", ["b%d" % i])
                  for i in range(5)]
        publisher.publish_durable("broker", events)
        network.run_until_idle()
        assert broker.event_log.record_count == 1
        assert publisher.unacked_publishes() == []

    def test_batch_fans_out_to_subscribers(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_remote("broker", person_java(), got.append)
        durable_got = []
        durable = TpsPeer("dsub", network)
        durable.subscribe_durable_remote("broker", person_java(),
                                         durable_got.append, cursor="d-c")
        network.run_until_idle()
        publisher.publish_durable(
            "broker",
            [publisher.new_instance("demo.a.Person", ["x"]),
             publisher.new_instance("demo.a.Person", ["y"])])
        network.run_until_idle()
        assert [v.getPersonName() for v in got] == ["x", "y"]
        assert [v.getPersonName() for v in durable_got] == ["x", "y"]
        # The durable subscriber acked the one record cumulatively.
        assert broker.cursors.get("d-c") == broker.event_log.next_offset

    def test_lost_publish_republished(self, tmp_path):
        """A publish dropped on the way in stays unacked; republishing
        resends the identical payload and lands it."""
        network, broker, publisher = make_world(tmp_path)
        publisher.publish_durable(
            "broker", publisher.new_instance("demo.a.Person", ["lost"]))
        network._queues.clear()  # the fabric ate the publish
        network.run_until_idle()
        assert len(publisher.unacked_publishes()) == 1
        assert broker.event_log.record_count == 0
        assert publisher.republish_unacked() == 1
        network.run_until_idle()
        assert publisher.unacked_publishes() == []
        assert broker.event_log.record_count == 1

    def test_lost_ack_republish_is_at_least_once(self, tmp_path):
        """When only the *ack* is lost the broker logged the batch; a
        republish appends a duplicate record — allowed by at-least-once,
        and visible as two records with the same content."""
        network, broker, publisher = make_world(tmp_path)
        publisher.publish_durable(
            "broker", publisher.new_instance("demo.a.Person", ["dup"]))
        network.flush()  # the publish lands, the ack is now queued
        network._queues.clear()  # ...and lost
        assert broker.event_log.record_count == 1
        assert len(publisher.unacked_publishes()) == 1
        publisher.republish_unacked()
        network.run_until_idle()
        assert publisher.unacked_publishes() == []
        assert broker.event_log.record_count == 2

    def test_mesh_shard_acks_durable_publishes(self, tmp_path):
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=2,
                          log_root=str(tmp_path / "mesh"))
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        got = []
        subscriber = TpsPeer("subscriber", network)
        subscriber.subscribe_remote(mesh.shard_for("subscriber"),
                                    person_java(), got.append)
        home = mesh.shard_for("publisher")
        publisher.publish_durable(
            home, publisher.new_instance("demo.a.Person", ["meshed"]))
        mesh.run_until_idle()
        assert publisher.unacked_publishes() == []
        assert [v.getPersonName() for v in got] == ["meshed"]
        assert mesh.shard(home).event_log.record_count == 1
        mesh.close()

    def test_broker_without_log_still_acks_admission(self, tmp_path):
        """Durable-publishing at a log-less broker degrades to an
        admission ack (routed, not durable) rather than hanging the
        publisher forever."""
        network = SimulatedNetwork()
        broker = TpsBroker("broker", network)  # no log_dir
        publisher = TpsPeer("pub", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        publisher.publish_durable(
            "broker", publisher.new_instance("demo.a.Person", ["nolog"]))
        network.run_until_idle()
        assert publisher.unacked_publishes() == []

    def test_tokens_are_unique_per_publish(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        tokens = {publisher.publish_durable(
            "broker", publisher.new_instance("demo.a.Person", ["t%d" % i]))
            for i in range(5)}
        assert len(tokens) == 5
        network.run_until_idle()
        assert publisher.unacked_publishes() == []
