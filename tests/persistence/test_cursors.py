"""Tests for the durable cursor store."""

import json
import os

from repro.persistence import CursorStore


class TestCursorStore:
    def test_unknown_cursor_is_zero(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        assert store.get("nobody") == 0
        assert store.entry("nobody") is None

    def test_advance_is_monotonic(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        assert store.advance("c", 5)
        assert not store.advance("c", 3)  # going backwards is a no-op
        assert not store.advance("c", 5)
        assert store.advance("c", 9)
        assert store.get("c") == 9

    def test_register_keeps_offset(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        store.advance("c", 7)
        resumed = store.register("c", peer_id="sub-1", description="<xml/>")
        assert resumed == 7
        assert store.entry("c")["peer_id"] == "sub-1"

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path)
        store.register("a", peer_id="p1", description="<d/>")
        store.advance("a", 12)
        store.advance("b", 3)

        reopened = CursorStore(path)
        assert reopened.get("a") == 12
        assert reopened.get("b") == 3
        assert reopened.entry("a")["peer_id"] == "p1"
        assert reopened.entry("a")["description"] == "<d/>"

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path)
        store.advance("a", 1)
        assert os.listdir(str(tmp_path)) == ["cursors.json"]
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["a"]["offset"] == 1

    def test_remove(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        store.advance("a", 1)
        assert store.remove("a")
        assert not store.remove("a")
        assert store.get("a") == 0

    def test_as_dict_snapshot(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        store.advance("b", 2)
        store.advance("a", 1)
        assert store.as_dict() == {"a": 1, "b": 2}
        assert store.names() == ["a", "b"]


class TestDeferredSync:
    def test_sync_every_defers_persistence(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path, sync_every=3)
        store.advance("c", 1)
        store.advance("c", 2)
        # Nothing persisted yet: a fresh reader sees the registration-era
        # state (the file may not even exist).
        assert CursorStore(path).get("c") == 0
        store.advance("c", 3)  # third advance crosses the threshold
        assert CursorStore(path).get("c") == 3

    def test_flush_persists_remainder(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path, sync_every=100)
        store.advance("c", 7)
        store.flush()
        assert CursorStore(path).get("c") == 7

    def test_register_always_persists(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path, sync_every=100)
        store.register("c", peer_id="p", description="<d/>")
        assert CursorStore(path).entry("c")["peer_id"] == "p"

    def test_sync_every_validates(self, tmp_path):
        import pytest
        with pytest.raises(ValueError):
            CursorStore(str(tmp_path / "c.json"), sync_every=0)


class TestCursorGC:
    """Incarnation stamping + prune: cursors of subscribers that never
    returned expire, so they cannot pin retention's slowest-cursor gate."""

    def test_incarnation_bumps_per_reopen(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path)
        assert store.incarnation == 1
        store.advance("c", 1)  # a mutation persists the bump
        assert CursorStore(path).incarnation == 2

    def test_readonly_open_does_not_rewrite(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        CursorStore(path).advance("c", 1)
        before = open(path, "rb").read()
        CursorStore(path)  # inspect-style open: no mutation
        assert open(path, "rb").read() == before

    def test_prune_expires_idle_cursors_only(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path)
        store.register("idle", peer_id="ghost")
        store.register("active", peer_id="alive")
        for _ in range(3):  # three incarnations in which only one returns
            store = CursorStore(path)
            store.register("active", peer_id="alive")
        assert store.prune(max_idle_incarnations=3) == ["idle"]
        assert "active" in store
        assert "idle" not in store
        # Persisted: the pruned cursor stays gone after a reopen.
        assert "idle" not in CursorStore(path)

    def test_prune_touched_by_ack_is_kept(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path)
        store.register("acked", peer_id="p")
        store.register("silent", peer_id="q")
        store = CursorStore(path)
        store.advance("acked", 5)  # an ack counts as activity
        store = CursorStore(path)
        store.advance("acked", 6)
        assert store.prune(max_idle_incarnations=2) == ["silent"]
        assert store.get("acked") == 6

    def test_prune_validates_threshold(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        import pytest
        with pytest.raises(ValueError):
            store.prune(0)

    def test_meta_key_is_reserved(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        import pytest
        with pytest.raises(ValueError):
            store.register("__meta__")

    def test_legacy_flat_file_loads(self, tmp_path):
        """A pre-incarnation cursors.json (no __meta__ entry) loads, and
        its unstamped cursors count as never-touched: prunable."""
        import json
        path = str(tmp_path / "cursors.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"old": {"offset": 7, "peer_id": "p",
                               "description": None}}, handle)
        store = CursorStore(path)
        assert store.get("old") == 7
        assert store.incarnation == 1
        assert store.prune(max_idle_incarnations=1) == ["old"]


class TestForeignFetchCursors:
    """Fetch cursors: positions in a *sibling shard's* offset space."""

    def test_origin_cursors_excluded_from_min_offset(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        store.register("c", peer_id="p")
        store.advance("c", 3)
        store.register("c@s1", peer_id="p", origin="s1", base="c")
        store.advance("c@s1", 99)  # a foreign offset, far ahead
        assert store.min_offset() == 3  # the local floor ignores it

    def test_derived_lists_the_cursor_family(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        store.register("c", peer_id="p")
        store.register("c@s1", peer_id="p", origin="s1", base="c")
        store.register("c@s2", peer_id="p", origin="s2", base="c")
        store.register("other", peer_id="p")
        assert store.derived("c") == ["c@s1", "c@s2"]
        assert store.derived("other") == []

    def test_origin_metadata_survives_reopen(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path)
        store.register("c@s1", peer_id="p", origin="s1", base="c")
        store.advance("c@s1", 7)
        store.flush()
        reopened = CursorStore(path)
        entry = reopened.entry("c@s1")
        assert entry["origin"] == "s1"
        assert entry["base"] == "c"
        assert reopened.get("c@s1") == 7
        assert reopened.derived("c") == ["c@s1"]
