"""Tests for the durable cursor store."""

import json
import os

from repro.persistence import CursorStore


class TestCursorStore:
    def test_unknown_cursor_is_zero(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        assert store.get("nobody") == 0
        assert store.entry("nobody") is None

    def test_advance_is_monotonic(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        assert store.advance("c", 5)
        assert not store.advance("c", 3)  # going backwards is a no-op
        assert not store.advance("c", 5)
        assert store.advance("c", 9)
        assert store.get("c") == 9

    def test_register_keeps_offset(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        store.advance("c", 7)
        resumed = store.register("c", peer_id="sub-1", description="<xml/>")
        assert resumed == 7
        assert store.entry("c")["peer_id"] == "sub-1"

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path)
        store.register("a", peer_id="p1", description="<d/>")
        store.advance("a", 12)
        store.advance("b", 3)

        reopened = CursorStore(path)
        assert reopened.get("a") == 12
        assert reopened.get("b") == 3
        assert reopened.entry("a")["peer_id"] == "p1"
        assert reopened.entry("a")["description"] == "<d/>"

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path)
        store.advance("a", 1)
        assert os.listdir(str(tmp_path)) == ["cursors.json"]
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["a"]["offset"] == 1

    def test_remove(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        store.advance("a", 1)
        assert store.remove("a")
        assert not store.remove("a")
        assert store.get("a") == 0

    def test_as_dict_snapshot(self, tmp_path):
        store = CursorStore(str(tmp_path / "cursors.json"))
        store.advance("b", 2)
        store.advance("a", 1)
        assert store.as_dict() == {"a": 1, "b": 2}
        assert store.names() == ["a", "b"]


class TestDeferredSync:
    def test_sync_every_defers_persistence(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path, sync_every=3)
        store.advance("c", 1)
        store.advance("c", 2)
        # Nothing persisted yet: a fresh reader sees the registration-era
        # state (the file may not even exist).
        assert CursorStore(path).get("c") == 0
        store.advance("c", 3)  # third advance crosses the threshold
        assert CursorStore(path).get("c") == 3

    def test_flush_persists_remainder(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path, sync_every=100)
        store.advance("c", 7)
        store.flush()
        assert CursorStore(path).get("c") == 7

    def test_register_always_persists(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path, sync_every=100)
        store.register("c", peer_id="p", description="<d/>")
        assert CursorStore(path).entry("c")["peer_id"] == "p"

    def test_sync_every_validates(self, tmp_path):
        import pytest
        with pytest.raises(ValueError):
            CursorStore(str(tmp_path / "c.json"), sync_every=0)
