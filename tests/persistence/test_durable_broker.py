"""Durable subscriptions on a single TpsBroker: replay, acks, recovery."""

import pytest

from repro.apps.tps import DurableSubscription, TpsBroker, TpsPeer
from repro.cts.assembly import Assembly
from repro.fixtures import (
    account_csharp,
    person_assembly_pair,
    person_java,
    person_vb,
)
from repro.net.network import NetworkError, SimulatedNetwork


def make_world(tmp_path, log=True):
    network = SimulatedNetwork()
    broker = TpsBroker("broker", network,
                       log_dir=str(tmp_path / "broker") if log else None)
    publisher = TpsPeer("pub", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    return network, broker, publisher


def publish(publisher, names):
    for name in names:
        publisher.publish("broker",
                          publisher.new_instance("demo.a.Person", [name]))


class TestLocalDurable:
    def test_backlog_then_live_in_order_no_duplicates(self, tmp_path):
        """Acceptance: a late subscriber receives exactly the conforming
        backlog in publish order, then live events, no duplicates."""
        network, broker, publisher = make_world(tmp_path)
        publish(publisher, ["e0", "e1", "e2"])

        got = []
        broker.subscribe_durable(person_java(), got.append, cursor="late")
        assert [v.getPersonName() for v in got] == ["e0", "e1", "e2"]

        publish(publisher, ["e3"])
        assert [v.getPersonName() for v in got] == ["e0", "e1", "e2", "e3"]
        assert broker.cursors.get("late") == broker.event_log.next_offset

    def test_replay_honors_conformance(self, tmp_path):
        """Non-conforming backlog records are skipped by the same routing
        check live publish uses — and still advance the cursor."""
        network, broker, publisher = make_world(tmp_path)
        publisher.host_assembly(Assembly("bank", [account_csharp()]))
        publish(publisher, ["keep-1"])
        publisher.publish("broker",
                          publisher.new_instance("demo.bank.Account", ["o", 1]))
        publish(publisher, ["keep-2"])

        got = []
        broker.subscribe_durable(person_java(), got.append, cursor="picky")
        assert [v.getPersonName() for v in got] == ["keep-1", "keep-2"]
        assert broker.cursors.get("picky") == broker.event_log.next_offset

    def test_resume_from_cursor_skips_acked(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        publish(publisher, ["a", "b"])
        first = []
        broker.subscribe_durable(person_java(), first.append, cursor="resume")
        broker.index.remove(
            next(s for s in broker.index.subscriptions()
                 if isinstance(s, DurableSubscription)).subscription_id)
        publish(publisher, ["c"])

        second = []
        broker.subscribe_durable(person_java(), second.append, cursor="resume")
        assert [v.getPersonName() for v in second] == ["c"]

    def test_requires_log(self, tmp_path):
        network, broker, publisher = make_world(tmp_path, log=False)
        with pytest.raises(NetworkError):
            broker.subscribe_durable(person_java(), lambda v: None, cursor="x")

    def test_requires_cursor_name(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        with pytest.raises(ValueError):
            broker.subscribe_durable(person_java(), lambda v: None, cursor="")

    def test_same_cursor_replaces_subscription(self, tmp_path):
        """Re-subscribing under one cursor name must not double-deliver."""
        network, broker, publisher = make_world(tmp_path)
        first, second = [], []
        broker.subscribe_durable(person_java(), first.append, cursor="same")
        broker.subscribe_durable(person_vb(), second.append, cursor="same")
        publish(publisher, ["once"])
        assert first == []
        assert [v.GetName() for v in second] == ["once"]


class TestRemoteDurable:
    def test_backlog_replay_through_scheduler(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        publish(publisher, ["r0", "r1"])

        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        # Queue-driven: nothing is delivered inside the subscribe call.
        assert got == []
        network.run_until_idle()
        assert [v.getPersonName() for v in got] == ["r0", "r1"]
        # Replay is real, accounted network traffic — and coalesced:
        # same-origin records pool into ONE batch with ONE cumulative ack.
        assert network.stats.by_kind_messages.get("object_batch", 0) == 1
        assert network.stats.by_kind_messages.get("delivery_ack", 0) == 1
        assert broker.cursors.get("sub-c") == broker.event_log.next_offset
        assert broker.pending_ack_count() == 0

    def test_live_durable_delivery_acks_cursor(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        network.run_until_idle()
        publish(publisher, ["live-1", "live-2"])
        network.run_until_idle()
        assert [v.getPersonName() for v in got] == ["live-1", "live-2"]
        assert broker.cursors.get("sub-c") == broker.event_log.next_offset

    def test_live_durable_ack_path_never_rerenders(self, tmp_path):
        """The acceptance gate end to end: across live durable
        deliveries the broker renders each record's header exactly once
        (admission canonicalises the stored frame) — the per-subscriber
        ack stamp is a header splice, never an XML re-render."""
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        network.run_until_idle()
        stats = broker.codec.stats
        stats.header_renders = 0
        stats.header_splices = 0
        publish(publisher, ["live-%d" % i for i in range(4)])
        network.run_until_idle()
        assert [v.getPersonName() for v in got] == \
            ["live-%d" % i for i in range(4)]
        # One render per publish — admission only — and one ack splice
        # per durable live delivery.  Nothing else touched the XML.
        assert stats.header_renders == 4
        assert stats.header_splices == 4

    def test_no_duplicates_across_replay_live_boundary(self, tmp_path):
        """Acceptance: backlog + live with no duplicate across the ack
        boundary, events in publish order."""
        network, broker, publisher = make_world(tmp_path)
        publish(publisher, ["b%d" % i for i in range(5)])
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        publish(publisher, ["b5", "b6"])  # live, while replay is queued
        network.run_until_idle()
        assert [v.getPersonName() for v in got] == ["b%d" % i for i in range(7)]

    def test_publisher_not_echoed_in_replay(self, tmp_path):
        """A publisher durable-subscribing never replays its own events."""
        network, broker, publisher = make_world(tmp_path)
        publish(publisher, ["mine"])
        got = []
        publisher.declare_interest(person_java())
        publisher.subscribe_durable_remote("broker", person_java(),
                                           got.append, cursor="pub-c")
        network.run_until_idle()
        assert got == []


class TestBrokerRestart:
    def test_restart_redelivers_unacked_only(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        publish(publisher, ["a0", "a1"])
        network.run_until_idle()  # delivered AND acked
        assert len(got) == 2

        publish(publisher, ["a2"])  # logged + sent, but ack never drains:
        broker.close()              # broker crashes with the ack in flight

        revived = TpsBroker("broker", network, log_dir=str(tmp_path / "broker"))
        restored = revived.recover_durable_subscriptions()
        assert [s.cursor_name for s in restored] == ["sub-c"]
        network.run_until_idle()

        names = [v.getPersonName() for v in got]
        # Acked-past events arrive exactly once; the unacked one at least once.
        assert names.count("a0") == 1
        assert names.count("a1") == 1
        assert names.count("a2") >= 1

    def test_restart_with_torn_log_tail(self, tmp_path):
        """A torn final record (crash mid-append) never blocks recovery:
        every record before the tear replays, the tear itself is cut, and
        the revived log appends where the tear was."""
        import os
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        publish(publisher, ["t0", "t1"])
        broker.close()  # crash with both deliveries and acks in flight

        events_dir = str(tmp_path / "broker" / "events")
        segment = sorted(name for name in os.listdir(events_dir)
                         if name.endswith(".seg"))[-1]
        path = os.path.join(events_dir, segment)
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 7)  # tear t1's record

        revived = TpsBroker("broker", network, log_dir=str(tmp_path / "broker"))
        assert revived.event_log.torn_tail_truncations == 1
        assert revived.event_log.next_offset == 1  # t0 survived, t1 cut
        revived.recover_durable_subscriptions()
        network.run_until_idle()

        names = [v.getPersonName() for v in got]
        # t0 was replayed (nothing acked before the crash); the old
        # incarnation's in-flight deliveries may add one more copy of
        # each event, but the torn record is never replayed.
        assert names.count("t0") >= 1
        assert names.count("t1") <= 1  # only ever from the in-flight queue
        # The revived log appends exactly where the tear was cut.
        publish(publisher, ["t2"])
        assert revived.event_log.next_offset == 2
        network.run_until_idle()
        assert [v.getPersonName() for v in got].count("t2") == 1


class TestCursorProgressPastSkippedRecords:
    def test_nonconforming_tail_does_not_rescan_forever(self, tmp_path):
        """A remote durable cursor is never pinned below a tail of
        non-conforming records: trailing skips ride the open batch's
        cumulative ack, so ONE pass reaches the log end."""
        network, broker, publisher = make_world(tmp_path)
        publisher.host_assembly(Assembly("bank", [account_csharp()]))
        publish(publisher, ["p0", "p1"])
        for _ in range(3):  # non-conforming tail
            publisher.publish("broker",
                              publisher.new_instance("demo.bank.Account",
                                                     ["o", 1]))
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        network.run_until_idle()
        assert [v.getPersonName() for v in got] == ["p0", "p1"]
        assert broker.cursors.get("sub-c") == broker.event_log.next_offset
        # A reconnect (same peer) replays nothing: no O(tail) re-scan.
        network.reset_accounting()
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            lambda v: None, cursor="sub-c")
        network.run_until_idle()
        assert network.stats.by_kind_messages.get("object_batch", 0) == 0

    def test_own_events_do_not_pin_cursor(self, tmp_path):
        """A publisher durable-subscribing skips its own backlog without
        leaving the cursor stuck below it."""
        network, broker, publisher = make_world(tmp_path)
        publish(publisher, ["mine-0", "mine-1"])
        publisher.declare_interest(person_java())
        publisher.subscribe_durable_remote("broker", person_java(),
                                           lambda v: None, cursor="pub-c")
        network.run_until_idle()
        assert broker.cursors.get("pub-c") == broker.event_log.next_offset


class TestPendingAckBound:
    def test_pending_ack_table_is_bounded(self, tmp_path, monkeypatch):
        """Orphaned tokens (dropped batches/acks) cannot grow without
        bound: the oldest is evicted once the cap is reached."""
        import repro.apps.tps.broker as broker_module
        monkeypatch.setattr(broker_module, "_MAX_PENDING_ACKS", 5)
        network, broker, publisher = make_world(tmp_path)
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            lambda v: None, cursor="sub-c")
        network.run_until_idle()
        for index in range(20):
            publish(publisher, ["x%d" % index])
            # Drop everything queued (batch + ack) before it travels.
            network._queues.clear()
        assert broker.pending_ack_count() <= 5
        assert len(broker._pending_by_cursor.get("sub-c", [])) <= 5


class TestFanOutIsolation:
    def test_offline_durable_subscriber_does_not_abort_fanout(self, tmp_path):
        """A durable subscriber that left the fabric must not break live
        delivery to everyone else — its records stay unacked for replay."""
        network, broker, publisher = make_world(tmp_path)
        gone = TpsPeer("gone", network)
        gone.subscribe_durable_remote("broker", person_java(),
                                      lambda v: None, cursor="gone-c")
        network.run_until_idle()
        still = []
        survivor = TpsPeer("survivor", network)
        survivor.subscribe_remote("broker", person_java(), still.append)
        gone.close()  # offline durable subscriber

        publish(publisher, ["after-gone"])
        network.run_until_idle()
        assert [v.getPersonName() for v in still] == ["after-gone"]
        # The offline subscriber's record is unacked, not leaked.
        assert broker.pending_ack_count() == 0
        assert broker.cursors.get("gone-c") < broker.event_log.next_offset

    def test_raising_local_handler_does_not_abort_fanout(self, tmp_path):
        """One broken in-process handler neither stops other deliveries
        nor acks the event it crashed on."""
        network, broker, publisher = make_world(tmp_path)

        def broken(view):
            raise RuntimeError("boom")

        broker.subscribe_durable(person_java(), broken, cursor="broken-c")
        good = []
        broker.subscribe_durable(person_vb(), good.append, cursor="good-c")

        publish(publisher, ["survives"])
        assert [v.GetName() for v in good] == ["survives"]
        assert broker.delivery_failures == 1
        # The crashed-on event is NOT acked for the broken handler...
        assert broker.cursors.get("broken-c") < broker.event_log.next_offset
        # ...and a later replay under the same cursor redelivers it.
        fixed = []
        broker.subscribe_durable(person_java(), fixed.append, cursor="broken-c")
        assert [v.getPersonName() for v in fixed] == ["survives"]
        assert broker.cursors.get("broken-c") == broker.event_log.next_offset

    def test_raising_handler_on_mesh_shard_keeps_forwarding(self, tmp_path):
        """Mesh variant: an exploding local handler on the home shard must
        not swallow cross-shard forwards."""
        from repro.apps.tps import BrokerMesh
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=2,
                          log_root=str(tmp_path / "mesh"))
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        home = mesh.shard_for("publisher")
        other = next(sid for sid in mesh.shard_ids if sid != home)

        def broken(view):
            raise RuntimeError("boom")

        mesh.shard(home).subscribe_durable(person_java(), broken,
                                           cursor="broken-c")
        remote_got = []
        remote = TpsPeer("remote-sub", network)
        remote.subscribe_remote(other, person_java(), remote_got.append)

        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["forwarded"]))
        mesh.run_until_idle()
        assert [v.getPersonName() for v in remote_got] == ["forwarded"]
        assert mesh.shard(home).delivery_failures == 1


class TestCumulativeAckSafety:
    def test_handler_failure_pins_cursor_below_failed_event(self, tmp_path):
        """A later successful delivery must not cumulatively ack an event
        whose handler crashed: the cursor stays pinned until a replay
        redelivers the failed event successfully."""
        network, broker, publisher = make_world(tmp_path)
        calls = []

        def flaky(view):
            calls.append(view.getPersonName())
            if view.getPersonName() == "bad" and calls.count("bad") == 1:
                raise RuntimeError("first delivery fails")

        broker.subscribe_durable(person_java(), flaky, cursor="flaky-c")
        publish(publisher, ["bad", "fine"])
        # "fine" was handled, but the cursor must not pass "bad".
        assert broker.cursors.get("flaky-c") == 0

        # Re-attach under the same cursor: replay redelivers from "bad";
        # this time it succeeds and the cursor catches up.
        redelivered = []
        broker.subscribe_durable(person_java(),
                                 lambda v: redelivered.append(
                                     v.getPersonName()),
                                 cursor="flaky-c")
        assert redelivered == ["bad", "fine"]
        assert broker.cursors.get("flaky-c") == broker.event_log.next_offset

    def test_materialization_failure_halts_replay_pass(self, tmp_path):
        """A record whose origin cannot serve code anymore stops the pass
        instead of letting later acks skip it."""
        network, broker, publisher = make_world(tmp_path)
        publish(publisher, ["m0", "m1"])
        publisher.close()  # origin gone: a fresh broker cannot fetch code
        broker.close()

        revived = TpsBroker("broker", network, log_dir=str(tmp_path / "broker"))
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        network.run_until_idle()
        assert got == []
        assert revived.replay_failures == 1  # halted at the first record
        assert revived.cursors.get("sub-c") == 0  # nothing skipped


class TestRetentionPlumbing:
    def test_log_kwargs_reach_the_event_log(self, tmp_path):
        network = SimulatedNetwork()
        broker = TpsBroker("broker", network,
                           log_dir=str(tmp_path / "broker"),
                           log_kwargs={"segment_max_bytes": 4096,
                                       "max_segments": 2})
        assert broker.event_log.segment_max_bytes == 4096
        assert broker.event_log.max_segments == 2


class TestCursorLifecycleAndOwnership:
    def test_unsubscribe_retires_cursor(self, tmp_path):
        """A cancelled durable subscription must not be resurrected by a
        broker restart."""
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        sid = subscriber.subscribe_durable_remote("broker", person_java(),
                                                  got.append, cursor="sub-c")
        network.run_until_idle()
        subscriber.unsubscribe_remote("broker", sid)
        assert "sub-c" not in broker.cursors

        publish(publisher, ["while-gone"])
        broker.close()
        revived = TpsBroker("broker", network, log_dir=str(tmp_path / "broker"))
        assert revived.recover_durable_subscriptions() == []
        network.run_until_idle()
        assert got == []  # nothing delivered to the cancelled subscription

    def test_cursor_cannot_be_taken_over_by_another_peer(self, tmp_path):
        """A cursor name is owned by the peer that registered it."""
        network, broker, publisher = make_world(tmp_path)
        got_a = []
        peer_a = TpsPeer("peer-a", network)
        peer_a.subscribe_durable_remote("broker", person_java(),
                                        got_a.append, cursor="shared")
        peer_b = TpsPeer("peer-b", network)
        with pytest.raises(NetworkError, match="belongs to"):
            peer_b.subscribe_durable_remote("broker", person_java(),
                                            lambda v: None, cursor="shared")
        # The rightful owner keeps receiving events.
        publish(publisher, ["still-mine"])
        network.run_until_idle()
        assert [v.getPersonName() for v in got_a] == ["still-mine"]

    def test_persisted_cursor_ownership_survives_restart(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        peer_a = TpsPeer("peer-a", network)
        peer_a.subscribe_durable_remote("broker", person_java(),
                                        lambda v: None, cursor="mine")
        broker.close()
        revived = TpsBroker("broker", network, log_dir=str(tmp_path / "broker"))
        intruder = TpsPeer("intruder", network)
        with pytest.raises(NetworkError, match="belongs to"):
            intruder.subscribe_durable_remote("broker", person_java(),
                                              lambda v: None, cursor="mine")


class TestReplayBatching:
    def test_large_backlog_coalesces_into_few_messages(self, tmp_path):
        """An N-record backlog replays in ~N/64 messages, not 2N."""
        network, broker, publisher = make_world(tmp_path)
        n_backlog = 150
        publish(publisher, ["b%d" % i for i in range(n_backlog)])
        network.reset_accounting()

        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        network.run_until_idle()
        assert [v.getPersonName() for v in got] == \
            ["b%d" % i for i in range(n_backlog)]
        batches = network.stats.by_kind_messages["object_batch"]
        assert batches == -(-n_backlog // 64)  # ceil(150/64) == 3
        assert network.stats.by_kind_messages["delivery_ack"] == batches
        assert broker.cursors.get("sub-c") == broker.event_log.next_offset

    def test_trailing_nonconforming_records_consumed_by_batch_ack(self, tmp_path):
        """Skipped records after deliverable ones ride the open batch's
        cumulative ack — the cursor reaches the log end in ONE pass."""
        network, broker, publisher = make_world(tmp_path)
        publisher.host_assembly(Assembly("bank", [account_csharp()]))
        publish(publisher, ["keep"])
        for _ in range(3):
            publisher.publish("broker",
                              publisher.new_instance("demo.bank.Account",
                                                     ["o", 1]))
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        network.run_until_idle()
        assert [v.getPersonName() for v in got] == ["keep"]
        assert broker.cursors.get("sub-c") == broker.event_log.next_offset


class TestAckWindowOrdering:
    def test_later_ack_does_not_skip_dropped_earlier_batch(self, tmp_path):
        """An ack for a later delivery must not advance the cursor past an
        earlier in-flight batch the fabric dropped — its records would
        never be redelivered."""
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="sub-c")
        network.run_until_idle()

        # First batch: published, queued toward the subscriber... and
        # dropped (simulated by clearing the queues before the drain).
        publish(publisher, ["lost"])
        network._queues.clear()
        # Second batch: delivered and acked normally.
        publish(publisher, ["kept"])
        network.run_until_idle()

        assert [v.getPersonName() for v in got] == ["kept"]
        # The cursor must still sit below the dropped record...
        assert broker.cursors.get("sub-c") == 0
        # ...so a reconnect replays BOTH events — "lost" finally arrives,
        # "kept" a second time (at-least-once).  The reconnect's handler
        # replaces the old one (no double delivery).
        redelivered = []
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            redelivered.append,
                                            cursor="sub-c")
        network.run_until_idle()
        assert [v.getPersonName() for v in redelivered] == ["lost", "kept"]
        assert [v.getPersonName() for v in got] == ["kept"]  # old handler out
        assert broker.cursors.get("sub-c") == broker.event_log.next_offset

    def test_local_handler_cannot_claim_persisted_remote_cursor(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        remote = TpsPeer("remote", network)
        remote.subscribe_durable_remote("broker", person_java(),
                                        lambda v: None, cursor="theirs")
        broker.close()
        revived = TpsBroker("broker", network, log_dir=str(tmp_path / "broker"))
        with pytest.raises(NetworkError, match="belongs to"):
            revived.subscribe_durable(person_java(), lambda v: None,
                                      cursor="theirs")
        # The persisted metadata is intact: recovery still works.
        assert [s.cursor_name
                for s in revived.recover_durable_subscriptions()] == ["theirs"]

    def test_late_ack_after_unsubscribe_leaves_no_zombie_cursor(self, tmp_path):
        """An ack still queued when its subscription is cancelled must not
        re-create the removed cursor entry."""
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        sid = subscriber.subscribe_durable_remote("broker", person_java(),
                                                  got.append, cursor="sub-c")
        network.run_until_idle()
        publish(publisher, ["ev"])
        network.flush()  # delivered; the ack is now queued, not processed
        subscriber.unsubscribe_remote("broker", sid)
        assert "sub-c" not in broker.cursors
        network.run_until_idle()  # the late ack drains...
        assert "sub-c" not in broker.cursors  # ...and resurrects nothing


class TestReconnectHandlerReplacement:
    def test_reconnect_does_not_double_deliver(self, tmp_path):
        """Re-subscribing under the same cursor swaps the client-side
        delivery callback — the application handler runs once per event,
        not once per historical subscribe call."""
        network, broker, publisher = make_world(tmp_path)
        first, second = [], []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            first.append, cursor="sub-c")
        network.run_until_idle()
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            second.append, cursor="sub-c")
        network.run_until_idle()

        publish(publisher, ["once-only"])
        network.run_until_idle()
        assert [v.getPersonName() for v in second] == ["once-only"]
        assert first == []  # replaced, not stacked


class TestRetentionAndReplayEdges:
    def test_retention_gap_is_counted_not_silent(self, tmp_path):
        """Records dropped by retention below a slow cursor are surfaced
        as retention_lost_records, not silently skipped."""
        network = SimulatedNetwork()
        broker = TpsBroker("broker", network,
                           log_dir=str(tmp_path / "broker"),
                           log_kwargs={"segment_max_bytes": 600,
                                       "max_segments": 2})
        publisher = TpsPeer("pub", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="slow")
        network.run_until_idle()
        subscriber.close()  # goes offline; cursor stays put
        for index in range(30):  # retention drops early segments
            publisher.publish("broker",
                              publisher.new_instance("demo.a.Person",
                                                     ["r%d" % index]))
        assert broker.event_log.first_offset > 0
        broker.index.remove(
            next(s for s in broker.remote_subscriptions()).subscription_id)

        revived_sub = TpsPeer("sub", network)
        revived_sub.subscribe_durable_remote("broker", person_java(),
                                             got.append, cursor="slow")
        network.run_until_idle()
        assert broker.retention_lost_records == broker.event_log.first_offset
        assert broker.stats()["retention_lost_records"] > 0
        # Whatever is still retained was delivered.
        assert len(got) == broker.event_log.record_count

    def test_remote_peer_cannot_claim_detached_local_cursor(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        broker.subscribe_durable(person_java(), lambda v: None, cursor="app-c")
        broker.index.remove(
            next(s for s in broker.index.subscriptions()
                 if isinstance(s, DurableSubscription)).subscription_id)
        intruder = TpsPeer("intruder", network)
        with pytest.raises(NetworkError, match="local handler"):
            intruder.subscribe_durable_remote("broker", person_java(),
                                              lambda v: None, cursor="app-c")

    def test_handler_publishing_during_replay_survives_retention(self, tmp_path):
        """A local durable handler that publishes back through the broker
        can trigger retention mid-replay; replay must skip the dropped
        segment, not crash."""
        network = SimulatedNetwork()
        broker = TpsBroker("broker", network,
                           log_dir=str(tmp_path / "broker"),
                           log_kwargs={"segment_max_bytes": 600,
                                       "max_segments": 3})
        publisher = TpsPeer("pub", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        for index in range(12):
            publisher.publish("broker",
                              publisher.new_instance("demo.a.Person",
                                                     ["seed%d" % index]))
        runtime = broker.runtime

        got = []

        def republish(view):
            got.append(view.getPersonName())
            if len(got) <= 6 and not view.getPersonName().startswith("derived"):
                # Re-entrant publish: appends to the log, may rotate and
                # retention-drop the segment replay is about to read.
                value = runtime.new_instance(
                    "demo.a.Person", ["derived-%d" % len(got)])
                broker._append_to_log([value], "broker")

        broker.subscribe_durable(person_java(), republish, cursor="re-c")
        assert len(got) >= 1  # replay survived whatever retention dropped
        assert broker.cursors.get("re-c") <= broker.event_log.next_offset

    def test_ack_tokens_differ_across_incarnations(self, tmp_path):
        network, broker, publisher = make_world(tmp_path)
        token_a = broker._issue_ack_token("p", (("c", 0, 1),))
        broker.close()
        revived = TpsBroker("broker", network, log_dir=str(tmp_path / "broker"))
        token_b = revived._issue_ack_token("p", (("c", 0, 1),))
        assert token_a != token_b  # a stale ack can never match a new token


class TestTokenRetirement:
    def test_reconnect_retires_stale_tokens(self, tmp_path, monkeypatch):
        """A reconnect must retire the old incarnation's tokens entirely —
        cap eviction of a leftover must not re-block the cursor."""
        import repro.apps.tps.broker as broker_module
        network, broker, publisher = make_world(tmp_path)
        got = []
        subscriber = TpsPeer("sub", network)
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="c")
        network.run_until_idle()
        # A delivery whose ack is lost leaves a stale token behind.
        publish(publisher, ["stale"])
        network._queues.clear()
        assert broker.pending_ack_count() == 1
        # Reconnect: the stale token is gone, not merely unlinked.
        subscriber.subscribe_durable_remote("broker", person_java(),
                                            got.append, cursor="c")
        assert broker.pending_ack_count() == 1  # only the fresh replay token
        network.run_until_idle()
        assert broker.cursors.get("c") == broker.event_log.next_offset
        # Force evictions: nothing stale remains to re-block the cursor.
        monkeypatch.setattr(broker_module, "_MAX_PENDING_ACKS", 1)
        publish(publisher, ["after-1", "after-2"])
        network.run_until_idle()
        assert broker.cursors.get("c") == broker.event_log.next_offset \
            or broker._cursor_blocks.get("c", 10**9) >= \
            broker.event_log.first_offset
