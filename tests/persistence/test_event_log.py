"""Tests for the segmented, append-only EventLog (recovery included)."""

import os

import pytest

from repro.persistence import EventLog, inspect_log


def segment_files(directory):
    return sorted(name for name in os.listdir(directory)
                  if name.endswith(".seg"))


def fill(log, count, payload=b"payload-bytes", origin="pub"):
    return [log.append(payload, origin=origin) for _ in range(count)]


class TestAppendRead:
    def test_offsets_are_monotonic_and_contiguous(self, tmp_path):
        log = EventLog(str(tmp_path))
        assert fill(log, 5) == list(range(5))
        assert log.next_offset == 5
        assert log.first_offset == 0
        assert log.record_count == 5

    def test_read_returns_payload_and_origin(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append(b"first", origin="alice")
        log.append(b"second", origin="bob")
        record = log.read(1)
        assert record.offset == 1
        assert record.origin == "bob"
        assert record.payload == b"second"

    def test_read_missing_offset_raises(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append(b"x")
        with pytest.raises(KeyError):
            log.read(7)

    def test_replay_range_and_order(self, tmp_path):
        log = EventLog(str(tmp_path))
        fill(log, 10)
        assert [r.offset for r in log.replay()] == list(range(10))
        assert [r.offset for r in log.replay(4)] == list(range(4, 10))
        assert [r.offset for r in log.replay(4, 7)] == [4, 5, 6]

    def test_replay_snapshots_end_at_call_time(self, tmp_path):
        log = EventLog(str(tmp_path))
        fill(log, 3)
        seen = []
        for record in log.replay():
            seen.append(record.offset)
            log.append(b"during-iteration")
        assert seen == [0, 1, 2]

    def test_empty_origin_allowed(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append(b"anonymous")
        assert log.read(0).origin == ""


class TestSegmentsAndRetention:
    def test_rotation_by_size(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=120)
        fill(log, 6, payload=b"x" * 40)  # ~68-byte records: 1 per segment
        assert len(segment_files(str(tmp_path))) >= 3
        assert [r.offset for r in log.replay()] == list(range(6))

    def test_oversized_record_still_written(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=50)
        log.append(b"y" * 500)
        assert log.read(0).payload == b"y" * 500

    def test_retention_max_segments_drops_from_front(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=120, max_segments=2)
        fill(log, 10, payload=b"x" * 40)
        assert len(segment_files(str(tmp_path))) <= 2
        assert log.first_offset > 0
        assert log.next_offset == 10
        # Replay from 0 transparently starts at the oldest retained record.
        offsets = [r.offset for r in log.replay(0)]
        assert offsets == list(range(log.first_offset, 10))
        assert log.retention_dropped_records == 10 - len(offsets)

    def test_retention_max_bytes(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=120, max_bytes=300)
        fill(log, 20, payload=b"x" * 40)
        assert log.size_bytes <= 300
        assert log.next_offset == 20

    def test_active_segment_never_dropped(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=10_000, max_bytes=1)
        fill(log, 3)
        # Everything lives in one (active) segment: retention cannot fire.
        assert log.record_count == 3


class TestReopen:
    def test_reopen_preserves_records_and_offsets(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=120)
        fill(log, 7, payload=b"x" * 40)
        log.close()
        reopened = EventLog(str(tmp_path), segment_max_bytes=120)
        assert reopened.next_offset == 7
        assert [r.offset for r in reopened.replay()] == list(range(7))
        assert reopened.append(b"more") == 7

    def test_reopen_empty_directory(self, tmp_path):
        log = EventLog(str(tmp_path))
        assert log.next_offset == 0
        assert list(log.replay()) == []


class TestRecovery:
    def test_torn_final_record_truncated(self, tmp_path):
        """Crash mid-append: the half-written record is dropped, every
        prior record replays intact (acceptance criterion)."""
        log = EventLog(str(tmp_path))
        fill(log, 5, payload=b"x" * 64)
        log.close()
        path = os.path.join(str(tmp_path), segment_files(str(tmp_path))[-1])
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 10)
        recovered = EventLog(str(tmp_path))
        assert recovered.torn_tail_truncations == 1
        assert recovered.next_offset == 4
        assert [r.offset for r in recovered.replay()] == [0, 1, 2, 3]
        # The log accepts new appends right where the tear was cut.
        assert recovered.append(b"fresh") == 4

    def test_corrupted_crc_truncated(self, tmp_path):
        log = EventLog(str(tmp_path))
        fill(log, 3, payload=b"x" * 64)
        log.close()
        path = os.path.join(str(tmp_path), segment_files(str(tmp_path))[-1])
        with open(path, "r+b") as handle:
            handle.seek(-5, 2)  # flip a byte inside the last record's payload
            byte = handle.read(1)
            handle.seek(-5, 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        recovered = EventLog(str(tmp_path))
        assert recovered.torn_tail_truncations == 1
        assert recovered.next_offset == 2
        assert [r.payload for r in recovered.replay()] == [b"x" * 64] * 2

    def test_corruption_drops_unreachable_later_segments(self, tmp_path):
        """A tear in a middle segment cuts the log there: records past it
        could skip offsets, so they are dropped, not replayed with gaps."""
        log = EventLog(str(tmp_path), segment_max_bytes=120)
        fill(log, 6, payload=b"x" * 40)
        log.close()
        names = segment_files(str(tmp_path))
        assert len(names) >= 3
        middle = os.path.join(str(tmp_path), names[1])
        with open(middle, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xde\xad\xbe\xef")
        recovered = EventLog(str(tmp_path), segment_max_bytes=120)
        offsets = [r.offset for r in recovered.replay()]
        assert offsets == list(range(offsets[-1] + 1)) if offsets else True
        assert recovered.next_offset == (offsets[-1] + 1 if offsets else 0)
        assert recovered.dropped_segments > 0

    def test_recovery_is_idempotent(self, tmp_path):
        log = EventLog(str(tmp_path))
        fill(log, 4, payload=b"x" * 64)
        log.close()
        path = os.path.join(str(tmp_path), segment_files(str(tmp_path))[-1])
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 1)
        first = EventLog(str(tmp_path))
        first.close()
        second = EventLog(str(tmp_path))
        assert second.torn_tail_truncations == 0  # already repaired
        assert second.next_offset == 3


class TestInspect:
    def test_inspect_matches_log_state(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=120)
        fill(log, 6, payload=b"x" * 40)
        info = inspect_log(str(tmp_path))
        assert info["records"] == 6
        assert info["first_offset"] == 0
        assert info["next_offset"] == 6
        assert info["segment_count"] == len(segment_files(str(tmp_path)))
        assert info["torn_segments"] == 0

    def test_inspect_reports_tear_without_mutating(self, tmp_path):
        log = EventLog(str(tmp_path))
        fill(log, 3, payload=b"x" * 64)
        log.close()
        path = os.path.join(str(tmp_path), segment_files(str(tmp_path))[-1])
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 4)
        info = inspect_log(str(tmp_path))
        assert info["torn_segments"] == 1
        assert info["records"] == 2
        assert os.path.getsize(path) == size - 4  # inspect never repairs

    def test_inspect_missing_directory(self, tmp_path):
        info = inspect_log(str(tmp_path / "nope"))
        assert info["records"] == 0
        assert info["segment_count"] == 0


class TestStats:
    def test_stats_surface(self, tmp_path):
        log = EventLog(str(tmp_path), segment_max_bytes=120, max_segments=3)
        fill(log, 8, payload=b"x" * 40)
        stats = log.stats()
        assert stats["appended"] == 8
        assert stats["records"] == log.record_count
        assert stats["next_offset"] == 8
        assert stats["segments"] <= 3


class TestOffsetMonotonicityAcrossTotalLoss:
    def test_next_offset_survives_when_no_record_survives(self, tmp_path):
        """Retention + a torn sole record can leave zero salvageable
        records; the reborn log must continue from the segment file's
        base offset, never reset to 0 (persisted cursors hold high
        offsets)."""
        log = EventLog(str(tmp_path), segment_max_bytes=120, max_segments=1)
        fill(log, 9, payload=b"x" * 40)  # retention leaves the last segment
        base = log.first_offset
        assert base > 0
        log.close()
        # Tear every record in the surviving segment.
        path = os.path.join(str(tmp_path), segment_files(str(tmp_path))[-1])
        with open(path, "r+b") as handle:
            handle.seek(2)
            handle.write(b"\x00\x00\x00\x00")
        recovered = EventLog(str(tmp_path), segment_max_bytes=120)
        assert recovered.record_count == 0
        assert recovered.next_offset == base  # not 0
        assert recovered.append(b"fresh") == base


class TestAppendAt:
    """Idempotent at-offset appends — the replica-log write path."""

    def test_append_at_explicit_offsets(self, tmp_path):
        log = EventLog(str(tmp_path))
        assert log.append_at(0, b"a") == 0
        assert log.append_at(1, b"b") == 1
        assert log.next_offset == 2
        assert [r.payload for r in log.replay()] == [b"a", b"b"]

    def test_below_high_water_is_skipped(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append_at(0, b"a")
        log.append_at(1, b"b")
        assert log.append_at(0, b"dup") is None
        assert log.append_at(1, b"dup") is None
        assert log.duplicate_appends == 2
        assert [r.payload for r in log.replay()] == [b"a", b"b"]
        assert log.stats()["duplicate_appends"] == 2

    def test_holes_are_legal_and_survive_reopen(self, tmp_path):
        """Origin-side compaction holes reach followers as offset gaps;
        the recovery scan (which tolerates compaction holes) must accept
        them."""
        log = EventLog(str(tmp_path))
        log.append_at(0, b"a")
        log.append_at(4, b"b", origin="p")
        assert log.next_offset == 5
        log.close()
        reopened = EventLog(str(tmp_path))
        assert [r.offset for r in reopened.replay()] == [0, 4]
        assert reopened.read(4).origin == "p"
        assert reopened.next_offset == 5

    def test_append_at_interleaves_with_append(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append(b"a")                 # offset 0
        assert log.append_at(3, b"b") == 3
        assert log.append(b"c") == 4     # continues after the jump
        assert [r.offset for r in log.replay()] == [0, 3, 4]
