"""Tests for the eager baseline and the optimistic-vs-eager comparison."""

import pytest

from repro.core import ConformanceOptions
from repro.cts.assembly import Assembly
from repro.fixtures import account_csharp, person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.transport.eager import EagerPeer
from repro.transport.protocol import InteropPeer


def make_pair(cls):
    network = SimulatedNetwork()
    sender = cls("sender", network, options=ConformanceOptions.pragmatic())
    receiver = cls("receiver", network, options=ConformanceOptions.pragmatic())
    asm_a, _ = person_assembly_pair()
    sender.host_assembly(asm_a)
    receiver.declare_interest(person_java())
    return network, sender, receiver


class TestEagerDelivery:
    def test_object_arrives_with_zero_round_trips(self):
        network, sender, receiver = make_pair(EagerPeer)
        sender.send("receiver", sender.new_instance("demo.a.Person", ["Eager"]))
        assert receiver.inbox[0].view.getPersonName() == "Eager"
        assert network.stats.round_trips == 0
        assert receiver.transport_stats.descriptions_fetched == 0
        assert receiver.transport_stats.assemblies_fetched == 0

    def test_repeat_sends_still_carry_everything(self):
        network, sender, receiver = make_pair(EagerPeer)
        sender.send("receiver", sender.new_instance("demo.a.Person", ["1"]))
        first_bytes = network.stats.bytes_sent
        sender.send("receiver", sender.new_instance("demo.a.Person", ["2"]))
        second_bytes = network.stats.bytes_sent - first_bytes
        # Same heavy payload every time (no amortisation).
        assert second_bytes > first_bytes * 0.8

    def test_conformance_still_enforced(self):
        network, sender, receiver = make_pair(EagerPeer)
        sender.host_assembly(Assembly("bank", [account_csharp()]))
        sender.send("receiver", sender.new_instance("demo.bank.Account", ["o", 1]))
        assert not receiver.inbox[0].accepted


class TestOptimisticVsEager:
    @pytest.mark.parametrize("n_objects", [1, 5, 20])
    def test_optimistic_wins_after_first_object(self, n_objects):
        net_opt, s_opt, r_opt = make_pair(InteropPeer)
        net_eag, s_eag, r_eag = make_pair(EagerPeer)
        for i in range(n_objects):
            s_opt.send("receiver", s_opt.new_instance("demo.a.Person", ["p%d" % i]))
            s_eag.send("receiver", s_eag.new_instance("demo.a.Person", ["p%d" % i]))
        if n_objects == 1:
            # A single send: eager may be competitive (no round trips).
            assert net_opt.stats.round_trips == 2
        else:
            assert net_opt.stats.bytes_sent < net_eag.stats.bytes_sent

    def test_rejection_is_cheaper_optimistically(self):
        """For a non-conformant object, optimistic transfers only envelope +
        description; eager has already shipped the code."""
        net_opt, s_opt, r_opt = make_pair(InteropPeer)
        net_eag, s_eag, r_eag = make_pair(EagerPeer)
        for sender in (s_opt, s_eag):
            sender.host_assembly(Assembly("bank", [account_csharp()]))
        s_opt.send("receiver", s_opt.new_instance("demo.bank.Account", ["o", 1]))
        s_eag.send("receiver", s_eag.new_instance("demo.bank.Account", ["o", 1]))
        assert net_opt.stats.bytes_sent < net_eag.stats.bytes_sent
