"""Failure injection: the protocol on a lossy network."""

import pytest

from repro.core import ConformanceOptions
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import MessageDropped, SimulatedNetwork
from repro.transport.protocol import InteropPeer


def lossy_world(drop_rate, seed, max_retries):
    network = SimulatedNetwork(drop_rate=drop_rate, seed=seed)
    sender = InteropPeer("sender", network,
                         options=ConformanceOptions.pragmatic(),
                         max_retries=max_retries)
    receiver = InteropPeer("receiver", network,
                           options=ConformanceOptions.pragmatic(),
                           max_retries=max_retries)
    asm_a, _ = person_assembly_pair()
    sender.host_assembly(asm_a)
    receiver.declare_interest(person_java())
    return network, sender, receiver


class TestWithoutRetries:
    def test_drops_surface_as_errors(self):
        network, sender, receiver = lossy_world(0.6, seed=3, max_retries=0)
        failures = 0
        for i in range(20):
            try:
                sender.send("receiver", sender.new_instance("demo.a.Person", ["p%d" % i]))
            except MessageDropped:
                failures += 1
        assert failures > 0  # losses are visible, not silent

    def test_reliable_network_unaffected(self):
        network, sender, receiver = lossy_world(0.0, seed=0, max_retries=0)
        for i in range(5):
            sender.send("receiver", sender.new_instance("demo.a.Person", ["p%d" % i]))
        assert len(receiver.inbox) == 5


class TestWithRetries:
    def test_moderate_loss_fully_recovered(self):
        network, sender, receiver = lossy_world(0.3, seed=11, max_retries=25)
        for i in range(20):
            sender.send("receiver", sender.new_instance("demo.a.Person", ["p%d" % i]))
        delivered = [r.view.getPersonName() for r in receiver.inbox]
        assert delivered == ["p%d" % i for i in range(20)]

    def test_retries_never_duplicate_delivery(self):
        network, sender, receiver = lossy_world(0.3, seed=11, max_retries=25)
        for i in range(10):
            sender.send("receiver", sender.new_instance("demo.a.Person", ["p%d" % i]))
        # Drops happen before the handler runs, so each object is delivered
        # exactly once despite resends.
        assert len(receiver.inbox) == 10

    def test_retries_cost_extra_messages(self):
        lossless, s0, r0 = lossy_world(0.0, seed=0, max_retries=25)
        for i in range(10):
            s0.send("receiver", s0.new_instance("demo.a.Person", ["p%d" % i]))

        lossy, s1, r1 = lossy_world(0.3, seed=11, max_retries=25)
        for i in range(10):
            s1.send("receiver", s1.new_instance("demo.a.Person", ["p%d" % i]))

        assert lossy.stats.messages >= lossless.stats.messages

    def test_exhausted_retries_raise(self):
        network, sender, receiver = lossy_world(0.95, seed=5, max_retries=1)
        with pytest.raises(MessageDropped):
            for i in range(30):
                sender.send("receiver", sender.new_instance("demo.a.Person", ["x"]))
