"""Tests for the optimistic transport protocol (Figure 1)."""

import pytest

from repro.core import ConformanceOptions
from repro.cts.assembly import Assembly
from repro.fixtures import (
    account_csharp,
    employee_assembly_pair,
    person_assembly_pair,
    person_java,
)
from repro.net.network import SimulatedNetwork
from repro.transport.protocol import InteropPeer, ProtocolError


@pytest.fixture
def world():
    network = SimulatedNetwork()
    sender = InteropPeer("sender", network, options=ConformanceOptions.pragmatic())
    receiver = InteropPeer("receiver", network, options=ConformanceOptions.pragmatic())
    asm_a, _ = person_assembly_pair()
    sender.host_assembly(asm_a)
    return network, sender, receiver


class TestHappyPath:
    def test_first_object_triggers_description_and_code(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.send("receiver", sender.new_instance("demo.a.Person", ["One"]))
        assert receiver.transport_stats.descriptions_fetched == 1
        assert receiver.transport_stats.assemblies_fetched == 1
        received = receiver.inbox[0]
        assert received.accepted
        assert received.view.getPersonName() == "One"

    def test_repeat_sends_are_free(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        for name in ["A", "B", "C"]:
            sender.send("receiver", sender.new_instance("demo.a.Person", [name]))
        assert receiver.transport_stats.descriptions_fetched == 1
        assert receiver.transport_stats.assemblies_fetched == 1
        assert [r.view.getPersonName() for r in receiver.inbox] == ["A", "B", "C"]

    def test_network_kind_breakdown(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.send("receiver", sender.new_instance("demo.a.Person", ["X"]))
        kinds = network.stats.by_kind_messages
        assert kinds["object"] == 1
        assert kinds["get_description"] == 1
        assert kinds["get_assembly"] == 1

    def test_no_interest_delivers_raw(self, world):
        _, sender, receiver = world
        sender.send("receiver", sender.new_instance("demo.a.Person", ["Raw"]))
        received = receiver.inbox[0]
        assert received.accepted
        assert received.interest is None
        assert received.view.GetName() == "Raw"  # provider surface, no proxy

    def test_known_type_skips_everything(self, world):
        _, sender, receiver = world
        asm_a, _ = person_assembly_pair()
        receiver.host_assembly(asm_a)  # receiver already has the code
        sender.send("receiver", sender.new_instance("demo.a.Person", ["K"]))
        assert receiver.transport_stats.descriptions_fetched == 0
        assert receiver.transport_stats.assemblies_fetched == 0
        assert receiver.inbox[0].view.GetName() == "K"

    def test_on_receive_callback(self, world):
        _, sender, receiver = world
        seen = []
        receiver.on_receive(lambda r: seen.append(r.type_name))
        sender.send("receiver", sender.new_instance("demo.a.Person", ["cb"]))
        assert seen == ["demo.a.Person"]


class TestRejection:
    def test_nonconformant_rejected_without_code_download(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.host_assembly(Assembly("bank", [account_csharp()]))
        sender.send("receiver", sender.new_instance("demo.bank.Account", ["o", 9]))
        received = receiver.inbox[0]
        assert not received.accepted
        assert received.value is None
        assert receiver.transport_stats.objects_rejected == 1
        # The optimistic win: description fetched, code NOT fetched.
        assert receiver.transport_stats.descriptions_fetched == 1
        assert receiver.transport_stats.assemblies_fetched == 0

    def test_rejection_saves_bytes(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.host_assembly(Assembly("bank", [account_csharp()]))

        network.reset_accounting()
        sender.send("receiver", sender.new_instance("demo.bank.Account", ["o", 9]))
        rejected_bytes = network.stats.bytes_sent

        network.reset_accounting()
        sender.send("receiver", sender.new_instance("demo.a.Person", ["ok"]))
        accepted_bytes = network.stats.bytes_sent
        assert rejected_bytes < accepted_bytes


class TestMultiTypeGraphs:
    def test_nested_object_downloads_one_assembly(self):
        network = SimulatedNetwork()
        sender = InteropPeer("sender", network, options=ConformanceOptions.pragmatic())
        receiver = InteropPeer("receiver", network, options=ConformanceOptions.pragmatic())
        hr_a, hr_b = employee_assembly_pair()
        sender.host_assembly(hr_a)
        receiver.declare_interest(hr_b.find_type("demo.b.Employee"))

        address = sender.new_instance("demo.a.Address", ["1 Rue", "Geneva"])
        employee = sender.new_instance("demo.a.Employee", ["Zoe", address])
        sender.send("receiver", employee)

        received = receiver.inbox[0]
        assert received.accepted
        # One assembly covers both Employee and Address.
        assert receiver.transport_stats.assemblies_fetched == 1
        assert received.view.getName() == "Zoe"
        assert received.view.getAddress().getCity() == "Geneva"


class TestCodeSourceFallback:
    def test_repository_fallback(self):
        """Sender that cannot serve code; receiver falls back to the
        configured code repository peer."""
        from repro.net.codeserver import CodeRepository

        network = SimulatedNetwork()
        repo = CodeRepository("repo", network)
        asm_a, _ = person_assembly_pair()
        repo.publish(asm_a)

        # Sender loads types into its runtime but does NOT host the assembly.
        sender = InteropPeer("sender", network, options=ConformanceOptions.pragmatic())
        sender.runtime.load_assembly(asm_a)

        receiver = InteropPeer(
            "receiver", network,
            options=ConformanceOptions.pragmatic(),
            code_source="repo",
        )
        receiver.declare_interest(person_java())
        sender.send("receiver", sender.new_instance("demo.a.Person", ["ViaRepo"]))
        assert receiver.inbox[0].view.getPersonName() == "ViaRepo"

    def test_missing_code_everywhere_fails_on_receiver_only(self):
        """The receiver cannot materialise the object — that failure is the
        receiver's (counted by the network), not an exception inside the
        sender's call stack."""
        network = SimulatedNetwork()
        sender = InteropPeer("sender", network)
        receiver = InteropPeer("receiver", network)
        asm_a, _ = person_assembly_pair()
        sender.runtime.load_assembly(asm_a)  # not hosted, no repo configured
        sender.send("receiver", sender.new_instance("demo.a.Person", ["x"]))
        assert receiver.inbox == []  # nothing delivered
        assert network.stats.handler_errors == 1
        assert "ProtocolError" in network.handler_error_log[0][2]

    def test_receive_envelope_raises_without_code(self):
        """Called directly (not through the one-way fabric), the protocol
        error is still visible to the embedding code."""
        network = SimulatedNetwork()
        sender = InteropPeer("sender", network)
        receiver = InteropPeer("receiver", network)
        asm_a, _ = person_assembly_pair()
        sender.runtime.load_assembly(asm_a)
        envelope = receiver.codec.parse(
            sender.codec.encode(sender.new_instance("demo.a.Person", ["x"]))
        )
        with pytest.raises(ProtocolError):
            receiver.receive_envelope(envelope, "sender")


class TestCodePropagation:
    def test_peer_reserves_downloaded_assemblies(self, world):
        """After downloading code, a peer can serve it onward (needed by
        brokers)."""
        network, sender, receiver = world
        sender.send("receiver", sender.new_instance("demo.a.Person", ["Hop1"]))

        third = InteropPeer("third", network, options=ConformanceOptions.pragmatic())
        third.declare_interest(person_java())
        # receiver (not the original sender) forwards the object onward.
        receiver.send("third", receiver.inbox[0].value)
        assert third.inbox[0].view.getPersonName() == "Hop1"


class TestSoapEncoding:
    def test_protocol_over_soap_payloads(self):
        network = SimulatedNetwork()
        sender = InteropPeer("sender", network, encoding="soap",
                             options=ConformanceOptions.pragmatic())
        receiver = InteropPeer("receiver", network, encoding="soap",
                               options=ConformanceOptions.pragmatic())
        asm_a, _ = person_assembly_pair()
        sender.host_assembly(asm_a)
        receiver.declare_interest(person_java())
        sender.send("receiver", sender.new_instance("demo.a.Person", ["Soapy"]))
        assert receiver.inbox[0].view.getPersonName() == "Soapy"


class TestBatchDelivery:
    """send_batch / send_payload_batch: k values, one network message."""

    def test_batch_is_one_message(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        events = [sender.new_instance("demo.a.Person", ["b%d" % i])
                  for i in range(10)]
        sender.send_batch("receiver", events)
        assert receiver.inbox == []  # queue-driven: nothing ran inline
        network.run_until_idle()
        assert [r.view.getPersonName() for r in receiver.inbox] == \
            ["b%d" % i for i in range(10)]
        assert network.stats.by_kind_messages["object_batch"] == 1
        assert sender.transport_stats.batches_sent == 1
        assert sender.transport_stats.objects_sent == 10
        assert receiver.transport_stats.batches_received == 1
        assert receiver.transport_stats.objects_received == 10

    def test_batch_cheaper_than_k_sends(self, world):
        """The batch costs fewer bytes than the same events sent one by
        one (shared envelope header + shared intern table)."""
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        events = [sender.new_instance("demo.a.Person", ["c%d" % i])
                  for i in range(10)]
        for event in events:
            sender.send("receiver", event)
        single_bytes = network.stats.by_kind_bytes["object"]
        network.reset_accounting()
        sender.send_batch("receiver", events)
        network.run_until_idle()
        batch_bytes = network.stats.by_kind_bytes["object_batch"]
        assert batch_bytes < single_bytes / 2

    def test_batch_fetches_code_once(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.send_batch("receiver", [
            sender.new_instance("demo.a.Person", ["x%d" % i]) for i in range(5)
        ])
        network.run_until_idle()
        assert receiver.transport_stats.assemblies_fetched == 1
        assert all(r.accepted for r in receiver.inbox)

    def test_mixed_batch_rejects_per_value(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.host_assembly(Assembly("bank", [account_csharp()]))
        sender.send_batch("receiver", [
            sender.new_instance("demo.bank.Account", ["o", 1]),
            sender.new_instance("demo.a.Person", ["keep"]),
        ])
        network.run_until_idle()
        assert receiver.transport_stats.objects_rejected == 1
        accepted = [r for r in receiver.inbox if r.accepted]
        assert len(accepted) == 1
        assert accepted[0].view.getPersonName() == "keep"

    def test_payload_batch_reuse_across_destinations(self, world):
        """A broker encodes the batch once and posts the same bytes to
        every destination peer."""
        network, sender, receiver = world
        second = InteropPeer("second", network,
                             options=ConformanceOptions.pragmatic())
        receiver.declare_interest(person_java())
        second.declare_interest(person_java())
        events = [sender.new_instance("demo.a.Person", ["d%d" % i])
                  for i in range(3)]
        payload = sender.codec.encode_batch(events)
        sender.send_payload_batch("receiver", payload, len(events))
        sender.send_payload_batch("second", payload, len(events))
        network.run_until_idle()
        assert len(receiver.inbox) == 3 and len(second.inbox) == 3
        assert sender.transport_stats.objects_sent == 6
        assert sender.transport_stats.batches_sent == 2

    def test_send_async_defers_receive(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.send_async("receiver", sender.new_instance("demo.a.Person", ["a"]))
        assert receiver.inbox == []
        network.run_until_idle()
        assert receiver.inbox[0].view.getPersonName() == "a"


class TestDeprecatedStatsAlias:
    def test_stats_alias_removed_after_deprecation_cycle(self, world):
        """The PR-3 DeprecationWarning shipped for one release; the alias
        is now gone — transport_stats is the only counters surface."""
        network, sender, receiver = world
        assert not hasattr(receiver, "stats")
        assert receiver.transport_stats.objects_received == 0


class TestDeliveryAck:
    """Batches carrying an ack token are acknowledged automatically."""

    def test_ack_token_echoed_to_sender(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        events = [sender.new_instance("demo.a.Person", ["a%d" % i])
                  for i in range(3)]
        payload = sender.codec.encode_batch(events, ack="token-42")
        sender.send_payload_batch("receiver", payload, len(events))

        acks = []
        sender.on("delivery_ack", lambda p, src: acks.append((p, src)) or b"OK")
        network.run_until_idle()
        assert acks == [(b"token-42", "receiver")]
        assert network.stats.by_kind_messages["delivery_ack"] == 1

    def test_no_token_no_ack(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.send_batch("receiver", [
            sender.new_instance("demo.a.Person", ["plain"])])
        network.run_until_idle()
        assert "delivery_ack" not in network.stats.by_kind_messages
