"""Tests for the optimistic transport protocol (Figure 1)."""

import pytest

from repro.core import ConformanceOptions
from repro.cts.assembly import Assembly
from repro.fixtures import (
    account_csharp,
    employee_assembly_pair,
    person_assembly_pair,
    person_java,
)
from repro.net.network import SimulatedNetwork
from repro.transport.protocol import InteropPeer, ProtocolError


@pytest.fixture
def world():
    network = SimulatedNetwork()
    sender = InteropPeer("sender", network, options=ConformanceOptions.pragmatic())
    receiver = InteropPeer("receiver", network, options=ConformanceOptions.pragmatic())
    asm_a, _ = person_assembly_pair()
    sender.host_assembly(asm_a)
    return network, sender, receiver


class TestHappyPath:
    def test_first_object_triggers_description_and_code(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.send("receiver", sender.new_instance("demo.a.Person", ["One"]))
        assert receiver.stats.descriptions_fetched == 1
        assert receiver.stats.assemblies_fetched == 1
        received = receiver.inbox[0]
        assert received.accepted
        assert received.view.getPersonName() == "One"

    def test_repeat_sends_are_free(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        for name in ["A", "B", "C"]:
            sender.send("receiver", sender.new_instance("demo.a.Person", [name]))
        assert receiver.stats.descriptions_fetched == 1
        assert receiver.stats.assemblies_fetched == 1
        assert [r.view.getPersonName() for r in receiver.inbox] == ["A", "B", "C"]

    def test_network_kind_breakdown(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.send("receiver", sender.new_instance("demo.a.Person", ["X"]))
        kinds = network.stats.by_kind_messages
        assert kinds["object"] == 1
        assert kinds["get_description"] == 1
        assert kinds["get_assembly"] == 1

    def test_no_interest_delivers_raw(self, world):
        _, sender, receiver = world
        sender.send("receiver", sender.new_instance("demo.a.Person", ["Raw"]))
        received = receiver.inbox[0]
        assert received.accepted
        assert received.interest is None
        assert received.view.GetName() == "Raw"  # provider surface, no proxy

    def test_known_type_skips_everything(self, world):
        _, sender, receiver = world
        asm_a, _ = person_assembly_pair()
        receiver.host_assembly(asm_a)  # receiver already has the code
        sender.send("receiver", sender.new_instance("demo.a.Person", ["K"]))
        assert receiver.stats.descriptions_fetched == 0
        assert receiver.stats.assemblies_fetched == 0
        assert receiver.inbox[0].view.GetName() == "K"

    def test_on_receive_callback(self, world):
        _, sender, receiver = world
        seen = []
        receiver.on_receive(lambda r: seen.append(r.type_name))
        sender.send("receiver", sender.new_instance("demo.a.Person", ["cb"]))
        assert seen == ["demo.a.Person"]


class TestRejection:
    def test_nonconformant_rejected_without_code_download(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.host_assembly(Assembly("bank", [account_csharp()]))
        sender.send("receiver", sender.new_instance("demo.bank.Account", ["o", 9]))
        received = receiver.inbox[0]
        assert not received.accepted
        assert received.value is None
        assert receiver.stats.objects_rejected == 1
        # The optimistic win: description fetched, code NOT fetched.
        assert receiver.stats.descriptions_fetched == 1
        assert receiver.stats.assemblies_fetched == 0

    def test_rejection_saves_bytes(self, world):
        network, sender, receiver = world
        receiver.declare_interest(person_java())
        sender.host_assembly(Assembly("bank", [account_csharp()]))

        network.reset_accounting()
        sender.send("receiver", sender.new_instance("demo.bank.Account", ["o", 9]))
        rejected_bytes = network.stats.bytes_sent

        network.reset_accounting()
        sender.send("receiver", sender.new_instance("demo.a.Person", ["ok"]))
        accepted_bytes = network.stats.bytes_sent
        assert rejected_bytes < accepted_bytes


class TestMultiTypeGraphs:
    def test_nested_object_downloads_one_assembly(self):
        network = SimulatedNetwork()
        sender = InteropPeer("sender", network, options=ConformanceOptions.pragmatic())
        receiver = InteropPeer("receiver", network, options=ConformanceOptions.pragmatic())
        hr_a, hr_b = employee_assembly_pair()
        sender.host_assembly(hr_a)
        receiver.declare_interest(hr_b.find_type("demo.b.Employee"))

        address = sender.new_instance("demo.a.Address", ["1 Rue", "Geneva"])
        employee = sender.new_instance("demo.a.Employee", ["Zoe", address])
        sender.send("receiver", employee)

        received = receiver.inbox[0]
        assert received.accepted
        # One assembly covers both Employee and Address.
        assert receiver.stats.assemblies_fetched == 1
        assert received.view.getName() == "Zoe"
        assert received.view.getAddress().getCity() == "Geneva"


class TestCodeSourceFallback:
    def test_repository_fallback(self):
        """Sender that cannot serve code; receiver falls back to the
        configured code repository peer."""
        from repro.net.codeserver import CodeRepository

        network = SimulatedNetwork()
        repo = CodeRepository("repo", network)
        asm_a, _ = person_assembly_pair()
        repo.publish(asm_a)

        # Sender loads types into its runtime but does NOT host the assembly.
        sender = InteropPeer("sender", network, options=ConformanceOptions.pragmatic())
        sender.runtime.load_assembly(asm_a)

        receiver = InteropPeer(
            "receiver", network,
            options=ConformanceOptions.pragmatic(),
            code_source="repo",
        )
        receiver.declare_interest(person_java())
        sender.send("receiver", sender.new_instance("demo.a.Person", ["ViaRepo"]))
        assert receiver.inbox[0].view.getPersonName() == "ViaRepo"

    def test_missing_code_everywhere_raises(self):
        network = SimulatedNetwork()
        sender = InteropPeer("sender", network)
        receiver = InteropPeer("receiver", network)
        asm_a, _ = person_assembly_pair()
        sender.runtime.load_assembly(asm_a)  # not hosted, no repo configured
        with pytest.raises(ProtocolError):
            sender.send("receiver", sender.new_instance("demo.a.Person", ["x"]))


class TestCodePropagation:
    def test_peer_reserves_downloaded_assemblies(self, world):
        """After downloading code, a peer can serve it onward (needed by
        brokers)."""
        network, sender, receiver = world
        sender.send("receiver", sender.new_instance("demo.a.Person", ["Hop1"]))

        third = InteropPeer("third", network, options=ConformanceOptions.pragmatic())
        third.declare_interest(person_java())
        # receiver (not the original sender) forwards the object onward.
        receiver.send("third", receiver.inbox[0].value)
        assert third.inbox[0].view.getPersonName() == "Hop1"


class TestSoapEncoding:
    def test_protocol_over_soap_payloads(self):
        network = SimulatedNetwork()
        sender = InteropPeer("sender", network, encoding="soap",
                             options=ConformanceOptions.pragmatic())
        receiver = InteropPeer("receiver", network, encoding="soap",
                               options=ConformanceOptions.pragmatic())
        asm_a, _ = person_assembly_pair()
        sender.host_assembly(asm_a)
        receiver.declare_interest(person_java())
        sender.send("receiver", sender.new_instance("demo.a.Person", ["Soapy"]))
        assert receiver.inbox[0].view.getPersonName() == "Soapy"
