"""Tests for IL instructions, bodies and the emitter."""

import pytest

from repro.il.instructions import BodyBuilder, Instr, MethodBody, Op


class TestInstr:
    def test_equality(self):
        assert Instr(Op.PUSH_CONST, 1) == Instr(Op.PUSH_CONST, 1)
        assert Instr(Op.PUSH_CONST, 1) != Instr(Op.PUSH_CONST, 2)
        assert Instr(Op.POP) != Instr(Op.DUP)

    def test_wire_round_trip_simple(self):
        instr = Instr(Op.PUSH_CONST, "hello")
        assert Instr.from_tuple(instr.to_tuple()) == instr

    def test_wire_round_trip_tuple_arg(self):
        instr = Instr(Op.CALL_METHOD, ("GetName", 0))
        restored = Instr.from_tuple(instr.to_tuple())
        assert restored.arg == ("GetName", 0)
        assert isinstance(restored.arg, tuple)

    def test_wire_form_is_list(self):
        # Tuples are not serializable; the wire form must be plain lists.
        wire = Instr(Op.NEW, ("x.T", 2)).to_tuple()
        assert isinstance(wire, list)
        assert isinstance(wire[1], list)


class TestMethodBody:
    def test_wire_round_trip(self):
        body = MethodBody(
            [Instr(Op.LOAD_ARG, 0), Instr(Op.RETURN)],
            n_locals=2,
            local_names=["a", "b"],
        )
        restored = MethodBody.from_wire(body.to_wire())
        assert restored == body
        assert restored.local_names == ["a", "b"]

    def test_disassemble_mentions_opcodes(self):
        body = MethodBody([Instr(Op.PUSH_CONST, 42), Instr(Op.RETURN)])
        text = body.disassemble()
        assert "push_const" in text
        assert "42" in text
        assert "return" in text

    def test_len(self):
        assert len(MethodBody([Instr(Op.RETURN_VOID)])) == 1


class TestBodyBuilder:
    def test_implicit_return_void(self):
        builder = BodyBuilder()
        builder.emit(Op.PUSH_CONST, 1)
        builder.emit(Op.POP)
        body = builder.build()
        assert body.instructions[-1].op is Op.RETURN_VOID

    def test_no_double_return(self):
        builder = BodyBuilder()
        builder.emit(Op.PUSH_CONST, 1)
        builder.emit(Op.RETURN)
        body = builder.build()
        assert [i.op for i in body.instructions] == [Op.PUSH_CONST, Op.RETURN]

    def test_local_slots_stable(self):
        builder = BodyBuilder()
        assert builder.local_slot("x") == 0
        assert builder.local_slot("y") == 1
        assert builder.local_slot("x") == 0
        assert builder.build().n_locals == 2

    def test_patch_jump(self):
        builder = BodyBuilder()
        pc = builder.emit(Op.JUMP, -1)
        builder.patch(pc, 7)
        assert builder.build().instructions[pc].arg == 7

    def test_patch_non_jump_raises(self):
        builder = BodyBuilder()
        pc = builder.emit(Op.POP)
        with pytest.raises(ValueError):
            builder.patch(pc, 0)
