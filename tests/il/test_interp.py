"""Tests for the IL interpreter."""

import pytest

from repro.il.instructions import Instr, MethodBody, Op
from repro.il.interp import (
    ExecutionEnvironment,
    IlLimitExceeded,
    IlRuntimeError,
    Interpreter,
)


class DictEnvironment(ExecutionEnvironment):
    """Minimal environment: objects are dicts, methods are callables kept
    in a side table."""

    def __init__(self):
        self.methods = {}
        self.created = []

    def get_field(self, receiver, name):
        return receiver[name]

    def set_field(self, receiver, name, value):
        receiver[name] = value

    def call_method(self, receiver, name, args):
        return self.methods[name](receiver, *args)

    def new_instance(self, type_name, args):
        obj = {"__type__": type_name, "__args__": list(args)}
        self.created.append(obj)
        return obj


@pytest.fixture
def env():
    return DictEnvironment()


@pytest.fixture
def interp(env):
    return Interpreter(env)


def run(interp, instrs, self_obj=None, args=(), n_locals=0):
    return interp.execute(MethodBody(instrs, n_locals=n_locals), self_obj, list(args))


class TestBasics:
    def test_return_const(self, interp):
        assert run(interp, [Instr(Op.PUSH_CONST, 42), Instr(Op.RETURN)]) == 42

    def test_return_void(self, interp):
        assert run(interp, [Instr(Op.RETURN_VOID)]) is None

    def test_fall_off_end_returns_none(self, interp):
        assert run(interp, [Instr(Op.PUSH_CONST, 1), Instr(Op.POP)]) is None

    def test_load_arg(self, interp):
        assert run(interp, [Instr(Op.LOAD_ARG, 1), Instr(Op.RETURN)], args=[10, 20]) == 20

    def test_load_arg_out_of_range(self, interp):
        with pytest.raises(IlRuntimeError):
            run(interp, [Instr(Op.LOAD_ARG, 5), Instr(Op.RETURN)], args=[1])

    def test_locals(self, interp):
        instrs = [
            Instr(Op.PUSH_CONST, 7),
            Instr(Op.STORE_LOCAL, 0),
            Instr(Op.LOAD_LOCAL, 0),
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs, n_locals=1) == 7

    def test_load_self(self, interp):
        marker = {"me": True}
        assert run(interp, [Instr(Op.LOAD_SELF), Instr(Op.RETURN)], self_obj=marker) is marker

    def test_dup(self, interp):
        instrs = [
            Instr(Op.PUSH_CONST, 3),
            Instr(Op.DUP),
            Instr(Op.BIN_OP, "+"),
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs) == 6


class TestFieldsAndCalls:
    def test_get_set_field(self, interp):
        obj = {"x": 1}
        instrs = [
            Instr(Op.LOAD_SELF),
            Instr(Op.PUSH_CONST, 5),
            Instr(Op.SET_FIELD, "x"),
            Instr(Op.LOAD_SELF),
            Instr(Op.GET_FIELD, "x"),
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs, self_obj=obj) == 5
        assert obj["x"] == 5

    def test_call_method(self, interp, env):
        env.methods["add"] = lambda receiver, a, b: a + b
        instrs = [
            Instr(Op.LOAD_SELF),
            Instr(Op.PUSH_CONST, 2),
            Instr(Op.PUSH_CONST, 3),
            Instr(Op.CALL_METHOD, ("add", 2)),
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs, self_obj={}) == 5

    def test_new(self, interp, env):
        instrs = [
            Instr(Op.PUSH_CONST, "a"),
            Instr(Op.NEW, ("x.T", 1)),
            Instr(Op.RETURN),
        ]
        obj = run(interp, instrs)
        assert obj["__type__"] == "x.T"
        assert obj["__args__"] == ["a"]


class TestOperators:
    @pytest.mark.parametrize(
        "op,lhs,rhs,expected",
        [
            ("+", 2, 3, 5),
            ("-", 2, 3, -1),
            ("*", 4, 3, 12),
            ("/", 7, 2, 3),       # integer division truncates toward zero
            ("/", -7, 2, -3),     # like C#/Java, not Python floor
            ("/", 7.0, 2, 3.5),
            ("%", 7, 3, 1),
            ("%", -7, 3, -1),     # sign of dividend, like C#/Java
            ("==", 1, 1, True),
            ("!=", 1, 2, True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 2, 3, False),
            ("&&", True, False, False),
            ("||", False, True, True),
            ("&", 1, 2, "12"),    # VB string concatenation
            ("+", "a", 1, "a1"),  # string + stringifies
            ("+", 1, "a", "1a"),
        ],
    )
    def test_binary(self, interp, op, lhs, rhs, expected):
        instrs = [
            Instr(Op.PUSH_CONST, lhs),
            Instr(Op.PUSH_CONST, rhs),
            Instr(Op.BIN_OP, op),
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs) == expected

    def test_string_concat_null(self, interp):
        instrs = [
            Instr(Op.PUSH_CONST, "x="),
            Instr(Op.PUSH_CONST, None),
            Instr(Op.BIN_OP, "+"),
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs) == "x=null"

    def test_string_concat_bool(self, interp):
        instrs = [
            Instr(Op.PUSH_CONST, ""),
            Instr(Op.PUSH_CONST, True),
            Instr(Op.BIN_OP, "+"),
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs) == "true"

    @pytest.mark.parametrize("op,operand,expected", [("-", 5, -5), ("!", True, False)])
    def test_unary(self, interp, op, operand, expected):
        instrs = [
            Instr(Op.PUSH_CONST, operand),
            Instr(Op.UN_OP, op),
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs) == expected

    def test_division_by_zero(self, interp):
        with pytest.raises(IlRuntimeError):
            run(interp, [
                Instr(Op.PUSH_CONST, 1),
                Instr(Op.PUSH_CONST, 0),
                Instr(Op.BIN_OP, "/"),
                Instr(Op.RETURN),
            ])

    def test_modulo_by_zero(self, interp):
        with pytest.raises(IlRuntimeError):
            run(interp, [
                Instr(Op.PUSH_CONST, 1),
                Instr(Op.PUSH_CONST, 0),
                Instr(Op.BIN_OP, "%"),
                Instr(Op.RETURN),
            ])

    def test_unknown_binary_op(self, interp):
        with pytest.raises(IlRuntimeError):
            run(interp, [
                Instr(Op.PUSH_CONST, 1),
                Instr(Op.PUSH_CONST, 1),
                Instr(Op.BIN_OP, "**"),
                Instr(Op.RETURN),
            ])


class TestControlFlow:
    def test_jump_skips(self, interp):
        instrs = [
            Instr(Op.JUMP, 2),
            Instr(Op.PUSH_CONST, "skipped"),
            Instr(Op.PUSH_CONST, "reached"),
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs) == "reached"

    def test_jump_if_false(self, interp):
        instrs = [
            Instr(Op.PUSH_CONST, False),
            Instr(Op.JUMP_IF_FALSE, 4),
            Instr(Op.PUSH_CONST, "then"),
            Instr(Op.RETURN),
            Instr(Op.PUSH_CONST, "else"),
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs) == "else"

    def test_loop_counts(self, interp):
        # i = 0; while i < 10: i = i + 1; return i
        instrs = [
            Instr(Op.PUSH_CONST, 0),
            Instr(Op.STORE_LOCAL, 0),
            Instr(Op.LOAD_LOCAL, 0),      # pc 2: loop head
            Instr(Op.PUSH_CONST, 10),
            Instr(Op.BIN_OP, "<"),
            Instr(Op.JUMP_IF_FALSE, 11),
            Instr(Op.LOAD_LOCAL, 0),
            Instr(Op.PUSH_CONST, 1),
            Instr(Op.BIN_OP, "+"),
            Instr(Op.STORE_LOCAL, 0),
            Instr(Op.JUMP, 2),
            Instr(Op.LOAD_LOCAL, 0),      # pc 11
            Instr(Op.RETURN),
        ]
        assert run(interp, instrs, n_locals=1) == 10

    def test_runaway_loop_limited(self, env):
        interp = Interpreter(env, max_steps=1000)
        instrs = [Instr(Op.JUMP, 0)]
        with pytest.raises(IlLimitExceeded):
            run(interp, instrs)
