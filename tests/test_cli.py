"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import CliError, compile_file, main
from repro.fixtures import PERSON_CSHARP_SOURCE, PERSON_JAVA_SOURCE, PERSON_VB_SOURCE


@pytest.fixture
def sources(tmp_path):
    cs = tmp_path / "person_a.cs"
    cs.write_text(PERSON_CSHARP_SOURCE)
    java = tmp_path / "person_b.java"
    java.write_text(PERSON_JAVA_SOURCE)
    vb = tmp_path / "person_c.vb"
    vb.write_text(PERSON_VB_SOURCE)
    return {"cs": str(cs), "java": str(java), "vb": str(vb)}


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCompileFile:
    def test_each_language(self, sources):
        for path in sources.values():
            types = compile_file(path)
            assert types[0].simple_name == "Person"

    def test_namespace_defaults_to_filename(self, sources):
        types = compile_file(sources["cs"])
        assert types[0].full_name == "person_a.Person"

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "x.py"
        path.write_text("")
        with pytest.raises(CliError):
            compile_file(str(path))


class TestDescribe:
    def test_prints_xml(self, sources):
        code, output = run(["describe", sources["cs"]])
        assert code == 0
        assert "<TypeDescription" in output
        assert 'name="person_a.Person"' in output
        assert "<Method" in output

    def test_missing_file(self):
        code, output = run(["describe", "/no/such/file.cs"])
        assert code == 2
        assert "error:" in output


class TestCheck:
    def test_pragmatic_pass(self, sources):
        code, output = run(["check", sources["cs"], sources["java"]])
        assert code == 0
        assert "conforms to" in output

    def test_strict_fails_renamed(self, sources):
        code, output = run(["check", sources["cs"], sources["java"], "--strict"])
        assert code == 1
        assert "does NOT conform" in output

    def test_strict_passes_identical_names(self, sources):
        code, output = run(["check", sources["vb"], sources["cs"], "--strict"])
        assert code == 0

    def test_behavioral_flag(self, sources):
        code, output = run(["check", sources["cs"], sources["java"], "--behavioral"])
        assert code == 0
        assert "behaviorally" in output

    def test_behavioral_divergence_detected(self, tmp_path, sources):
        rigged = tmp_path / "rigged.cs"
        rigged.write_text(
            """
            class Person {
                private string name;
                public Person(string n) { this.name = n; }
                public string GetName() { return this.name + "!"; }
                public void SetName(string n) { this.name = n; }
            }
            """
        )
        code, output = run(["check", str(rigged), sources["cs"], "--behavioral"])
        assert code == 1
        assert "Divergence" in output


class TestDemo:
    def test_demo_runs(self):
        code, output = run(["demo"])
        assert code == 0
        assert "Grace" in output


class TestLogInspect:
    @pytest.fixture
    def log_dir(self, tmp_path):
        from repro.apps.tps import TpsBroker, TpsPeer
        from repro.fixtures import person_assembly_pair, person_java
        from repro.net.network import SimulatedNetwork

        directory = tmp_path / "broker"
        network = SimulatedNetwork()
        broker = TpsBroker("broker", network, log_dir=str(directory))
        publisher = TpsPeer("pub", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        got = []
        broker.subscribe_durable(person_java(), got.append, cursor="local-c")
        for index in range(3):
            publisher.publish("broker",
                              publisher.new_instance("demo.a.Person",
                                                     ["n%d" % index]))
        broker.close()
        return str(directory)

    def test_inspect_broker_log_dir(self, log_dir):
        code, output = run(["log", "inspect", log_dir])
        assert code == 0
        assert "records       3" in output
        assert "[0, 3)" in output
        assert "local-c" in output
        assert "(0 behind)" in output

    def test_inspect_events_dir_directly(self, log_dir):
        import os
        code, output = run(["log", "inspect", os.path.join(log_dir, "events")])
        assert code == 0
        assert "records       3" in output

    def test_inspect_reports_torn_tail_nonzero_exit(self, log_dir):
        import os
        events = os.path.join(log_dir, "events")
        segment = sorted(name for name in os.listdir(events)
                         if name.endswith(".seg"))[-1]
        path = os.path.join(events, segment)
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 5)
        code, output = run(["log", "inspect", log_dir])
        assert code == 1
        assert "TORN TAIL" in output

    def test_inspect_missing_directory(self):
        code, output = run(["log", "inspect", "/no/such/log"])
        assert code == 2
        assert "error:" in output


class TestLogReplicas:
    @pytest.fixture
    def mesh_log_root(self, tmp_path):
        from repro.apps.tps import BrokerMesh, TpsPeer
        from repro.fixtures import person_assembly_pair, person_java
        from repro.net.network import SimulatedNetwork

        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=3,
                          log_root=str(tmp_path / "logs"),
                          replication_factor=1)
        publisher = TpsPeer("pub", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        for shard_id in mesh.shard_ids:
            publisher.publish_async(
                shard_id, publisher.new_instance("demo.a.Person", ["x"]))
        mesh.run_until_idle()
        got = []
        late = TpsPeer("late", network)
        late.subscribe_durable_remote(mesh.shard_ids[0], person_java(),
                                      got.append, cursor="late-c")
        mesh.run_until_idle()
        mesh.close()
        return str(tmp_path / "logs"), mesh.shard_ids

    def test_replicas_lists_per_origin_logs(self, mesh_log_root):
        import os
        log_root, shard_ids = mesh_log_root
        listed = 0
        for shard_id in shard_ids:
            directory = os.path.join(log_root, shard_id)
            if not os.path.isdir(os.path.join(directory, "replicas")):
                continue
            code, output = run(["log", "replicas", directory])
            assert code == 0
            assert "own records" in output
            assert "origin(s)" in output
            assert "high-water" in output
            listed += 1
        assert listed >= 1  # replication really placed replicas somewhere

    def test_replicas_without_directory(self, mesh_log_root):
        import os
        log_root, shard_ids = mesh_log_root
        # An events-only broker dir (no replicas/) reports none.
        bare = os.path.join(log_root, "bare")
        os.makedirs(os.path.join(bare, "events"))
        code, output = run(["log", "replicas", bare])
        assert code == 0
        assert "none" in output

    def test_inspect_marks_fetch_cursors(self, mesh_log_root):
        import os
        log_root, shard_ids = mesh_log_root
        code, output = run(["log", "inspect",
                            os.path.join(log_root, shard_ids[0])])
        assert code == 0
        assert "late-c" in output
        assert "fetched below" in output  # the per-sibling fetch cursors


class TestTrace:
    """The `repro trace` subcommand stitches span dumps into a timeline."""

    @pytest.fixture
    def span_files(self, tmp_path):
        spans_a = [
            {"trace": "t-1", "stage": "admit", "node": "shard0",
             "src": "publisher", "ts": 1.0, "seq": 1, "attrs": {}},
            {"trace": "t-1", "stage": "append", "node": "shard0",
             "src": None, "ts": 2.0, "seq": 2, "attrs": {"offset": 0}},
            {"trace": "t-2", "stage": "admit", "node": "shard0",
             "src": "publisher", "ts": 5.0, "seq": 3, "attrs": {}},
        ]
        spans_b = [
            {"trace": "t-1", "stage": "admit", "node": "shard1",
             "src": "shard0", "ts": 3.0, "seq": 1,
             "attrs": {"via": "forward"}},
            {"trace": "t-1", "stage": "dispatch", "node": "shard1",
             "src": None, "ts": 4.0, "seq": 2, "attrs": {"deliveries": 2}},
        ]
        a = tmp_path / "a.json"
        a.write_text(__import__("json").dumps({"spans": spans_a}))
        b = tmp_path / "b.json"
        b.write_text(__import__("json").dumps(spans_b))  # bare list form
        return str(a), str(b)

    def test_timeline_across_files(self, span_files):
        code, output = run(["trace", "t-1", *span_files])
        assert code == 0
        assert "t-1" in output and "2 node(s)" in output
        assert "admit" in output and "dispatch" in output
        assert "t-2" not in output

    def test_list_traces(self, span_files):
        code, output = run(["trace", "--list", *span_files])
        assert code == 0
        assert "t-1" in output and "4 span(s)" in output
        assert "t-2" in output and "1 span(s)" in output

    def test_unknown_trace_exits_nonzero(self, span_files):
        code, output = run(["trace", "t-missing", *span_files])
        assert code == 1

    def test_no_id_and_no_list_is_an_error(self):
        code, output = run(["trace"])
        assert code == 2
        assert "trace id is required" in output

    def test_no_sources_is_an_error(self):
        code, output = run(["trace", "t-1"])
        assert code == 2
        assert "no span sources" in output
