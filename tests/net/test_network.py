"""Tests for the simulated network."""

import pytest

from repro.net.network import (
    MessageDropped,
    NetworkError,
    NetworkStats,
    SimulatedNetwork,
    UnknownPeerError,
)


def echo_handler(kind, payload, src):
    return b"echo:" + payload


class TestRegistration:
    def test_register_and_list(self):
        net = SimulatedNetwork()
        net.register("a", echo_handler)
        net.register("b", echo_handler)
        assert net.peers() == ["a", "b"]

    def test_duplicate_id_rejected(self):
        net = SimulatedNetwork()
        net.register("a", echo_handler)
        with pytest.raises(NetworkError):
            net.register("a", echo_handler)

    def test_unregister(self):
        net = SimulatedNetwork()
        net.register("a", echo_handler)
        net.unregister("a")
        assert net.peers() == []


class TestDelivery:
    def test_request_response(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        assert net.request("a", "b", "k", b"hi") == b"echo:hi"

    def test_request_unknown_peer(self):
        net = SimulatedNetwork()
        with pytest.raises(UnknownPeerError):
            net.request("a", "nobody", "k", b"")

    def test_post_one_way(self):
        received = []
        net = SimulatedNetwork()
        net.register("b", lambda kind, payload, src: received.append((kind, payload, src)) or b"")
        net.post("a", "b", "evt", b"data")
        assert received == [("evt", b"data", "a")]

    def test_non_bytes_response_rejected(self):
        net = SimulatedNetwork()
        net.register("b", lambda kind, payload, src: "not-bytes")
        with pytest.raises(NetworkError):
            net.request("a", "b", "k", b"")


class TestAccounting:
    def test_bytes_counted_both_ways(self):
        net = SimulatedNetwork()
        net.register("b", lambda k, p, s: b"yyyy")  # 4-byte reply
        net.request("a", "b", "k", b"xxx")  # 3-byte request
        assert net.stats.bytes_sent == 7
        assert net.stats.messages == 1
        assert net.stats.round_trips == 1

    def test_post_counts_one_way(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        net.post("a", "b", "k", b"12345")
        assert net.stats.bytes_sent == 5
        assert net.stats.round_trips == 0

    def test_per_kind_breakdown(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        net.post("a", "b", "alpha", b"12")
        net.post("a", "b", "alpha", b"34")
        net.post("a", "b", "beta", b"5")
        assert net.stats.by_kind_messages == {"alpha": 2, "beta": 1}
        assert net.stats.by_kind_bytes == {"alpha": 4, "beta": 1}

    def test_clock_advances_with_latency_and_size(self):
        net = SimulatedNetwork(latency_s=0.01, bandwidth_bps=1000.0)
        net.register("b", lambda k, p, s: b"")
        net.request("a", "b", "k", b"x" * 100)
        # 2 hops * 10ms + 100 bytes / 1000 Bps = 0.02 + 0.1
        assert net.clock_s == pytest.approx(0.12)

    def test_message_log(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        net.post("a", "b", "k", b"123")
        assert net.log == [("a", "b", "k", 3)]

    def test_reset_accounting(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        net.post("a", "b", "k", b"123")
        net.reset_accounting()
        assert net.stats.messages == 0
        assert net.log == []
        assert net.clock_s == 0.0

    def test_stats_snapshot(self):
        stats = NetworkStats()
        stats.record("k", 10, True)
        assert stats.snapshot() == {
            "messages": 1,
            "bytes": 10,
            "round_trips": 1,
            "dropped": 0,
            "handler_errors": 0,
            "stalled": 0,
            "by_kind_messages": {"k": 1},
            "by_kind_bytes": {"k": 10},
        }

    def test_snapshot_includes_drop_and_error_counters(self):
        stats = NetworkStats()
        stats.record_drop()
        stats.record_handler_error()
        snap = stats.snapshot()
        assert snap["dropped"] == 1
        assert snap["handler_errors"] == 1
        stats.reset()
        assert stats.snapshot()["dropped"] == 0


class TestHandlerIsolation:
    def test_post_isolates_handler_errors(self):
        """Satellite bugfix: a subscriber handler blowing up must not crash
        the publisher; the failure is counted instead."""
        net = SimulatedNetwork()
        net.register("b", lambda k, p, s: (_ for _ in ()).throw(RuntimeError("boom")))
        net.post("a", "b", "evt", b"x")  # must not raise
        assert net.stats.handler_errors == 1
        assert net.handler_error_log[0][0] == "b"
        assert "boom" in net.handler_error_log[0][2]

    def test_post_still_raises_on_drop(self):
        """Drops stay visible to the sender (retries rely on that); only
        handler failures are isolated."""
        net = SimulatedNetwork(drop_rate=0.99, seed=1)
        net.register("b", echo_handler)
        with pytest.raises(MessageDropped):
            for _ in range(50):
                net.post("a", "b", "k", b"x")
        assert net.stats.dropped >= 1

    def test_request_propagates_handler_errors(self):
        """The synchronous control plane is unchanged: the caller needs
        the failure."""
        net = SimulatedNetwork()

        def explode(kind, payload, src):
            raise RuntimeError("server bug")

        net.register("b", explode)
        with pytest.raises(RuntimeError):
            net.request("a", "b", "k", b"")


class TestAsyncScheduler:
    def test_post_async_defers_delivery(self):
        received = []
        net = SimulatedNetwork()
        net.register("b", lambda k, p, s: received.append((k, p, s)) or b"")
        net.post_async("a", "b", "evt", b"1")
        assert received == []
        assert net.pending() == 1
        assert net.flush() == 1
        assert received == [("evt", b"1", "a")]
        assert net.pending() == 0

    def test_per_link_fifo_order(self):
        received = []
        net = SimulatedNetwork()
        net.register("b", lambda k, p, s: received.append(p) or b"")
        for i in range(5):
            net.post_async("a", "b", "evt", b"%d" % i)
        net.flush()
        assert received == [b"0", b"1", b"2", b"3", b"4"]

    def test_links_drain_round_robin_in_creation_order(self):
        received = []
        net = SimulatedNetwork()
        net.register("x", lambda k, p, s: received.append((s, p)) or b"")
        net.post_async("a", "x", "evt", b"a1")
        net.post_async("b", "x", "evt", b"b1")
        net.post_async("a", "x", "evt", b"a2")
        net.post_async("b", "x", "evt", b"b2")
        net.flush()
        assert received == [("a", b"a1"), ("b", b"b1"), ("a", b"a2"), ("b", b"b2")]

    def test_flush_does_not_chase_new_enqueues(self):
        """Messages enqueued by handlers during a pass wait for the next
        pass — one flush is one deterministic round."""
        net = SimulatedNetwork()

        def relay(kind, payload, src):
            if payload == b"first":
                net.post_async("b", "b", "evt", b"second")
            return b""

        net.register("b", relay)
        net.post_async("a", "b", "evt", b"first")
        assert net.flush() == 1
        assert net.pending() == 1
        assert net.flush() == 1
        assert net.pending() == 0

    def test_run_until_idle_drains_transitively(self):
        seen = []
        net = SimulatedNetwork()

        def relay(kind, payload, src):
            seen.append(payload)
            hops = int(payload)
            if hops:
                net.post_async("b", "b", "evt", b"%d" % (hops - 1))
            return b""

        net.register("b", relay)
        net.post_async("a", "b", "evt", b"3")
        assert net.run_until_idle() == 4
        assert seen == [b"3", b"2", b"1", b"0"]

    def test_async_charges_at_delivery(self):
        net = SimulatedNetwork(latency_s=0.01, bandwidth_bps=1000.0)
        net.register("b", lambda k, p, s: b"")
        net.post_async("a", "b", "k", b"x" * 100)
        assert net.clock_s == 0.0
        assert net.stats.messages == 0
        net.flush()
        assert net.clock_s == pytest.approx(0.11)  # 1 hop + 100/1000
        assert net.stats.messages == 1

    def test_async_unknown_peer_fails_at_enqueue(self):
        net = SimulatedNetwork()
        with pytest.raises(UnknownPeerError):
            net.post_async("a", "nobody", "k", b"")

    def test_async_drop_counted_not_raised(self):
        net = SimulatedNetwork(drop_rate=0.5, seed=7)
        net.register("b", echo_handler)
        for _ in range(50):
            net.post_async("a", "b", "k", b"x")
        net.flush()  # no exception reaches the caller
        assert net.stats.dropped > 0
        assert net.stats.messages + net.stats.dropped == 50

    def test_async_handler_errors_isolated(self):
        net = SimulatedNetwork()
        net.register("b", lambda k, p, s: 1 // 0)
        net.post_async("a", "b", "k", b"x")
        net.flush()
        assert net.stats.handler_errors == 1

    def test_unregister_between_enqueue_and_drain_counts_as_drop(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        net.post_async("a", "b", "k", b"x")
        net.unregister("b")
        net.flush()
        assert net.stats.dropped == 1
        assert net.stats.messages == 0

    def test_exhausted_rounds_raise_and_record_stall(self):
        """A handler that re-enqueues forever must not drain silently:
        run_until_idle raises AND the stall is visible in the stats."""
        net = SimulatedNetwork()

        def relay(kind, payload, src):
            net.post_async("b", "b", "evt", payload)
            return b""

        net.register("b", relay)
        net.post_async("a", "b", "evt", b"x")
        with pytest.raises(NetworkError):
            net.run_until_idle(max_rounds=5)
        assert net.stats.stalled == 1
        assert net.stats.snapshot()["stalled"] == 1
        assert net.pending() > 0  # the queue really was non-empty


class TestLossModel:
    def test_default_reliable(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        for _ in range(100):
            net.post("a", "b", "k", b"x")
        assert net.stats.messages == 100

    def test_lossy_drops_deterministically(self):
        net1 = SimulatedNetwork(drop_rate=0.5, seed=7)
        net2 = SimulatedNetwork(drop_rate=0.5, seed=7)
        for net in (net1, net2):
            net.register("b", echo_handler)
        outcomes1 = []
        outcomes2 = []
        for net, outcomes in ((net1, outcomes1), (net2, outcomes2)):
            for _ in range(50):
                try:
                    net.post("a", "b", "k", b"x")
                    outcomes.append(True)
                except MessageDropped:
                    outcomes.append(False)
        assert outcomes1 == outcomes2
        assert not all(outcomes1)
        assert any(outcomes1)

    def test_invalid_drop_rate(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(drop_rate=1.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(bandwidth_bps=0)
