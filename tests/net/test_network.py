"""Tests for the simulated network."""

import pytest

from repro.net.network import (
    MessageDropped,
    NetworkError,
    NetworkStats,
    SimulatedNetwork,
    UnknownPeerError,
)


def echo_handler(kind, payload, src):
    return b"echo:" + payload


class TestRegistration:
    def test_register_and_list(self):
        net = SimulatedNetwork()
        net.register("a", echo_handler)
        net.register("b", echo_handler)
        assert net.peers() == ["a", "b"]

    def test_duplicate_id_rejected(self):
        net = SimulatedNetwork()
        net.register("a", echo_handler)
        with pytest.raises(NetworkError):
            net.register("a", echo_handler)

    def test_unregister(self):
        net = SimulatedNetwork()
        net.register("a", echo_handler)
        net.unregister("a")
        assert net.peers() == []


class TestDelivery:
    def test_request_response(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        assert net.request("a", "b", "k", b"hi") == b"echo:hi"

    def test_request_unknown_peer(self):
        net = SimulatedNetwork()
        with pytest.raises(UnknownPeerError):
            net.request("a", "nobody", "k", b"")

    def test_post_one_way(self):
        received = []
        net = SimulatedNetwork()
        net.register("b", lambda kind, payload, src: received.append((kind, payload, src)) or b"")
        net.post("a", "b", "evt", b"data")
        assert received == [("evt", b"data", "a")]

    def test_non_bytes_response_rejected(self):
        net = SimulatedNetwork()
        net.register("b", lambda kind, payload, src: "not-bytes")
        with pytest.raises(NetworkError):
            net.request("a", "b", "k", b"")


class TestAccounting:
    def test_bytes_counted_both_ways(self):
        net = SimulatedNetwork()
        net.register("b", lambda k, p, s: b"yyyy")  # 4-byte reply
        net.request("a", "b", "k", b"xxx")  # 3-byte request
        assert net.stats.bytes_sent == 7
        assert net.stats.messages == 1
        assert net.stats.round_trips == 1

    def test_post_counts_one_way(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        net.post("a", "b", "k", b"12345")
        assert net.stats.bytes_sent == 5
        assert net.stats.round_trips == 0

    def test_per_kind_breakdown(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        net.post("a", "b", "alpha", b"12")
        net.post("a", "b", "alpha", b"34")
        net.post("a", "b", "beta", b"5")
        assert net.stats.by_kind_messages == {"alpha": 2, "beta": 1}
        assert net.stats.by_kind_bytes == {"alpha": 4, "beta": 1}

    def test_clock_advances_with_latency_and_size(self):
        net = SimulatedNetwork(latency_s=0.01, bandwidth_bps=1000.0)
        net.register("b", lambda k, p, s: b"")
        net.request("a", "b", "k", b"x" * 100)
        # 2 hops * 10ms + 100 bytes / 1000 Bps = 0.02 + 0.1
        assert net.clock_s == pytest.approx(0.12)

    def test_message_log(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        net.post("a", "b", "k", b"123")
        assert net.log == [("a", "b", "k", 3)]

    def test_reset_accounting(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        net.post("a", "b", "k", b"123")
        net.reset_accounting()
        assert net.stats.messages == 0
        assert net.log == []
        assert net.clock_s == 0.0

    def test_stats_snapshot(self):
        stats = NetworkStats()
        stats.record("k", 10, True)
        assert stats.snapshot() == {"messages": 1, "bytes": 10, "round_trips": 1}


class TestLossModel:
    def test_default_reliable(self):
        net = SimulatedNetwork()
        net.register("b", echo_handler)
        for _ in range(100):
            net.post("a", "b", "k", b"x")
        assert net.stats.messages == 100

    def test_lossy_drops_deterministically(self):
        net1 = SimulatedNetwork(drop_rate=0.5, seed=7)
        net2 = SimulatedNetwork(drop_rate=0.5, seed=7)
        for net in (net1, net2):
            net.register("b", echo_handler)
        outcomes1 = []
        outcomes2 = []
        for net, outcomes in ((net1, outcomes1), (net2, outcomes2)):
            for _ in range(50):
                try:
                    net.post("a", "b", "k", b"x")
                    outcomes.append(True)
                except MessageDropped:
                    outcomes.append(False)
        assert outcomes1 == outcomes2
        assert not all(outcomes1)
        assert any(outcomes1)

    def test_invalid_drop_rate(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(drop_rate=1.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(bandwidth_bps=0)
