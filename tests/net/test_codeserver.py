"""Tests for the code repository peer."""

import pytest

from repro.describe.xml_codec import deserialize_description
from repro.fixtures import person_assembly_pair
from repro.net.codeserver import (
    CodeRepository,
    KIND_GET_ASSEMBLY,
    KIND_GET_DESCRIPTION,
)
from repro.net.network import NetworkError, SimulatedNetwork
from repro.net.peer import Peer


@pytest.fixture
def setup():
    network = SimulatedNetwork()
    repo = CodeRepository("repo", network)
    client = Peer("client", network)
    asm_a, asm_b = person_assembly_pair()
    repo.publish(asm_a)
    return network, repo, client, asm_a


class TestPublish:
    def test_published_types_listed(self, setup):
        _, repo, _, _ = setup
        assert repo.published_types() == ["demo.a.Person"]

    def test_path_for_type(self, setup):
        _, repo, _, asm = setup
        assert repo.path_for_type("demo.a.Person") == asm.download_path
        assert repo.path_for_type("no.Such") is None


class TestServeDescription:
    def test_description_round_trip(self, setup):
        _, _, client, asm = setup
        data = client.request("repo", KIND_GET_DESCRIPTION, b"demo.a.Person")
        description = deserialize_description(data)
        assert description.type_name() == "demo.a.Person"
        assert description.guid() == asm.types[0].guid

    def test_description_has_no_code(self, setup):
        _, _, client, _ = setup
        data = client.request("repo", KIND_GET_DESCRIPTION, b"demo.a.Person")
        skeleton = deserialize_description(data).to_type_info()
        assert skeleton.find_method("GetName").body is None

    def test_unknown_type_error(self, setup):
        _, _, client, _ = setup
        with pytest.raises(NetworkError):
            client.request("repo", KIND_GET_DESCRIPTION, b"no.Such")


class TestServeAssembly:
    def test_assembly_by_path(self, setup):
        _, _, client, asm = setup
        data = client.request("repo", KIND_GET_ASSEMBLY, asm.download_path.encode())
        restored = CodeRepository.decode_assembly(data)
        assert restored.name == asm.name
        assert restored.find_type("demo.a.Person") is not None

    def test_assembly_by_type_name(self, setup):
        _, _, client, asm = setup
        data = client.request("repo", KIND_GET_ASSEMBLY, b"demo.a.Person")
        assert CodeRepository.decode_assembly(data).name == asm.name

    def test_assembly_carries_runnable_code(self, setup):
        from repro.runtime.loader import Runtime

        _, _, client, asm = setup
        data = client.request("repo", KIND_GET_ASSEMBLY, asm.download_path.encode())
        runtime = Runtime()
        runtime.load_assembly(CodeRepository.decode_assembly(data))
        person = runtime.new_instance("demo.a.Person", ["Fetched"])
        assert person.invoke("GetName") == "Fetched"

    def test_unknown_path_error(self, setup):
        _, _, client, _ = setup
        with pytest.raises(NetworkError):
            client.request("repo", KIND_GET_ASSEMBLY, b"repo://nope/0")

    def test_bytes_accounted(self, setup):
        network, _, client, asm = setup
        network.reset_accounting()
        client.request("repo", KIND_GET_ASSEMBLY, asm.download_path.encode())
        assert network.stats.bytes_sent > 500  # code is the heavy payload
