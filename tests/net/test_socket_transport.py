"""Socket transport: round trips, zero-copy dispatch, and the failure
paths the simulator cannot exercise — truncated frames on a real wire,
peers vanishing mid-batch, and send queues hitting backpressure."""

import os
import socket
import tempfile

import pytest

from repro.net.network import NetworkError, UnknownPeerError
from repro.net.socket_transport import (
    _FIELD_MEMO_MAX,
    _SEGMENT_WRITE_MIN,
    SocketHub,
    SocketNetwork,
    _Link,
    _WireFrame,
    _write_varint,
    format_address,
    parse_address,
)


def encode_frame(src, dst, kind, payload, flags=0, req_id=0):
    """A from-scratch encoder mirroring the wire layout, so these tests
    assert the format itself rather than whatever _encode_frame emits."""
    body = bytearray()
    body.append(flags)
    _write_varint(body, req_id)
    for field in (src, dst, kind):
        raw = field.encode("utf-8")
        _write_varint(body, len(raw))
        body += raw
    body += payload
    frame = bytearray()
    _write_varint(frame, len(body))
    frame += body
    return bytes(frame)


def uds_address():
    directory = tempfile.mkdtemp(prefix="repro-sock-")
    return "unix:%s/node.sock" % directory


@pytest.fixture
def hub():
    hub = SocketHub()
    yield hub
    hub.close()


def test_parse_and_format_addresses():
    assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_address("tcp:127.0.0.1:9000") == ("tcp", ("127.0.0.1", 9000))
    assert format_address("unix", "/tmp/x.sock") == "unix:/tmp/x.sock"
    assert format_address("tcp", ("127.0.0.1", 9000)) == "tcp:127.0.0.1:9000"
    with pytest.raises(ValueError):
        parse_address("carrier-pigeon:coop")


def test_uds_request_and_oneway_roundtrip(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    address = uds_address()
    server.listen(address)
    client.add_route("service", address)

    seen = []

    def handler(kind, payload, src):
        seen.append((kind, bytes(payload), src))
        return b"pong:" + bytes(payload)

    server.register("service", handler)
    assert client.request("caller", "service", "echo", b"hi") == b"pong:hi"

    for index in range(5):
        client.post_async("caller", "service", "tick", b"%d" % index)
    hub.run_until_idle()
    oneways = [entry for entry in seen if entry[0] == "tick"]
    # FIFO survives the socket: one-way frames arrive in publish order.
    assert [payload for _, payload, _ in oneways] == \
        [b"0", b"1", b"2", b"3", b"4"]
    assert all(src == "caller" for _, _, src in oneways)
    assert hub.idle()


def test_tcp_port_zero_resolves_and_serves(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    bound = server.listen("tcp:127.0.0.1:0")
    scheme, (host, port) = parse_address(bound)
    assert scheme == "tcp" and port != 0
    server.register("service", lambda kind, payload, src: b"over-tcp")
    client.add_route("service", bound)
    assert client.request("caller", "service", "ping", b"") == b"over-tcp"


def test_peer_learning_via_announce(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    address = uds_address()
    server.listen(address)
    server.register("early", lambda kind, payload, src: b"OK")
    client.add_route("early", address)
    assert client.request("caller", "early", "ping", b"") == b"OK"
    # A peer registered AFTER the link exists is announced over it: the
    # client can now reach it with no route of its own.
    server.register("late", lambda kind, payload, src: b"LATE")
    hub.run_until_idle()
    assert client.request("caller", "late", "ping", b"") == b"LATE"


def test_unknown_peer_raises_immediately(hub):
    client = hub.network("client-node")
    with pytest.raises(UnknownPeerError):
        client.post_async("caller", "nowhere", "tick", b"")


def test_zero_copy_kinds_arrive_as_memoryview(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    address = uds_address()
    server.listen(address)
    types_seen = {}

    def handler(kind, payload, src):
        types_seen[kind] = type(payload)
        return b"OK"

    server.register("service", handler)
    client.add_route("service", address)
    client.post_async("caller", "service", "object", b"zero-copy")
    client.post_async("caller", "service", "tps_subscribe", b"copied")
    hub.run_until_idle()
    # Hot kinds are views into the link's pooled receive buffer; cold
    # kinds get a private bytes copy their handlers may retain.
    assert types_seen["object"] is memoryview
    assert types_seen["tps_subscribe"] is bytes


def test_truncated_frame_on_the_wire_is_counted():
    server = SocketNetwork("server-node")
    try:
        address = uds_address()
        server.listen(address)
        received = []
        server.register("service",
                        lambda kind, payload, src:
                        received.append(bytes(payload)) or b"OK")
        path = parse_address(address)[1]
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(path)
        raw.sendall(encode_frame("caller", "service", "object", b"whole"))
        for _ in range(50):
            server.poll(0.01)
            if received:
                break
        # Half a frame, then the peer vanishes mid-transmission.
        raw.sendall(encode_frame("caller", "service", "object",
                                 b"never finished")[:-5])
        raw.close()
        for _ in range(50):
            server.poll(0.01)
            if server.framing_errors:
                break
        assert received == [b"whole"]
        assert server.framing_errors == 1
        assert server.frames_received == 1
    finally:
        server.close()


def test_malformed_frame_aborts_only_that_link(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    address = uds_address()
    server.listen(address)
    server.register("service", lambda kind, payload, src: b"OK")
    client.add_route("service", address)

    path = parse_address(address)[1]
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.connect(path)
    raw.sendall(b"\xff" * 16)  # unbounded varint: not a frame
    for _ in range(50):
        hub.poll(0.01)
        if server.framing_errors:
            break
    raw.close()
    assert server.framing_errors == 1
    # The poisoned link died alone — a healthy peer is unaffected.
    assert client.request("caller", "service", "ping", b"") == b"OK"


def test_backpressure_blocks_the_publisher_never_drops():
    directory = tempfile.mkdtemp(prefix="repro-sock-")
    path = os.path.join(directory, "sink.sock")
    sink = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sink.bind(path)
    sink.listen(1)
    client = SocketNetwork("client-node", max_queue_bytes=64 * 1024,
                           backpressure_timeout=0.3)
    try:
        client.add_route("sink", "unix:" + path)
        payload = b"x" * 32 * 1024
        # The sink accepts but never reads: the kernel buffer fills, the
        # asyncio transport pauses, frames pile into the link's queue —
        # and the publisher BLOCKS at the cap instead of buffering on.
        accepted = None
        with pytest.raises(NetworkError, match="full"):
            for _ in range(1000):
                client.post_async("caller", "sink", "object", payload)
                if accepted is None:
                    client.poll(0.01)
                    sink.setblocking(False)
                    try:
                        accepted = sink.accept()[0]
                    except BlockingIOError:
                        accepted = None
        assert client.blocked_sends >= 1
        # Nothing was silently discarded: every frame sent is still
        # queued on the link or already handed to the kernel.
        assert client.frames_lost == 0
    finally:
        client.close()
        if accepted is not None:
            accepted.close()
        sink.close()


def test_peer_disconnect_mid_batch_fails_pending_request():
    directory = tempfile.mkdtemp(prefix="repro-sock-")
    path = os.path.join(directory, "flaky.sock")
    flaky = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    flaky.bind(path)
    flaky.listen(1)
    client = SocketNetwork("client-node", request_timeout=5.0)
    try:
        client.add_route("flaky", "unix:" + path)
        client.connect("unix:" + path)
        client.poll(0.01)
        accepted = flaky.accept()[0]
        accepted.close()  # the peer dies with the request in flight
        with pytest.raises(NetworkError, match="lost"):
            client.request("caller", "flaky", "fetch", b"")
    finally:
        client.close()
        flaky.close()


def test_dead_link_counts_queued_frames_as_lost():
    directory = tempfile.mkdtemp(prefix="repro-sock-")
    path = os.path.join(directory, "gone.sock")
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(1)
    client = SocketNetwork("client-node")
    try:
        client.add_route("gone", "unix:" + path)
        client.connect("unix:" + path)
        client.poll(0.01)
        accepted = listener.accept()[0]
        # Stay under max_queue_bytes so no send blocks; the peer never
        # reads, so most frames are still queued when it dies.
        payload = b"y" * 128 * 1024
        for _ in range(24):
            client.post_async("caller", "gone", "object", payload)
        accepted.close()
        for _ in range(100):
            client.poll(0.01)
            if client.frames_lost:
                break
        # Whatever had not reached the kernel when the peer died is
        # accounted, loudly, in both counter surfaces.
        assert client.frames_lost > 0
        assert client.stats.dropped >= client.frames_lost
        snapshot = client.transport_snapshot()
        assert snapshot["frames_lost"] == client.frames_lost
    finally:
        client.close()
        listener.close()


def wire_bytes(frame):
    """Flatten a queued frame to the bytes the kernel would see."""
    if type(frame) is _WireFrame:
        return b"".join(frame.segments)
    return bytes(frame)


class _ReentrantTransport:
    """A fake transport where every write crosses the high-water mark:
    it fires ``pause_writing`` and then (kernel drained) ``resume_writing``
    *synchronously*, re-entering ``_drain`` from inside ``_drain``."""

    def __init__(self, link):
        self.link = link
        self.writes = []

    def write(self, data):
        self.writes.append(bytes(data))
        self.link.pause_writing()
        self.link.resume_writing()

    def writelines(self, segments):
        self.writes.append(b"".join(segments))
        self.link.pause_writing()
        self.link.resume_writing()


def test_drain_reentry_from_resume_writing_writes_each_frame_once():
    """Regression: resume_writing used to re-enter _drain while the outer
    loop still owned the queue.  With the guard, a deep queue under
    synchronous pause/resume per write drains exactly once, in FIFO
    order, at recursion depth one (no RecursionError)."""
    network = SocketNetwork("drain-node")
    try:
        link = _Link(network, None)
        link.transport = _ReentrantTransport(link)
        link.connected = True
        frames = [network._encode_frame(0, 0, "src", "dst", "object",
                                        b"%04d" % index)
                  for index in range(2000)]
        for frame in frames:
            link.tx.append(frame)
            link.tx_bytes += len(frame)
        link._drain()
        assert link.transport.writes == [wire_bytes(frame)
                                         for frame in frames]
        assert not link.tx
        assert link.tx_bytes == 0
        assert not link.paused
    finally:
        network.close()


def test_send_frame_under_reentrant_transport_is_exactly_once():
    network = SocketNetwork("drain-node")
    try:
        link = _Link(network, None)
        link.transport = _ReentrantTransport(link)
        link.connected = True
        for index in range(10):
            link.send_frame(network._encode_frame(
                0, 0, "src", "dst", "object", b"n%d" % index))
        assert len(link.transport.writes) == 10
        assert link.tx_bytes == 0
    finally:
        network.close()


def test_scatter_frame_matches_flat_encoding_and_counts_copies():
    fast = SocketNetwork("fast-node")
    flat = SocketNetwork("flat-node", scatter_send=False)
    try:
        payload = b"p" * 513
        wire = fast._encode_frame(2, 77, "a-node", "b-node", "object",
                                  payload)
        baseline = flat._encode_frame(2, 77, "a-node", "b-node", "object",
                                      payload)
        reference = encode_frame("a-node", "b-node", "object", payload,
                                 flags=2, req_id=77)
        # Same bytes on the wire, whichever path built them.
        assert wire_bytes(wire) == baseline == reference
        assert len(wire) == len(baseline)
        # The payload segment is the caller's object, by reference.
        assert wire.segments[1] is payload
        assert fast.bytes_copied == 0
        # A non-bytes payload must be snapshotted (queued frames outlive
        # receive buffers) — and the copy is accounted.
        fast._encode_frame(0, 0, "a-node", "b-node", "object",
                           memoryview(payload)[:100])
        assert fast.bytes_copied == 100
        assert flat.bytes_copied == 0
    finally:
        fast.close()
        flat.close()


class _RecordingTransport:
    """Records each flush call with its flattened bytes, so tests can
    assert both *how* a frame went down (write vs writelines) and that
    the wire bytes are exact either way."""

    def __init__(self):
        self.calls = []

    def write(self, data):
        self.calls.append(("write", bytes(data)))

    def writelines(self, segments):
        self.calls.append(
            ("writelines", b"".join(bytes(s) for s in segments)))


def test_large_frames_write_segments_individually_on_joining_transports():
    """When the transport's writelines is the joining base implementation,
    a large scatter frame is flushed as per-segment writes (skipping the
    payload-sized join); small frames and native-writelines transports
    keep the single segmented call.  Wire bytes are identical on every
    path."""
    network = SocketNetwork("segment-node")
    try:
        link = _Link(network, None)
        transport = _RecordingTransport()
        link.transport = transport
        link.connected = True
        assert link._joining_writelines  # conservative default

        big = network._encode_frame(0, 0, "src", "dst", "object",
                                    b"x" * _SEGMENT_WRITE_MIN)
        small = network._encode_frame(0, 0, "src", "dst", "object",
                                      b"y" * (_SEGMENT_WRITE_MIN - 1))
        link.send_frame(big)
        link.send_frame(small)
        assert [name for name, _ in transport.calls] == \
            ["write", "write", "writelines"]
        assert b"".join(data for _, data in transport.calls[:2]) == \
            wire_bytes(big)
        assert transport.calls[2][1] == wire_bytes(small)

        # A native scatter-gather writelines (sendmsg-based) always gets
        # the single segmented call, payload size notwithstanding.
        link._joining_writelines = False
        transport.calls.clear()
        link.send_frame(big)
        assert [name for name, _ in transport.calls] == ["writelines"]
        assert transport.calls[0][1] == wire_bytes(big)
    finally:
        network.close()


def test_connection_made_detects_joining_writelines():
    """The flag comes from the transport class: asyncio's base
    ``writelines`` joins the segments (one payload-sized copy), so only
    transports that override it get unconditional ``writelines``."""
    import asyncio

    class _FakeBase(asyncio.Transport):
        def __init__(self):
            super().__init__()
            self.writes = []

        def write(self, data):
            self.writes.append(bytes(data))

        def set_write_buffer_limits(self, high=None, low=None):
            pass

        def get_extra_info(self, name, default=None):
            return default

        def close(self):
            pass

    class _FakeNative(_FakeBase):
        def writelines(self, list_of_data):
            for data in list_of_data:
                self.write(data)

    network = SocketNetwork("detect-node")
    try:
        joining = _Link(network, None)
        joining.connection_made(_FakeBase())
        assert joining._joining_writelines

        native = _Link(network, None)
        native.connection_made(_FakeNative())
        assert not native._joining_writelines
    finally:
        network.close()


def test_field_memo_is_bounded_and_correct_under_peer_churn():
    """The src/dst/kind encode memo caps at _FIELD_MEMO_MAX entries and
    survives eviction: churning through more distinct peers than the cap
    never grows the memo past the bound, and frames for evicted (and
    re-admitted) fields still encode byte-identically."""
    network = SocketNetwork("memo-node")
    try:
        for index in range(_FIELD_MEMO_MAX + 300):
            dst = "peer-%d" % index
            frame = network._encode_frame(0, 0, "caller", dst, "object",
                                          b"x")
            assert wire_bytes(frame) == \
                encode_frame("caller", dst, "object", b"x")
            assert len(network._field_memo) <= _FIELD_MEMO_MAX
        # "caller" was evicted along the way; re-encoding re-admits it
        # and the frame is still exact.
        frame = network._encode_frame(0, 0, "caller", "peer-0", "object",
                                      b"y")
        assert wire_bytes(frame) == \
            encode_frame("caller", "peer-0", "object", b"y")
        assert len(network._field_memo) <= _FIELD_MEMO_MAX
    finally:
        network.close()


def test_transport_snapshot_shape(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    address = uds_address()
    server.listen(address)
    server.register("service", lambda kind, payload, src: b"OK")
    client.add_route("service", address)
    client.request("caller", "service", "ping", b"data")
    hub.run_until_idle()
    snapshot = client.transport_snapshot()
    for key in ("node", "frames_sent", "frames_received", "frames_lost",
                "bytes_received", "framing_errors", "blocked_sends",
                "queue_high_water", "links", "recv_pool",
                "by_kind_messages", "by_kind_bytes"):
        assert key in snapshot, key
    assert snapshot["node"] == "client-node"
    assert snapshot["by_kind_messages"].get("ping") == 1
    assert "buffer_pool_hits" in snapshot["recv_pool"]
