"""Socket transport: round trips, zero-copy dispatch, and the failure
paths the simulator cannot exercise — truncated frames on a real wire,
peers vanishing mid-batch, and send queues hitting backpressure."""

import os
import socket
import tempfile

import pytest

from repro.net.network import NetworkError, UnknownPeerError
from repro.net.socket_transport import (
    SocketHub,
    SocketNetwork,
    _write_varint,
    format_address,
    parse_address,
)


def encode_frame(src, dst, kind, payload, flags=0, req_id=0):
    """A from-scratch encoder mirroring the wire layout, so these tests
    assert the format itself rather than whatever _encode_frame emits."""
    body = bytearray()
    body.append(flags)
    _write_varint(body, req_id)
    for field in (src, dst, kind):
        raw = field.encode("utf-8")
        _write_varint(body, len(raw))
        body += raw
    body += payload
    frame = bytearray()
    _write_varint(frame, len(body))
    frame += body
    return bytes(frame)


def uds_address():
    directory = tempfile.mkdtemp(prefix="repro-sock-")
    return "unix:%s/node.sock" % directory


@pytest.fixture
def hub():
    hub = SocketHub()
    yield hub
    hub.close()


def test_parse_and_format_addresses():
    assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_address("tcp:127.0.0.1:9000") == ("tcp", ("127.0.0.1", 9000))
    assert format_address("unix", "/tmp/x.sock") == "unix:/tmp/x.sock"
    assert format_address("tcp", ("127.0.0.1", 9000)) == "tcp:127.0.0.1:9000"
    with pytest.raises(ValueError):
        parse_address("carrier-pigeon:coop")


def test_uds_request_and_oneway_roundtrip(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    address = uds_address()
    server.listen(address)
    client.add_route("service", address)

    seen = []

    def handler(kind, payload, src):
        seen.append((kind, bytes(payload), src))
        return b"pong:" + bytes(payload)

    server.register("service", handler)
    assert client.request("caller", "service", "echo", b"hi") == b"pong:hi"

    for index in range(5):
        client.post_async("caller", "service", "tick", b"%d" % index)
    hub.run_until_idle()
    oneways = [entry for entry in seen if entry[0] == "tick"]
    # FIFO survives the socket: one-way frames arrive in publish order.
    assert [payload for _, payload, _ in oneways] == \
        [b"0", b"1", b"2", b"3", b"4"]
    assert all(src == "caller" for _, _, src in oneways)
    assert hub.idle()


def test_tcp_port_zero_resolves_and_serves(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    bound = server.listen("tcp:127.0.0.1:0")
    scheme, (host, port) = parse_address(bound)
    assert scheme == "tcp" and port != 0
    server.register("service", lambda kind, payload, src: b"over-tcp")
    client.add_route("service", bound)
    assert client.request("caller", "service", "ping", b"") == b"over-tcp"


def test_peer_learning_via_announce(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    address = uds_address()
    server.listen(address)
    server.register("early", lambda kind, payload, src: b"OK")
    client.add_route("early", address)
    assert client.request("caller", "early", "ping", b"") == b"OK"
    # A peer registered AFTER the link exists is announced over it: the
    # client can now reach it with no route of its own.
    server.register("late", lambda kind, payload, src: b"LATE")
    hub.run_until_idle()
    assert client.request("caller", "late", "ping", b"") == b"LATE"


def test_unknown_peer_raises_immediately(hub):
    client = hub.network("client-node")
    with pytest.raises(UnknownPeerError):
        client.post_async("caller", "nowhere", "tick", b"")


def test_zero_copy_kinds_arrive_as_memoryview(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    address = uds_address()
    server.listen(address)
    types_seen = {}

    def handler(kind, payload, src):
        types_seen[kind] = type(payload)
        return b"OK"

    server.register("service", handler)
    client.add_route("service", address)
    client.post_async("caller", "service", "object", b"zero-copy")
    client.post_async("caller", "service", "tps_subscribe", b"copied")
    hub.run_until_idle()
    # Hot kinds are views into the link's pooled receive buffer; cold
    # kinds get a private bytes copy their handlers may retain.
    assert types_seen["object"] is memoryview
    assert types_seen["tps_subscribe"] is bytes


def test_truncated_frame_on_the_wire_is_counted():
    server = SocketNetwork("server-node")
    try:
        address = uds_address()
        server.listen(address)
        received = []
        server.register("service",
                        lambda kind, payload, src:
                        received.append(bytes(payload)) or b"OK")
        path = parse_address(address)[1]
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(path)
        raw.sendall(encode_frame("caller", "service", "object", b"whole"))
        for _ in range(50):
            server.poll(0.01)
            if received:
                break
        # Half a frame, then the peer vanishes mid-transmission.
        raw.sendall(encode_frame("caller", "service", "object",
                                 b"never finished")[:-5])
        raw.close()
        for _ in range(50):
            server.poll(0.01)
            if server.framing_errors:
                break
        assert received == [b"whole"]
        assert server.framing_errors == 1
        assert server.frames_received == 1
    finally:
        server.close()


def test_malformed_frame_aborts_only_that_link(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    address = uds_address()
    server.listen(address)
    server.register("service", lambda kind, payload, src: b"OK")
    client.add_route("service", address)

    path = parse_address(address)[1]
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.connect(path)
    raw.sendall(b"\xff" * 16)  # unbounded varint: not a frame
    for _ in range(50):
        hub.poll(0.01)
        if server.framing_errors:
            break
    raw.close()
    assert server.framing_errors == 1
    # The poisoned link died alone — a healthy peer is unaffected.
    assert client.request("caller", "service", "ping", b"") == b"OK"


def test_backpressure_blocks_the_publisher_never_drops():
    directory = tempfile.mkdtemp(prefix="repro-sock-")
    path = os.path.join(directory, "sink.sock")
    sink = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sink.bind(path)
    sink.listen(1)
    client = SocketNetwork("client-node", max_queue_bytes=64 * 1024,
                           backpressure_timeout=0.3)
    try:
        client.add_route("sink", "unix:" + path)
        payload = b"x" * 32 * 1024
        # The sink accepts but never reads: the kernel buffer fills, the
        # asyncio transport pauses, frames pile into the link's queue —
        # and the publisher BLOCKS at the cap instead of buffering on.
        accepted = None
        with pytest.raises(NetworkError, match="full"):
            for _ in range(1000):
                client.post_async("caller", "sink", "object", payload)
                if accepted is None:
                    client.poll(0.01)
                    sink.setblocking(False)
                    try:
                        accepted = sink.accept()[0]
                    except BlockingIOError:
                        accepted = None
        assert client.blocked_sends >= 1
        # Nothing was silently discarded: every frame sent is still
        # queued on the link or already handed to the kernel.
        assert client.frames_lost == 0
    finally:
        client.close()
        if accepted is not None:
            accepted.close()
        sink.close()


def test_peer_disconnect_mid_batch_fails_pending_request():
    directory = tempfile.mkdtemp(prefix="repro-sock-")
    path = os.path.join(directory, "flaky.sock")
    flaky = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    flaky.bind(path)
    flaky.listen(1)
    client = SocketNetwork("client-node", request_timeout=5.0)
    try:
        client.add_route("flaky", "unix:" + path)
        client.connect("unix:" + path)
        client.poll(0.01)
        accepted = flaky.accept()[0]
        accepted.close()  # the peer dies with the request in flight
        with pytest.raises(NetworkError, match="lost"):
            client.request("caller", "flaky", "fetch", b"")
    finally:
        client.close()
        flaky.close()


def test_dead_link_counts_queued_frames_as_lost():
    directory = tempfile.mkdtemp(prefix="repro-sock-")
    path = os.path.join(directory, "gone.sock")
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(1)
    client = SocketNetwork("client-node")
    try:
        client.add_route("gone", "unix:" + path)
        client.connect("unix:" + path)
        client.poll(0.01)
        accepted = listener.accept()[0]
        # Stay under max_queue_bytes so no send blocks; the peer never
        # reads, so most frames are still queued when it dies.
        payload = b"y" * 128 * 1024
        for _ in range(24):
            client.post_async("caller", "gone", "object", payload)
        accepted.close()
        for _ in range(100):
            client.poll(0.01)
            if client.frames_lost:
                break
        # Whatever had not reached the kernel when the peer died is
        # accounted, loudly, in both counter surfaces.
        assert client.frames_lost > 0
        assert client.stats.dropped >= client.frames_lost
        snapshot = client.transport_snapshot()
        assert snapshot["frames_lost"] == client.frames_lost
    finally:
        client.close()
        listener.close()


def test_transport_snapshot_shape(hub):
    server = hub.network("server-node")
    client = hub.network("client-node")
    address = uds_address()
    server.listen(address)
    server.register("service", lambda kind, payload, src: b"OK")
    client.add_route("service", address)
    client.request("caller", "service", "ping", b"data")
    hub.run_until_idle()
    snapshot = client.transport_snapshot()
    for key in ("node", "frames_sent", "frames_received", "frames_lost",
                "bytes_received", "framing_errors", "blocked_sends",
                "queue_high_water", "links", "recv_pool",
                "by_kind_messages", "by_kind_bytes"):
        assert key in snapshot, key
    assert snapshot["node"] == "client-node"
    assert snapshot["by_kind_messages"].get("ping") == 1
    assert "buffer_pool_hits" in snapshot["recv_pool"]
