"""Tests for peers and request dispatch."""

import pytest

from repro.net.network import NetworkError, SimulatedNetwork
from repro.net.peer import Peer, error_response


@pytest.fixture
def network():
    return SimulatedNetwork()


class TestDispatch:
    def test_kind_routing(self, network):
        server = Peer("server", network)
        client = Peer("client", network)
        server.on("upper", lambda payload, src: payload.upper())
        server.on("lower", lambda payload, src: payload.lower())
        assert client.request("server", "upper", b"MiXeD") == b"MIXED"
        assert client.request("server", "lower", b"MiXeD") == b"mixed"

    def test_unknown_kind_is_error(self, network):
        Peer("server", network)
        client = Peer("client", network)
        with pytest.raises(NetworkError):
            client.request("server", "nope", b"")

    def test_handler_sees_source(self, network):
        server = Peer("server", network)
        client = Peer("client", network)
        server.on("who", lambda payload, src: src.encode())
        assert client.request("server", "who") == b"client"

    def test_error_response_helper(self, network):
        server = Peer("server", network)
        client = Peer("client", network)
        server.on("fail", lambda payload, src: error_response("boom"))
        with pytest.raises(NetworkError, match="boom"):
            client.request("server", "fail")

    def test_post_does_not_raise_on_error_response(self, network):
        server = Peer("server", network)
        client = Peer("client", network)
        server.on("fail", lambda payload, src: error_response("boom"))
        client.post("server", "fail")  # fire-and-forget swallows the error

    def test_close_unregisters(self, network):
        server = Peer("server", network)
        client = Peer("client", network)
        server.close()
        with pytest.raises(NetworkError):
            client.request("server", "x", b"")
