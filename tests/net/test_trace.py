"""Tests for the protocol tracer."""

import pytest

from repro.core import ConformanceOptions
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.net.trace import chart_for, kind_summary, sequence_chart
from repro.transport.protocol import InteropPeer


class TestSequenceChart:
    def test_empty_log(self):
        assert sequence_chart([]) == "(no traffic)"

    def test_arrow_direction(self):
        log = [("a", "b", "ping", 10), ("b", "a", "pong", 20)]
        chart = sequence_chart(log)
        lines = chart.splitlines()
        assert lines[0].startswith("a")
        assert "b" in lines[0]
        assert ">" in lines[1]   # a -> b rightward
        assert "<" in lines[2]   # b -> a leftward

    def test_sizes_shown(self):
        chart = sequence_chart([("a", "b", "msg", 1234)])
        assert "1234 B" in chart

    def test_long_kind_truncated(self):
        chart = sequence_chart([("a", "b", "a-very-long-message-kind", 1)])
        assert ".." in chart

    def test_explicit_peer_order(self):
        log = [("x", "y", "m", 1)]
        chart = sequence_chart(log, peers=["y", "x"])
        assert chart.splitlines()[0].startswith("y")

    def test_unknown_peers_skipped(self):
        chart = sequence_chart([("a", "b", "m", 1)], peers=["a"])
        assert chart.splitlines() == ["a"]


class TestProtocolTrace:
    def test_figure_one_sequence(self):
        """The trace of a first-object exchange reads exactly like the
        paper's Figure 1."""
        network = SimulatedNetwork()
        alice = InteropPeer("alice", network, options=ConformanceOptions.pragmatic())
        bob = InteropPeer("bob", network, options=ConformanceOptions.pragmatic())
        asm_a, _ = person_assembly_pair()
        alice.host_assembly(asm_a)
        bob.declare_interest(person_java())
        alice.send("bob", alice.new_instance("demo.a.Person", ["Trace"]))

        kinds = [kind for (_, __, kind, ___) in network.log]
        assert kinds == ["object", "get_description", "get_assembly"]

        chart = chart_for(network)
        assert "object" in chart
        assert "get_description" in chart
        assert "get_assembly" in chart

    def test_kind_summary(self):
        log = [("a", "b", "x", 10), ("a", "b", "x", 5), ("b", "a", "y", 3)]
        summary = kind_summary(log)
        assert summary == {"x": (2, 15), "y": (1, 3)}
