"""Tests for the TPS routing index: grouping, verdict caching and
invalidation."""

import pytest

from repro.apps.tps import LocalBroker, RoutingIndex, Subscription, TpsBroker, TpsPeer
from repro.core import ConformanceChecker, ConformanceOptions
from repro.cts.registry import TypeRegistry
from repro.fixtures import (
    account_csharp,
    person_assembly_pair,
    person_csharp,
    person_java,
    person_vb,
)
from repro.net.network import SimulatedNetwork
from repro.runtime.loader import Runtime


@pytest.fixture
def runtime():
    rt = Runtime()
    asm_a, _ = person_assembly_pair()
    rt.load_assembly(asm_a)
    return rt


@pytest.fixture
def checker():
    return ConformanceChecker(options=ConformanceOptions.pragmatic())


def make_index(checker, registry=None):
    return RoutingIndex(checker, registry)


class TestGrouping:
    def test_same_identity_shares_a_group(self, checker):
        index = make_index(checker)
        # person_java() builds a fresh TypeInfo per call, same identity.
        index.add(Subscription(person_java(), None, 1))
        index.add(Subscription(person_java(), None, 2))
        index.add(Subscription(person_vb(), None, 3))
        assert len(index) == 3
        assert index.group_count == 2

    def test_one_conformance_decision_per_group(self, runtime, checker):
        index = make_index(checker)
        for i in range(10):
            index.add(Subscription(person_java(), None, i + 1))
        event_type = runtime.registry.require("demo.a.Person")
        routed = list(index.route(event_type))
        assert len(routed) == 1
        entry, subs = routed[0]
        assert len(subs) == 10
        assert index.stats.misses == 1  # ten subscribers, one decision

    def test_negative_verdicts_cached(self, runtime, checker):
        index = make_index(checker)
        index.add(Subscription(person_java(), None, 1))
        account_type = account_csharp()
        assert list(index.route(account_type)) == []
        assert list(index.route(account_type)) == []
        assert index.stats.misses == 1
        assert index.stats.hits == 1

    def test_fast_paths_skip_rule_engine(self, runtime, checker):
        index = make_index(checker)
        provider = runtime.registry.require("demo.a.Person")
        index.add(Subscription(provider, None, 1))  # same identity
        # Same structure, different assembly => new identity, equal fingerprint.
        clone = person_csharp(assembly_name="person-clone")
        index.add(Subscription(clone, None, 2))
        index.add(Subscription(person_java(), None, 3))  # needs the rules
        list(index.route(provider))
        assert index.stats.fast_equal == 1
        assert index.stats.fast_equivalent == 1
        assert index.stats.full_checks == 1


class TestRemoval:
    def test_remove_by_id(self, checker):
        index = make_index(checker)
        index.add(Subscription(person_java(), None, 1))
        assert index.remove(1) is True
        assert index.remove(1) is False
        assert len(index) == 0
        assert index.group_count == 0

    def test_remove_checks_peer_ownership(self, checker):
        index = make_index(checker)
        index.add(Subscription(person_java(), None, 1, peer_id="alice"))
        assert index.remove(1, peer_id="mallory") is False
        assert len(index) == 1
        assert index.remove(1, peer_id="alice") is True

    def test_group_survives_partial_removal(self, runtime, checker):
        index = make_index(checker)
        index.add(Subscription(person_java(), None, 1))
        index.add(Subscription(person_java(), None, 2))
        index.remove(1)
        event_type = runtime.registry.require("demo.a.Person")
        (entry, subs), = index.route(event_type)
        assert [s.subscription_id for s in subs] == [2]


class TestInvalidation:
    def test_explicit_invalidate_forces_recheck(self, runtime, checker):
        index = make_index(checker)
        index.add(Subscription(person_java(), None, 1))
        event_type = runtime.registry.require("demo.a.Person")
        list(index.route(event_type))
        index.invalidate()
        list(index.route(event_type))
        assert index.stats.misses == 2
        assert index.stats.invalidations == 1

    def test_invalidate_clears_checker_memo_too(self, runtime, checker):
        """The checker caches negative results definitively; dropping only
        the routing verdicts would read the same stale verdict back."""
        index = make_index(checker)
        index.add(Subscription(person_java(), None, 1))
        event_type = runtime.registry.require("demo.a.Person")
        list(index.route(event_type))
        assert checker.cache_size > 0
        index.invalidate()
        assert checker.cache_size == 0

    def test_registry_change_invalidates(self, runtime, checker):
        registry = TypeRegistry()
        index = make_index(checker, registry)
        index.add(Subscription(person_java(), None, 1))
        event_type = runtime.registry.require("demo.a.Person")
        list(index.route(event_type))
        assert index.stats.misses == 1
        registry.register(account_csharp())  # new knowledge arrives
        list(index.route(event_type))
        assert index.stats.invalidations == 1
        assert index.stats.misses == 2

    def test_quiet_registry_keeps_cache_warm(self, runtime, checker):
        registry = TypeRegistry()
        index = make_index(checker, registry)
        index.add(Subscription(person_java(), None, 1))
        event_type = runtime.registry.require("demo.a.Person")
        for _ in range(5):
            list(index.route(event_type))
        assert index.stats.misses == 1
        assert index.stats.hits == 4


class TestLocalBrokerIntegration:
    def test_subscribers_in_a_group_share_the_view(self, runtime):
        broker = LocalBroker()
        got = []
        broker.subscribe(person_java(), got.append)
        broker.subscribe(person_java(), got.append)
        broker.publish(runtime.new_instance("demo.a.Person", ["shared"]))
        assert len(got) == 2
        assert got[0] is got[1]  # one proxy per (event, expected type)
        assert got[0].getPersonName() == "shared"

    def test_unsubscribe_during_delivery(self, runtime):
        broker = LocalBroker()
        got = []
        holder = {}

        def self_cancelling(view):
            got.append(view)
            broker.unsubscribe(holder["sub"])

        holder["sub"] = broker.subscribe(person_java(), self_cancelling)
        broker.subscribe(person_java(), got.append)
        broker.publish(runtime.new_instance("demo.a.Person", ["1"]))
        broker.publish(runtime.new_instance("demo.a.Person", ["2"]))
        # First publish reaches both; the cancelled one is gone afterwards.
        assert len(got) == 3

    def test_subscribe_during_delivery(self, runtime):
        broker = LocalBroker()
        late = []

        def recruiting(view):
            broker.subscribe(person_vb(), late.append)

        broker.subscribe(person_java(), recruiting)
        broker.publish(runtime.new_instance("demo.a.Person", ["grow"]))
        broker.publish(runtime.new_instance("demo.a.Person", ["grow"]))
        assert len(late) >= 1  # the recruit sees later publishes

    def test_warm_cache_stats_observable(self, runtime):
        broker = LocalBroker()
        broker.subscribe(person_java(), lambda e: None)
        event = runtime.new_instance("demo.a.Person", ["x"])
        broker.publish(event)
        broker.publish(event)
        assert broker.index.stats.misses == 1
        assert broker.index.stats.hits == 1


class TestTpsBrokerIntegration:
    @pytest.fixture
    def world(self):
        network = SimulatedNetwork()
        broker = TpsBroker("broker", network)
        publisher = TpsPeer("publisher", network)
        subscriber = TpsPeer("subscriber", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        return network, broker, publisher, subscriber

    def test_unsubscribe_is_indexed(self, world):
        network, broker, publisher, subscriber = world
        events = []
        sid = subscriber.subscribe_remote("broker", person_java(), events.append)
        assert len(broker.index) == 1
        subscriber.unsubscribe_remote("broker", sid)
        assert len(broker.index) == 0
        publisher.publish("broker", publisher.new_instance("demo.a.Person", ["x"]))
        assert events == []

    def test_foreign_peer_cannot_unsubscribe(self, world):
        network, broker, publisher, subscriber = world
        events = []
        sid = subscriber.subscribe_remote("broker", person_java(), events.append)
        # The publisher tries to cancel the subscriber's interest.
        publisher.unsubscribe_remote("broker", sid)
        assert len(broker.index) == 1
        publisher.publish("broker", publisher.new_instance("demo.a.Person", ["kept"]))
        assert len(events) == 1

    def test_repeat_publishes_hit_verdict_cache(self, world):
        network, broker, publisher, subscriber = world
        events = []
        subscriber.subscribe_remote("broker", person_java(), events.append)
        for i in range(3):
            publisher.publish(
                "broker", publisher.new_instance("demo.a.Person", ["p%d" % i])
            )
        assert len(events) == 3
        assert broker.index.stats.hits >= 1
        assert broker.index.stats.misses <= 2  # at most one re-check after code loads
