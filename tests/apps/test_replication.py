"""Cross-shard log replication + on-demand backlog fetch (PR 5 tentpole).

Covers the three legs of mesh-wide durability:

- **push replication** — every origin record streams to rendezvous-chosen
  follower shards, watermark-acked, gap-rejected and re-sent;
- **backlog fetch** — a durable subscriber attaching anywhere receives the
  complete conforming backlog, wherever the events were homed (records
  filtered server-side through the RoutingStage conformance check);
- **recovery catch-up** — a restarted shard whose log directory was wiped
  heals its record set back from its followers.
"""

import os
import shutil

import pytest

from repro.apps.tps import BrokerMesh, TpsPeer
from repro.apps.tps.mesh import rendezvous_rank, rendezvous_shard
from repro.cts.assembly import Assembly
from repro.describe.description import TypeDescription
from repro.describe.xml_codec import serialize_description_bytes
from repro.fixtures import (
    account_csharp,
    person_assembly_pair,
    person_java,
)
from repro.net.network import SimulatedNetwork
from repro.serialization.envelope import envelope_home


def make_world(tmp_path, shard_count=3, replication_factor=0,
               drop_rate=0.0, seed=0, name="mesh", **broker_kwargs):
    network = SimulatedNetwork(drop_rate=drop_rate, seed=seed)
    mesh = BrokerMesh(network, shard_count=shard_count, name=name,
                      log_root=str(tmp_path / "logs"),
                      replication_factor=replication_factor,
                      **broker_kwargs)
    publisher = TpsPeer("publisher", network, **broker_kwargs)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    return network, mesh, publisher


def publish_spread(mesh, publisher, per_shard=2, prefix="e"):
    """Publish events homed on EVERY shard (no subscribers anywhere, so
    nothing is forwarded — each event lives only in its home shard's log
    plus whatever replication pushed out)."""
    names = []
    for index, shard_id in enumerate(mesh.shard_ids):
        for j in range(per_shard):
            name = "%s%d-%d" % (prefix, index, j)
            publisher.publish_async(
                shard_id, publisher.new_instance("demo.a.Person", [name]))
            names.append(name)
    mesh.run_until_idle()
    return names


def origin_offsets(shard):
    """Offsets of the records ``shard`` is the home of (forwarded-in
    copies carry a ``home`` attribute and are some other shard's)."""
    return {record.offset for record in shard.event_log.replay()
            if envelope_home(record.payload) is None}


class TestFollowerPlacement:
    def test_rank_is_deterministic_and_complete(self):
        shards = ["s0", "s1", "s2", "s3"]
        rank = rendezvous_rank("key", shards)
        assert sorted(rank) == sorted(shards)
        assert rank == rendezvous_rank("key", list(reversed(shards)))
        assert rank[0] == rendezvous_shard("key", shards)

    def test_followers_exclude_home_and_respect_factor(self, tmp_path):
        network, mesh, publisher = make_world(tmp_path, shard_count=4,
                                              replication_factor=2)
        for shard in mesh.shards:
            followers = shard.followers
            assert len(followers) == 2
            assert shard.peer_id not in followers
            assert mesh.followers_of(shard.peer_id) == followers

    def test_replication_needs_logs(self):
        network = SimulatedNetwork()
        with pytest.raises(ValueError):
            BrokerMesh(network, shard_count=2, replication_factor=1)

    def test_factor_must_leave_home_out(self, tmp_path):
        network = SimulatedNetwork()
        with pytest.raises(ValueError):
            BrokerMesh(network, shard_count=2, replication_factor=2,
                       log_root=str(tmp_path / "x"))


class TestPushReplication:
    def test_followers_hold_origin_records_at_origin_offsets(self, tmp_path):
        network, mesh, publisher = make_world(tmp_path, replication_factor=2)
        publish_spread(mesh, publisher, per_shard=3)
        for shard in mesh.shards:
            origin = origin_offsets(shard)
            for follower_id in shard.followers:
                replica = mesh.shard(follower_id).replicas.log_for(
                    shard.peer_id, create=False)
                assert replica is not None
                assert {r.offset for r in replica.replay()} == origin
                # byte-identical payloads, record by record
                for record in replica.replay():
                    assert record.payload == \
                        shard.event_log.read(record.offset).payload
                watermark = shard.replication.acked[follower_id]
                assert watermark == shard.event_log.next_offset

    def test_forwarded_in_records_are_not_rereplicated(self, tmp_path):
        """A shard's log holds forwarded-in copies too; only the records
        it is home to stream to its followers."""
        network, mesh, publisher = make_world(tmp_path, shard_count=2,
                                              replication_factor=1)
        home = mesh.shard_for("publisher")
        other = next(s for s in mesh.shard_ids if s != home)
        live = []
        anchor = TpsPeer("anchor-sub", network)
        anchor.subscribe_remote(other, person_java(), live.append)
        for index in range(3):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["f%d" % index]))
        mesh.run_until_idle()
        assert len(live) == 3
        # `other` logged 1 forwarded batch; its follower must hold only
        # `other`'s own records (none), never the forwarded copies.
        other_shard = mesh.shard(other)
        assert other_shard.event_log.record_count >= 1
        assert origin_offsets(other_shard) == set()
        follower = mesh.shard(other_shard.followers[0])
        replica = follower.replicas.log_for(other, create=False)
        assert replica is None or replica.record_count == 0

    def test_gap_batch_rejected_and_resent(self, tmp_path):
        """A lost replicate batch leaves the follower behind; the next
        batch's ``from`` claim exposes the gap, the follower rejects it
        whole, and the origin re-sends from the acked watermark."""
        network, mesh, publisher = make_world(tmp_path, replication_factor=1)
        home = mesh.shard_ids[0]
        origin = mesh.shard(home)
        follower_id = origin.followers[0]
        for index in range(2):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["a%d" % index]))
        network.flush()        # events admitted + logged at the origin
        origin.flush_delivery()  # replicate batch enqueued on the fabric
        # Simulate the loss: drop the queued replicate message.
        link = network._queues.get((home, follower_id))
        assert link and any(kind == "replicate" for kind, _ in link)
        link.clear()
        mesh.run_until_idle()
        assert mesh.shard(follower_id).replicas.high_water(home) == 0

        # The next publish exposes the hole and heals it.
        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["a2"]))
        mesh.run_until_idle()
        follower = mesh.shard(follower_id)
        assert follower.replica_rejects >= 1
        assert origin.pipeline.stats.replication_resends >= 1
        replica = follower.replicas.log_for(home, create=False)
        assert {r.offset for r in replica.replay()} == origin_offsets(origin)

    def test_stale_reordered_ack_triggers_no_resend(self, tmp_path):
        """One-way acks can reorder on the fabric: a stale ack arriving
        after a newer one must not roll the coverage claim back or
        trigger a spurious full-range resend."""
        network, mesh, publisher = make_world(tmp_path, replication_factor=1)
        home = mesh.shard_ids[0]
        origin = mesh.shard(home)
        follower_id = origin.followers[0]
        for index in range(3):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["s%d" % index]))
        mesh.run_until_idle()
        stage = origin.replication
        assert stage.acked[follower_id] == stage.sent[follower_id] == 3
        stage.acknowledge(follower_id, 1)  # late duplicate of an old ack
        assert stage.acked[follower_id] == 3  # monotonic
        assert origin.pipeline.stats.replication_resends == 0
        assert stage.pending() == 0

    def test_resent_batches_are_idempotent(self, tmp_path):
        """Re-delivering an already-applied batch must not duplicate
        records (the per-origin high-water absorbs it)."""
        network, mesh, publisher = make_world(tmp_path, replication_factor=1)
        home = mesh.shard_ids[0]
        origin = mesh.shard(home)
        follower = mesh.shard(origin.followers[0])
        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["x"]))
        network.flush()
        # Capture the replicate payload, deliver it twice.
        origin.flush_delivery()
        link = network._queues[(home, follower.peer_id)]
        payloads = [payload for kind, payload in link if kind == "replicate"]
        assert len(payloads) == 1
        mesh.run_until_idle()
        before = follower.replicas.log_for(home).record_count
        follower._handle_replicate(payloads[0], home)
        replica = follower.replicas.log_for(home)
        assert replica.record_count == before
        assert replica.stats()["duplicate_appends"] >= 1


class TestMeshWideBacklog:
    def test_late_subscriber_any_shard_fetch_only(self, tmp_path):
        """Acceptance (replication_factor=0): backlog fetch alone makes a
        late durable subscriber's backlog complete on EVERY shard."""
        network, mesh, publisher = make_world(tmp_path, replication_factor=0)
        names = publish_spread(mesh, publisher, per_shard=2)
        for index, shard_id in enumerate(mesh.shard_ids):
            got = []
            late = TpsPeer("late-%d" % index, network)
            late.subscribe_durable_remote(shard_id, person_java(), got.append,
                                          cursor="late-%d" % index)
            mesh.run_until_idle()
            assert sorted(e.getPersonName() for e in got) == sorted(names)

    def test_late_subscriber_complete_with_replication(self, tmp_path):
        network, mesh, publisher = make_world(tmp_path, replication_factor=2)
        names = publish_spread(mesh, publisher, per_shard=2)
        got = []
        late = TpsPeer("late-sub", network)
        home = mesh.shard_ids[0]
        late.subscribe_durable_remote(home, person_java(), got.append,
                                      cursor="late-c")
        mesh.run_until_idle()
        assert sorted(e.getPersonName() for e in got) == sorted(names)
        # then live events exactly once, no replay/live duplicates
        publisher.publish_async(
            mesh.shard_ids[1],
            publisher.new_instance("demo.a.Person", ["live"]))
        mesh.run_until_idle()
        delivered = [e.getPersonName() for e in got]
        assert delivered.count("live") == 1
        assert len(delivered) == len(set(delivered))

    def test_replica_logs_serve_when_sibling_is_down(self, tmp_path):
        """What replication already pulled here survives the origin shard
        being unreachable: the late subscriber still gets those records
        from the local replica log."""
        network, mesh, publisher = make_world(tmp_path, shard_count=3,
                                              replication_factor=2)
        names = publish_spread(mesh, publisher, per_shard=2)
        attach_at = mesh.shard_ids[0]
        down = mesh.shard_ids[1]
        down_names = {n for n in names if n.startswith("e1-")}
        mesh.shard(down).close()  # off the fabric; fetch will fail

        got = []
        late = TpsPeer("late-sub", network)
        late.subscribe_durable_remote(attach_at, person_java(), got.append,
                                      cursor="late-c")
        network.run_until_idle()
        delivered = {e.getPersonName() for e in got}
        assert down_names <= delivered  # served from the replica log
        assert delivered == set(names)
        assert mesh.shard(attach_at).fetch_failures >= 1

    def test_forwarded_copies_not_delivered_twice(self, tmp_path):
        """Events forwarded here at publish time replay through the local
        log; replica replay and fetch must skip them by home id."""
        network, mesh, publisher = make_world(tmp_path, shard_count=2,
                                              replication_factor=1)
        home = mesh.shard_for("publisher")
        other = next(s for s in mesh.shard_ids if s != home)
        live = []
        anchor = TpsPeer("anchor-sub", network)
        anchor.subscribe_remote(other, person_java(), live.append)
        for index in range(4):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["d%d" % index]))
        mesh.run_until_idle()
        assert len(live) == 4  # forwards really happened (and were logged)

        got = []
        late = TpsPeer("late-sub", network)
        late.subscribe_durable_remote(other, person_java(), got.append,
                                      cursor="late-c")
        mesh.run_until_idle()
        names = [e.getPersonName() for e in got]
        assert sorted(names) == ["d0", "d1", "d2", "d3"]
        assert len(names) == len(set(names))  # exactly once each

    def test_reattach_does_not_refetch(self, tmp_path):
        """Fetch cursors persist: a re-attach under the same cursor name
        replays nothing already acknowledged, local or fetched."""
        network, mesh, publisher = make_world(tmp_path, replication_factor=0)
        publish_spread(mesh, publisher, per_shard=2)
        home = mesh.shard_ids[0]
        got = []
        late = TpsPeer("late-sub", network)
        late.subscribe_durable_remote(home, person_java(), got.append,
                                      cursor="late-c")
        mesh.run_until_idle()
        assert len(got) == 6
        late.close()

        got2 = []
        again = TpsPeer("late-sub", network)
        again.subscribe_durable_remote(home, person_java(), got2.append,
                                       cursor="late-c")
        mesh.run_until_idle()
        assert got2 == []

    def test_local_handler_durable_gets_mesh_wide_backlog(self, tmp_path):
        """In-process durable handlers ride the same merge: replica
        replay + fetch deliver directly, advancing the fetch cursors."""
        network, mesh, publisher = make_world(tmp_path, replication_factor=1)
        names = publish_spread(mesh, publisher, per_shard=2)
        got = []
        shard = mesh.shards[0]
        shard.subscribe_durable(person_java(),
                                lambda view: got.append(view.getPersonName()),
                                cursor="loc-c")
        mesh.run_until_idle()
        assert sorted(got) == sorted(names)
        again = []
        shard.subscribe_durable(person_java(),
                                lambda view: again.append(view.getPersonName()),
                                cursor="loc-c")
        mesh.run_until_idle()
        assert again == []  # everything already consumed

    def test_unsubscribe_retires_fetch_cursors(self, tmp_path):
        network, mesh, publisher = make_world(tmp_path, replication_factor=0)
        publish_spread(mesh, publisher, per_shard=1)
        home = mesh.shard_ids[0]
        got = []
        late = TpsPeer("late-sub", network)
        sid = late.subscribe_durable_remote(home, person_java(), got.append,
                                            cursor="late-c")
        mesh.run_until_idle()
        shard = mesh.shard(home)
        assert shard.cursors.derived("late-c")  # fetch cursors exist
        late.unsubscribe_remote(home, sid)
        assert "late-c" not in shard.cursors
        assert shard.cursors.derived("late-c") == []

    def test_at_sign_cursor_names_rejected(self, tmp_path):
        """'@' is the derived fetch-cursor separator: a user cursor shaped
        like one could be adopted into another cursor's family."""
        network, mesh, publisher = make_world(tmp_path)
        peer = TpsPeer("p", network)
        from repro.net.network import NetworkError
        with pytest.raises((ValueError, NetworkError)):
            peer.subscribe_durable_remote(mesh.shard_ids[0], person_java(),
                                          lambda v: None, cursor="c@evil")

    def test_sibling_retention_gap_is_accounted(self, tmp_path):
        """Records a serving sibling's retention dropped before this
        cursor fetched them are a real loss — surfaced in
        ``retention_lost_records``, never silently skipped."""
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=2,
                          log_root=str(tmp_path / "logs"),
                          log_kwargs={"segment_max_bytes": 256,
                                      "max_segments": 1})
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        attach_at, other = mesh.shard_ids
        got = []
        late = TpsPeer("late-sub", network)
        late.subscribe_durable_remote(attach_at, person_java(), got.append,
                                      cursor="late-c")
        mesh.run_until_idle()
        shard = mesh.shard(attach_at)
        fetched_below = shard.cursors.get("late-c@%s" % other)
        # New records at the sibling; its 1-segment retention drops most
        # of them before the subscriber ever re-attaches.
        for index in range(12):
            publisher.publish_async(
                other, publisher.new_instance("demo.a.Person",
                                              ["r%d" % index]))
        mesh.run_until_idle()
        sibling = mesh.shard(other)
        assert sibling.event_log.first_offset > fetched_below
        late.close()

        again = []
        re_attach = TpsPeer("late-sub", network)
        re_attach.subscribe_durable_remote(attach_at, person_java(),
                                           again.append, cursor="late-c")
        mesh.run_until_idle()
        assert shard.pipeline.stats.retention_lost_records == \
            sibling.event_log.first_offset - fetched_below

    def test_fetch_cursors_do_not_pin_local_retention(self, tmp_path):
        """A fetch cursor holds a sibling-space offset; it must never
        enter the local retention-floor computation."""
        network, mesh, publisher = make_world(tmp_path, replication_factor=0)
        publish_spread(mesh, publisher, per_shard=2)
        home = mesh.shard_ids[0]
        got = []
        late = TpsPeer("late-sub", network)
        late.subscribe_durable_remote(home, person_java(), got.append,
                                      cursor="late-c")
        mesh.run_until_idle()
        shard = mesh.shard(home)
        floor = shard.cursors.min_offset()
        assert floor == shard.cursors.get("late-c")


class TestBacklogFetchFiltering:
    def test_fetch_returns_only_conforming_records(self, tmp_path):
        """Satellite unit: the serving side filters through RoutingStage —
        only records conforming to the requested description cross."""
        network, mesh, publisher = make_world(tmp_path, shard_count=2)
        publisher.host_assembly(Assembly("bank", [account_csharp()]))
        home = mesh.shard_ids[0]
        for index in range(2):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["p%d" % index]))
            publisher.publish_async(
                home, publisher.new_instance("demo.bank.Account",
                                             ["o%d" % index, index]))
        mesh.run_until_idle()
        shard = mesh.shard(home)
        assert shard.event_log.record_count == 4

        description = serialize_description_bytes(
            TypeDescription.from_type_info(person_java()))
        request = shard._wire_codec.serialize(
            {"description": description, "from": 0})
        shard.codec.stats.decodes = 0
        reply = shard._wire_codec.deserialize(
            shard._handle_backlog_fetch(request, "tester"))
        # The serving-side filter is header-only: deciding which of the
        # 4 records conform cost zero value-level decodes.
        assert shard.codec.stats.decodes == 0
        assert reply["upto"] == shard.event_log.next_offset
        assert len(reply["records"]) == 2  # the Person records only
        for item in reply["records"]:
            envelope = shard.codec.parse(item["payload"])
            names = envelope.type_names()
            assert any("Person" in name for name in names)
            assert not any("Account" in name for name in names)
        assert shard.fetch_records_served == 2

    def test_durable_replay_filter_is_header_only(self, tmp_path):
        """Satellite unit: the durable-replay conformance filter runs on
        frame headers — a backlog with nothing conforming replays with
        zero value-level decodes, and a mixed backlog decodes only the
        records that actually travel."""
        network, mesh, publisher = make_world(tmp_path, shard_count=1)
        publisher.host_assembly(Assembly("bank", [account_csharp()]))
        home = mesh.shard_ids[0]
        for index in range(3):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["p%d" % index]))
        mesh.run_until_idle()
        shard = mesh.shard(home)
        assert shard.event_log.record_count == 3

        # Nothing in the log conforms to Account: replay must not decode.
        account_type = publisher.new_instance(
            "demo.bank.Account", ["o", 1])._repro_type()
        bank_got = []
        bank_sub = TpsPeer("bank-sub", network)
        bank_sub.host_assembly(Assembly("bank", [account_csharp()]))
        shard.codec.stats.decodes = 0
        bank_sub.subscribe_durable_remote(home, account_type, bank_got.append,
                                          cursor="bank-c")
        mesh.run_until_idle()
        assert bank_got == []
        assert shard.codec.stats.decodes == 0

        # A conforming subscriber decodes exactly the records it receives.
        person_got = []
        person_sub = TpsPeer("person-sub", network)
        shard.codec.stats.decodes = 0
        person_sub.subscribe_durable_remote(home, person_java(),
                                            person_got.append,
                                            cursor="person-c")
        mesh.run_until_idle()
        assert len(person_got) == 3
        assert shard.codec.stats.decodes == 3

    def test_fetch_skips_forwarded_in_records(self, tmp_path):
        """Only records a shard is home to are served — forwarded-in
        copies are the home shard's to serve."""
        network, mesh, publisher = make_world(tmp_path, shard_count=2)
        home = mesh.shard_for("publisher")
        other = next(s for s in mesh.shard_ids if s != home)
        live = []
        anchor = TpsPeer("anchor-sub", network)
        anchor.subscribe_remote(other, person_java(), live.append)
        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["fwd"]))
        mesh.run_until_idle()
        other_shard = mesh.shard(other)
        assert other_shard.event_log.record_count == 1  # the forwarded copy

        description = serialize_description_bytes(
            TypeDescription.from_type_info(person_java()))
        request = other_shard._wire_codec.serialize(
            {"description": description, "from": 0})
        reply = other_shard._wire_codec.deserialize(
            other_shard._handle_backlog_fetch(request, "tester"))
        assert reply["records"] == []
        assert reply["upto"] == other_shard.event_log.next_offset


class TestWipedLogRecovery:
    def test_restart_heals_full_record_set_from_followers(self, tmp_path):
        """Acceptance: ``restart_shard()`` on a shard whose log directory
        was wiped recovers its full record set from its followers."""
        network, mesh, publisher = make_world(tmp_path, replication_factor=2)
        publish_spread(mesh, publisher, per_shard=3)
        victim = mesh.shard_ids[1]
        shard = mesh.shard(victim)
        offsets = sorted(r.offset for r in shard.event_log.replay())
        payloads = {r.offset: r.payload for r in shard.event_log.replay()}
        assert offsets  # the victim really homed records

        events_dir = os.path.join(str(tmp_path / "logs"), victim, "events")
        shard.close()
        shutil.rmtree(events_dir)
        restarted = mesh.restart_shard(victim)
        mesh.run_until_idle()
        assert restarted.healed_records == len(offsets)
        assert sorted(r.offset for r in restarted.event_log.replay()) == offsets
        for record in restarted.event_log.replay():
            assert record.payload == payloads[record.offset]

        # The healed shard serves late subscribers exactly as before.
        got = []
        late = TpsPeer("late-sub", network)
        late.subscribe_durable_remote(victim, person_java(), got.append,
                                      cursor="late-c")
        mesh.run_until_idle()
        assert len(got) == 9

    def test_restart_without_wipe_heals_nothing(self, tmp_path):
        network, mesh, publisher = make_world(tmp_path, replication_factor=1)
        publish_spread(mesh, publisher, per_shard=2)
        victim = mesh.shard_ids[0]
        restarted = mesh.restart_shard(victim)
        mesh.run_until_idle()
        assert restarted.healed_records == 0


class TestChaosReplication:
    """Lossy/reordering fabric with a seed matrix (CI sweeps
    ``REPLICATION_CHAOS_SEED``); pytest-timeout guards the CI run so a
    livelocked catch-up fails loudly instead of hanging the runner."""

    def test_chaos_lossy_fabric_converges(self, tmp_path):
        seed = int(os.environ.get("REPLICATION_CHAOS_SEED", "13"))
        network, mesh, publisher = make_world(
            tmp_path, shard_count=3, replication_factor=1,
            drop_rate=0.15, seed=seed, max_retries=20)
        home = mesh.shard_ids[0]
        got = []
        durable = TpsPeer("d-sub", network, max_retries=20)
        durable.subscribe_durable_remote(home, person_java(), got.append,
                                         cursor="d-c")
        wanted = set()
        # Synchronous retried publishes: durability starts at the append.
        for index, shard_id in enumerate(mesh.shard_ids):
            for j in range(2):
                name = "c%d-%d" % (index, j)
                publisher.publish(
                    shard_id,
                    publisher.new_instance("demo.a.Person", [name]))
                wanted.add(name)
        mesh.run_until_idle()
        mesh.restart_shard(home)
        mesh.run_until_idle()

        # At-least-once per restart: keep restarting until the durable
        # subscriber's backlog converges on the full conforming set.
        for _ in range(12):
            if {e.getPersonName() for e in got} >= wanted:
                break
            mesh.restart_shard(home)
            mesh.run_until_idle()
        assert {e.getPersonName() for e in got} >= wanted
        assert network.stats.dropped > 0  # the fabric really was lossy

        # Replication safety invariant, loss notwithstanding: follower
        # replica logs hold every origin record below the acked watermark.
        for shard in mesh.shards:
            if shard.replication is None:
                continue
            origin = origin_offsets(shard)
            for follower_id, marks in shard.replication.watermarks().items():
                replica = mesh.shard(follower_id).replicas.log_for(
                    shard.peer_id, create=False)
                held = ({r.offset for r in replica.replay()}
                        if replica is not None else set())
                missing = {offset for offset in origin
                           if offset < marks["acked"]} - held
                assert missing == set(), (shard.peer_id, follower_id, missing)
