"""Tests for the sharded broker mesh (batched, queue-driven delivery)."""

import pytest

from repro.apps.tps import BrokerMesh, TpsPeer, rendezvous_shard
from repro.cts.assembly import Assembly
from repro.fixtures import (
    account_csharp,
    person_assembly_pair,
    person_csharp,
    person_java,
    person_vb,
)
from repro.net.network import SimulatedNetwork


def make_world(shard_count=3, n_subscribers=6, drop_rate=0.0, seed=0,
               **broker_kwargs):
    network = SimulatedNetwork(drop_rate=drop_rate, seed=seed)
    mesh = BrokerMesh(network, shard_count=shard_count, **broker_kwargs)
    publisher = TpsPeer("publisher", network, **broker_kwargs)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    subscribers = []
    events = {}
    for index in range(n_subscribers):
        peer = TpsPeer("sub%02d" % index, network, **broker_kwargs)
        events[peer.peer_id] = []
        peer.subscribe_remote(mesh.shard_for(peer.peer_id), person_java(),
                              events[peer.peer_id].append)
        subscribers.append(peer)
    return network, mesh, publisher, subscribers, events


class TestRendezvousHash:
    def test_deterministic(self):
        shards = ["s0", "s1", "s2", "s3"]
        for key in ("alice", "bob", "publisher-17"):
            assert rendezvous_shard(key, shards) == rendezvous_shard(key, shards)
            assert rendezvous_shard(key, list(reversed(shards))) == \
                rendezvous_shard(key, shards)

    def test_spread(self):
        shards = ["s0", "s1", "s2", "s3"]
        placed = {rendezvous_shard("peer%03d" % i, shards) for i in range(200)}
        assert placed == set(shards)

    def test_minimal_disruption(self):
        """Removing one shard only moves the keys it owned."""
        shards = ["s0", "s1", "s2", "s3"]
        keys = ["peer%03d" % i for i in range(100)]
        before = {key: rendezvous_shard(key, shards) for key in keys}
        after = {key: rendezvous_shard(key, shards[:-1]) for key in keys}
        for key in keys:
            if before[key] != "s3":
                assert after[key] == before[key]

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError):
            rendezvous_shard("x", [])


class TestMeshDelivery:
    def test_publish_reaches_every_shard_subscriber(self):
        network, mesh, publisher, subscribers, events = make_world()
        home = mesh.shard_for("publisher")
        publisher.publish_async(home, publisher.new_instance("demo.a.Person", ["hello"]))
        assert all(len(v) == 0 for v in events.values())  # queue-driven
        mesh.run_until_idle()
        assert all(len(v) == 1 for v in events.values())
        assert events["sub00"][0].getPersonName() == "hello"
        assert mesh.events_routed() == len(subscribers)

    def test_subscribers_span_multiple_shards(self):
        network, mesh, publisher, subscribers, events = make_world(
            shard_count=3, n_subscribers=12)
        homes = {mesh.shard_for(peer.peer_id) for peer in subscribers}
        assert len(homes) >= 2  # the hash really spreads peers

    def test_batched_one_message_per_destination(self):
        """Three events published before draining reach each subscriber in
        ONE object_batch message."""
        network, mesh, publisher, subscribers, events = make_world()
        home = mesh.shard_for("publisher")
        for index in range(3):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["e%d" % index]))
        network.reset_accounting()
        mesh.run_until_idle()
        batches = network.stats.by_kind_messages.get("object_batch", 0)
        assert batches == len(subscribers)
        assert all([e.getPersonName() for e in v] == ["e0", "e1", "e2"]
                   for v in events.values())

    def test_sync_publish_also_buffers(self):
        """The synchronous publish path still works against a mesh shard:
        routing buffers, draining delivers."""
        network, mesh, publisher, subscribers, events = make_world()
        home = mesh.shard_for("publisher")
        publisher.publish(home, publisher.new_instance("demo.a.Person", ["sync"]))
        assert all(len(v) == 0 for v in events.values())
        mesh.run_until_idle()
        assert all(len(v) == 1 for v in events.values())

    def test_no_conforming_subscriber_forwards_to_zero_shards(self):
        """Acceptance criterion: an event nobody on a remote shard wants
        never crosses a shard boundary."""
        network, mesh, publisher, subscribers, events = make_world()
        publisher.host_assembly(Assembly("bank", [account_csharp()]))
        network.reset_accounting()
        home = mesh.shard_for("publisher")
        publisher.publish_async(
            home, publisher.new_instance("demo.bank.Account", ["o", 1]))
        mesh.run_until_idle()
        assert network.stats.by_kind_messages.get("mesh_forward", 0) == 0
        assert network.stats.by_kind_messages.get("object_batch", 0) == 0
        assert all(len(v) == 0 for v in events.values())

    def test_forwards_only_to_hosting_shards(self):
        """With subscribers on a single shard, a publish from another
        shard's publisher forwards to exactly that one shard."""
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=4)
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        home = mesh.shard_for("publisher")
        other = next(sid for sid in mesh.shard_ids if sid != home)
        got = []
        subscriber = TpsPeer("lone-sub", network)
        subscriber.subscribe_remote(other, person_java(), got.append)
        network.reset_accounting()
        publisher.publish_async(home, publisher.new_instance("demo.a.Person", ["f"]))
        mesh.run_until_idle()
        assert network.stats.by_kind_messages.get("mesh_forward", 0) == 1
        assert len(got) == 1

    def test_publisher_not_echoed_across_shards(self):
        """A peer that both publishes and subscribes never receives its
        own event, wherever it is routed."""
        network, mesh, publisher, subscribers, events = make_world()
        mine = []
        publisher.subscribe_remote(mesh.shard_for("publisher"), person_vb(),
                                   mine.append)
        publisher.publish_async(mesh.shard_for("publisher"),
                                publisher.new_instance("demo.a.Person", ["me"]))
        mesh.run_until_idle()
        assert mine == []
        assert all(len(v) == 1 for v in events.values())

    def test_unsubscribe_stops_forwarding(self):
        """When the last conforming subscriber of a shard unsubscribes,
        the summary gossip removes the forward route."""
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=2)
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        home = mesh.shard_for("publisher")
        other = next(sid for sid in mesh.shard_ids if sid != home)
        got = []
        subscriber = TpsPeer("remote-sub", network)
        sid = subscriber.subscribe_remote(other, person_java(), got.append)

        publisher.publish_async(home, publisher.new_instance("demo.a.Person", ["a"]))
        mesh.run_until_idle()
        assert len(got) == 1

        subscriber.unsubscribe_remote(other, sid)
        network.reset_accounting()
        publisher.publish_async(home, publisher.new_instance("demo.a.Person", ["b"]))
        mesh.run_until_idle()
        assert network.stats.by_kind_messages.get("mesh_forward", 0) == 0
        assert len(got) == 1

    def test_refcounted_summaries_survive_partial_unsubscribe(self):
        """Two remote subscribers sharing an expected type: removing one
        must keep the forward route alive for the other."""
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=2)
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        home = mesh.shard_for("publisher")
        other = next(sid for sid in mesh.shard_ids if sid != home)
        expected = person_java()
        got_a, got_b = [], []
        sub_a = TpsPeer("remote-a", network)
        sub_b = TpsPeer("remote-b", network)
        id_a = sub_a.subscribe_remote(other, expected, got_a.append)
        sub_b.subscribe_remote(other, expected, got_b.append)
        sub_a.unsubscribe_remote(other, id_a)

        publisher.publish_async(home, publisher.new_instance("demo.a.Person", ["x"]))
        mesh.run_until_idle()
        assert got_a == []
        assert len(got_b) == 1

    def test_duplicate_subscriptions_one_message(self):
        """A peer with several matching subscriptions still receives ONE
        batch message per drain (the transport-layer acceptance point)."""
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=2)
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        got = []
        subscriber = TpsPeer("multi-sub", network)
        shard = mesh.shard_for("multi-sub")
        for expected in (person_java(), person_vb(), person_csharp()):
            subscriber.subscribe_remote(shard, expected, got.append)
        network.reset_accounting()
        publisher.publish_async(mesh.shard_for("publisher"),
                                publisher.new_instance("demo.a.Person", ["k"]))
        mesh.run_until_idle()
        assert network.stats.by_kind_messages.get("object_batch", 0) == 1
        # Seed parity: one delivery per matching subscription.
        assert mesh.events_routed() == 3


class TestMeshObservability:
    def test_shard_stats_surface_counters(self):
        network, mesh, publisher, subscribers, events = make_world()
        home = mesh.shard_for("publisher")
        for index in range(2):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["s%d" % index]))
        mesh.run_until_idle()
        snapshot = mesh.stats()
        assert snapshot["events_routed"] == 2 * len(subscribers)
        assert snapshot["batch_events"] == 2 * len(subscribers)
        home_stats = snapshot["shards"][home]
        assert home_stats["forwards_sent"] >= 1
        assert home_stats["summary_types"] >= 1
        assert home_stats["pending_deliveries"] == 0
        assert home_stats["routing"]["hits"] >= 0
        # Per-subscription delivered counts are exposed on every shard.
        delivered = [count
                     for shard_stats in snapshot["shards"].values()
                     for count in shard_stats["subscriptions"].values()]
        assert sum(delivered) == 2 * len(subscribers)

    def test_mesh_close_unregisters_shards(self):
        network, mesh, publisher, subscribers, events = make_world()
        mesh.close()
        for shard_id in mesh.shard_ids:
            assert shard_id not in network.peers()


class TestLossyFabric:
    """Satellite: fan-out under drop_rate > 0 with a deterministic seed."""

    def test_delivery_counts_and_drop_accounting(self):
        network, mesh, publisher, subscribers, events = make_world(
            shard_count=3, n_subscribers=8, drop_rate=0.15, seed=42,
            max_retries=20)
        home = mesh.shard_for("publisher")
        n_events = 5
        for index in range(n_events):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["l%d" % index]))
        mesh.run_until_idle()

        # Async messages are dropped silently but *accounted*; the control
        # plane (subscribe, gossip, fetches) recovered via retries.
        assert network.stats.dropped > 0
        delivered = sum(len(v) for v in events.values())
        possible = n_events * len(subscribers)
        assert 0 < delivered <= possible
        # Whatever arrived is intact and in per-subscriber FIFO order.
        for got in events.values():
            names = [event.getPersonName() for event in got]
            assert names == sorted(names, key=lambda n: int(n[1:]))

    def test_determinism_same_seed_same_outcome(self):
        outcomes = []
        for _ in range(2):
            network, mesh, publisher, subscribers, events = make_world(
                shard_count=3, n_subscribers=6, drop_rate=0.2, seed=7,
                max_retries=20)
            home = mesh.shard_for("publisher")
            for index in range(4):
                publisher.publish_async(
                    home,
                    publisher.new_instance("demo.a.Person", ["d%d" % index]))
            mesh.run_until_idle()
            outcomes.append((
                {peer: [e.getPersonName() for e in got]
                 for peer, got in events.items()},
                network.stats.dropped,
                network.stats.messages,
            ))
        assert outcomes[0] == outcomes[1]

    def test_mesh_forwarding_sane_under_loss(self):
        """Forward counters never exceed what was buffered, and nothing
        deadlocks: the mesh always drains to idle."""
        network, mesh, publisher, subscribers, events = make_world(
            shard_count=4, n_subscribers=10, drop_rate=0.25, seed=13,
            max_retries=20)
        home = mesh.shard_for("publisher")
        for index in range(6):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["m%d" % index]))
        mesh.run_until_idle()
        assert network.pending() == 0
        for shard in mesh.shards:
            assert shard.pending_deliveries() == 0
            assert shard.forward_events <= 6 * max(1, len(mesh.shards) - 1)
        # A dropped publish can only shrink deliveries, never duplicate.
        for got in events.values():
            names = [event.getPersonName() for event in got]
            assert len(names) == len(set(names))


class TestGossipRefcountsWithBufferedEvents:
    """Satellite: unsubscribing while events for the subscriber are still
    buffered in shard delivery queues must neither crash delivery nor
    leak summary refcounts."""

    def test_unsubscribe_while_events_buffered(self):
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=2)
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        home = mesh.shard_for("publisher")
        other = next(sid for sid in mesh.shard_ids if sid != home)

        got = []
        subscriber = TpsPeer("buff-sub", network)
        sid = subscriber.subscribe_remote(other, person_java(), got.append)

        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["q0"]))
        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["q1"]))
        network.flush()  # publishes reach the home shard (buffered there)
        for shard in mesh.shards:
            shard.flush_delivery()  # forwards enqueued toward `other`
        network.flush()  # forwards land: events now buffered for buff-sub
        assert mesh.shard(other).pending_deliveries() > 0

        subscriber.unsubscribe_remote(other, sid)
        # The last conforming subscriber left: every refcount must be zero
        # even though its events are still sitting in delivery buffers.
        assert all(shard.summaries() == [] for shard in mesh.shards)
        assert all(not shard._summaries for shard in mesh.shards)

        mesh.run_until_idle()  # buffered deliveries drain without crashing
        assert network.stats.handler_errors == 0
        assert all(shard.pending_deliveries() == 0 for shard in mesh.shards)

    def test_refcounts_zero_after_interleaved_unsubscribes(self):
        """Two subscribers sharing a type, unsubscribing at different
        points of the buffered pipeline: counts go 2 -> 1 -> 0."""
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=2)
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        home = mesh.shard_for("publisher")
        other = next(sid for sid in mesh.shard_ids if sid != home)
        expected = person_java()

        got_a, got_b = [], []
        sub_a = TpsPeer("ref-a", network)
        sub_b = TpsPeer("ref-b", network)
        id_a = sub_a.subscribe_remote(other, expected, got_a.append)
        id_b = sub_b.subscribe_remote(other, expected, got_b.append)
        assert mesh.shard(home)._summaries[(other, str(expected.guid))][1] == 2

        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["mid"]))
        network.flush()
        sub_a.unsubscribe_remote(other, id_a)
        assert mesh.shard(home)._summaries[(other, str(expected.guid))][1] == 1
        mesh.run_until_idle()
        sub_b.unsubscribe_remote(other, id_b)
        assert (other, str(expected.guid)) not in mesh.shard(home)._summaries
        assert network.stats.handler_errors == 0
        assert len(got_b) == 1


def make_durable_world(tmp_path, shard_count=3, n_subscribers=4,
                       drop_rate=0.0, seed=0, **broker_kwargs):
    network = SimulatedNetwork(drop_rate=drop_rate, seed=seed)
    mesh = BrokerMesh(network, shard_count=shard_count,
                      log_root=str(tmp_path / "mesh-logs"), **broker_kwargs)
    publisher = TpsPeer("publisher", network, **broker_kwargs)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    return network, mesh, publisher


class TestDurableMesh:
    """The persistence tentpole, mesh-side: cursor replay + crash recovery."""

    def test_late_durable_subscriber_gets_backlog_then_live(self, tmp_path):
        """Acceptance: a subscriber attached after N published events
        receives exactly the conforming backlog in publish order, then
        live events, with no duplicates across the ack boundary."""
        network, mesh, publisher = make_durable_world(tmp_path)
        home = mesh.shard_for("publisher")
        n_backlog = 6
        for index in range(n_backlog):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["e%d" % index]))
        mesh.run_until_idle()

        got = []
        late = TpsPeer("late-sub", network)
        late.subscribe_durable_remote(home, person_java(), got.append,
                                      cursor="late-c")
        assert got == []  # replay is queue-driven, not inline
        mesh.run_until_idle()
        assert [e.getPersonName() for e in got] == \
            ["e%d" % i for i in range(n_backlog)]

        for index in range(n_backlog, n_backlog + 3):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["e%d" % index]))
        mesh.run_until_idle()
        names = [e.getPersonName() for e in got]
        assert names == ["e%d" % i for i in range(n_backlog + 3)]
        assert len(names) == len(set(names))  # no duplicates anywhere
        shard = mesh.shard(home)
        assert shard.cursors.get("late-c") == shard.event_log.next_offset
        assert shard.pending_ack_count() == 0

    def test_backlog_includes_events_forwarded_from_other_shards(self, tmp_path):
        """A shard logs forwarded-in events too, so a late durable
        subscriber homed there replays events whichever shard admitted
        them first."""
        network, mesh, publisher = make_durable_world(tmp_path, shard_count=2)
        home = mesh.shard_for("publisher")
        other = next(sid for sid in mesh.shard_ids if sid != home)

        # A live subscriber at `other` makes home forward (and other log).
        live = []
        anchor = TpsPeer("anchor-sub", network)
        anchor.subscribe_remote(other, person_java(), live.append)
        for index in range(4):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["f%d" % index]))
        mesh.run_until_idle()
        assert len(live) == 4

        got = []
        late = TpsPeer("late-other", network)
        late.subscribe_durable_remote(other, person_java(), got.append,
                                      cursor="late-other-c")
        mesh.run_until_idle()
        assert [e.getPersonName() for e in got] == ["f%d" % i for i in range(4)]

    def test_restart_shard_loses_nothing_acked(self, tmp_path):
        """Acceptance: restarting a shard with a non-empty log loses zero
        acked-past events and the durable subscription keeps working."""
        network, mesh, publisher = make_durable_world(tmp_path)
        home = mesh.shard_for("publisher")
        got = []
        durable = TpsPeer("d-sub", network)
        durable.subscribe_durable_remote(home, person_java(), got.append,
                                         cursor="d-c")
        for index in range(5):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["a%d" % index]))
        mesh.run_until_idle()
        assert len(got) == 5

        restarted = mesh.restart_shard(home)
        assert restarted is mesh.shard(home)
        mesh.run_until_idle()
        # Everything was acked: the restart replays nothing.
        assert [e.getPersonName() for e in got] == \
            ["a%d" % i for i in range(5)]

        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["a5"]))
        mesh.run_until_idle()
        assert [e.getPersonName() for e in got][-1] == "a5"

    def test_restart_shard_redelivers_unacked(self, tmp_path):
        """Acceptance: unacked events are redelivered after a crash
        (at-least-once); acked ones are never duplicated."""
        network, mesh, publisher = make_durable_world(tmp_path, shard_count=2)
        home = mesh.shard_for("publisher")
        got = []
        durable = TpsPeer("d-sub", network)
        durable.subscribe_durable_remote(home, person_java(), got.append,
                                         cursor="d-c")
        for index in range(3):
            publisher.publish_async(
                home, publisher.new_instance("demo.a.Person", ["k%d" % index]))
        mesh.run_until_idle()  # k0-k2 delivered AND acked

        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["k3"]))
        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["k4"]))
        mesh.flush()  # events logged + buffered on the shard
        mesh.flush()  # delivered to the subscriber; acks still queued
        mesh.restart_shard(home)  # crash before the acks are processed
        mesh.run_until_idle()

        names = [e.getPersonName() for e in got]
        for acked in ("k0", "k1", "k2"):
            assert names.count(acked) == 1
        for unacked in ("k3", "k4"):
            assert names.count(unacked) >= 1  # at-least-once
        assert set(names) == {"k%d" % i for i in range(5)}

    def test_restart_shard_rebuilds_forwarding_summaries(self, tmp_path):
        """A restarted shard re-learns sibling subscriptions (and siblings
        re-learn its durable ones), so cross-shard publish still works."""
        network, mesh, publisher = make_durable_world(tmp_path, shard_count=3)
        home = mesh.shard_for("publisher")
        other = next(sid for sid in mesh.shard_ids if sid != home)
        remote_got = []
        remote = TpsPeer("remote-sub", network)
        remote.subscribe_remote(other, person_java(), remote_got.append)

        mesh.restart_shard(home)
        mesh.run_until_idle()
        assert len(mesh.shard(home).summaries()) >= 1  # resynced from sibling

        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["after"]))
        mesh.run_until_idle()
        assert [e.getPersonName() for e in remote_got] == ["after"]

    def test_restart_shard_lossy_fabric_eventually_delivers(self, tmp_path):
        """Acceptance: recovery holds on a lossy fabric — unacked events
        survive crashes and repeated replay converges on full delivery."""
        network, mesh, publisher = make_durable_world(
            tmp_path, shard_count=2, drop_rate=0.15, seed=23, max_retries=20)
        home = mesh.shard_for("publisher")
        got = []
        durable = TpsPeer("d-sub", network, max_retries=20)
        durable.subscribe_durable_remote(home, person_java(), got.append,
                                         cursor="d-c")
        wanted = {"l%d" % i for i in range(6)}
        # Publish on the retrying synchronous path: durability begins at
        # the shard's append, so getting INTO the log must not race drops.
        for index in range(6):
            publisher.publish(
                home, publisher.new_instance("demo.a.Person", ["l%d" % index]))
        assert mesh.shard(home).event_log.record_count == 6
        mesh.flush()  # deliveries and acks now race the loss model
        mesh.restart_shard(home)
        mesh.run_until_idle()

        # Replay is at-least-once per restart: a dropped replay batch is
        # simply unacked, so another restart replays it again.
        for _ in range(10):
            if {e.getPersonName() for e in got} == wanted:
                break
            mesh.restart_shard(home)
            mesh.run_until_idle()
        assert {e.getPersonName() for e in got} == wanted
        assert network.stats.dropped > 0  # the fabric really was lossy

    def test_mesh_without_log_root_rejects_durable_subscribe(self, tmp_path):
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=2)  # no log_root
        peer = TpsPeer("p", network)
        from repro.net.network import NetworkError
        with pytest.raises(NetworkError):
            peer.subscribe_durable_remote(mesh.shard_ids[0], person_java(),
                                          lambda v: None, cursor="c")

    def test_stats_surface_durability_counters(self, tmp_path):
        network, mesh, publisher = make_durable_world(tmp_path)
        home = mesh.shard_for("publisher")
        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["s0"]))
        mesh.run_until_idle()
        got = []
        late = TpsPeer("late", network)
        late.subscribe_durable_remote(home, person_java(), got.append,
                                      cursor="late-c")
        mesh.run_until_idle()
        snapshot = mesh.stats()
        assert snapshot["events_replayed"] == 1
        shard_stats = snapshot["shards"][home]
        assert shard_stats["log"]["records"] >= 1
        assert shard_stats["cursors"]["late-c"] == \
            mesh.shard(home).event_log.next_offset
        assert shard_stats["pending_acks"] == 0


class TestRunUntilIdleBoundary:
    def test_final_round_draining_is_not_a_stall(self):
        """A mesh that goes idle exactly on its last allowed round must
        return normally, not report a phantom stall."""
        network, mesh, publisher, subscribers, events = make_world(
            shard_count=2, n_subscribers=2)
        home = mesh.shard_for("publisher")
        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["edge"]))
        # Count how many rounds a full drain takes, then rerun with
        # exactly that budget.
        rounds = 0
        while mesh.flush() or network.pending():
            rounds += 1
        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["edge2"]))
        total = mesh.run_until_idle(max_rounds=rounds)
        assert total > 0
        assert network.stats.stalled == 0


class TestMultiValueRecordLocalDurable:
    def test_partial_handler_failure_leaves_record_unacked(self, tmp_path):
        """Two events forwarded as ONE record: a local durable handler at
        the receiving shard that crashes on the second value must leave
        the WHOLE record unacked, so replay redelivers both values."""
        network, mesh, publisher = make_durable_world(tmp_path, shard_count=2)
        home = mesh.shard_for("publisher")
        other = next(sid for sid in mesh.shard_ids if sid != home)

        got = []

        def flaky(view):
            got.append(view.getPersonName())
            if view.getPersonName() == "v1" and got.count("v1") == 1:
                raise RuntimeError("crash on second value, first time")

        mesh.shard(other).subscribe_durable(person_java(), flaky,
                                            cursor="flaky-c")
        # Publish both events as ONE durable batch: it is logged as ONE
        # record at `home`, crosses the shard boundary as ONE forwarded
        # frame, and lands as ONE log record at `other`.
        publisher.publish_durable(
            home, [publisher.new_instance("demo.a.Person", ["v0"]),
                   publisher.new_instance("demo.a.Person", ["v1"])])
        mesh.run_until_idle()
        shard = mesh.shard(other)
        assert got == ["v0", "v1"]  # v1's handler crashed after being called
        assert shard.event_log.record_count == 1  # really one record
        # The record is NOT acked past: v1 is redeliverable.
        assert shard.cursors.get("flaky-c") < shard.event_log.next_offset

        # Re-attach under the same cursor: the record replays whole, the
        # handler succeeds this time, and the cursor catches up.
        redelivered = []
        shard.subscribe_durable(person_java(), redelivered.append,
                                cursor="flaky-c")
        mesh.run_until_idle()
        assert [v.getPersonName() for v in redelivered] == ["v0", "v1"]
        assert shard.cursors.get("flaky-c") == shard.event_log.next_offset
