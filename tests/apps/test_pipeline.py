"""Stage-isolation tests for the unified delivery pipeline.

Each stage of :mod:`repro.apps.tps.pipeline` is exercised on its own,
against stubs where the stage contract allows it — the point of the
refactor is that admission, conformance, durable append, buffering and
ack tracking are individually testable without standing up a broker.
"""

import pytest

from repro.apps.tps.broker import DurableSubscription, Subscription
from repro.apps.tps.pipeline import (
    AckTracker,
    AdmissionStage,
    BufferedDelivery,
    DeliveryPipeline,
    DirectDelivery,
    DurabilityStage,
    LocalDelivery,
    RoutingStage,
)
from repro.apps.tps.routing import RoutingIndex
from repro.core.context import ConformanceOptions
from repro.core.rules import ConformanceChecker
from repro.fixtures import account_csharp, person_assembly_pair, person_java
from repro.net.network import NetworkStats, UnknownPeerError
from repro.persistence import CursorStore, EventLog
from repro.runtime.loader import Runtime
from repro.serialization.envelope import EnvelopeCodec
from repro.transport.protocol import ProtocolError


def make_runtime():
    runtime = Runtime()
    asm_a, _ = person_assembly_pair()
    runtime.load_assembly(asm_a)
    return runtime


def person(runtime, name):
    return runtime.new_instance("demo.a.Person", [name])


class _StubNetwork:
    def __init__(self):
        self.stats = NetworkStats()


class _StubHost:
    """The slice of the InteropPeer surface the dispatch stages use."""

    def __init__(self, runtime):
        self.peer_id = "stub"
        self.codec = EnvelopeCodec(runtime)
        self.network = _StubNetwork()
        self.batches = []   # (dst, payload, count)
        self.posts = []     # (dst, kind, payload)
        self.gone = set()

    def send_payload_batch(self, dst, payload, count):
        if dst in self.gone:
            raise UnknownPeerError(dst)
        self.batches.append((dst, payload, count))

    def post_async(self, dst, kind, payload):
        if dst in self.gone:
            raise UnknownPeerError(dst)
        self.posts.append((dst, kind, payload))

    def _materialize_batch(self, envelope, src):
        return self.codec.unwrap_batch(envelope)


class TestAckTracker:
    def make(self, cap=None):
        advanced = []
        tracker = AckTracker("broker",
                             advance=lambda name, to: advanced.append((name, to)),
                             cap=cap)
        return tracker, advanced

    def test_contiguous_prefix_advance(self):
        """An ack for a later batch never advances past an earlier one
        still in flight."""
        tracker, advanced = self.make()
        first = tracker.issue("peer", (("c", 0, 2),))
        second = tracker.issue("peer", (("c", 2, 5),))
        assert tracker.acknowledge(second, "peer")
        assert advanced == []  # the first batch is still in flight
        assert tracker.acknowledge(first, "peer")
        assert advanced == [("c", 5)]  # both batches fold into one advance
        assert not tracker.has_inflight("c")

    def test_ack_from_wrong_peer_is_ignored(self):
        tracker, advanced = self.make()
        token = tracker.issue("peer", (("c", 0, 1),))
        assert not tracker.acknowledge(token, "intruder")
        assert tracker.acknowledge(token, "peer")
        assert advanced == [("c", 1)]

    def test_discard_blocks_cursor_at_range_start(self):
        tracker, advanced = self.make()
        token = tracker.issue("peer", (("c", 3, 7),))
        tracker.discard(token)
        assert tracker.blocks == {"c": 3}
        assert tracker.pending_count() == 0

    def test_cap_evicts_oldest(self):
        tracker, _ = self.make(cap=lambda: 2)
        tokens = [tracker.issue("peer", (("c", i, i + 1),)) for i in range(4)]
        assert tracker.pending_count() == 2
        assert tokens[0] not in tracker.pending
        assert tokens[3] in tracker.pending
        assert tracker.blocks["c"] == 0  # evicted ranges stay unacked

    def test_forget_cursor_retires_tokens_entirely(self):
        """A forgotten cursor's ranges vanish from shared tokens too, so
        later cap eviction cannot re-block it."""
        tracker, _ = self.make()
        shared = tracker.issue("peer", (("a", 0, 1), ("b", 0, 1)))
        solo = tracker.issue("peer", (("a", 1, 2),))
        tracker.forget_cursor("a")
        assert solo not in tracker.pending
        assert tracker.pending[shared][1] == (("b", 0, 1),)
        assert "a" not in tracker.windows and "a" not in tracker.blocks

    def test_epochs_differ_across_trackers(self):
        first, _ = self.make()
        second, _ = self.make()
        assert first.issue("p", (("c", 0, 1),)) != \
            second.issue("p", (("c", 0, 1),))


class _LogHost:
    def __init__(self, runtime):
        self.peer_id = "host"
        self.codec = EnvelopeCodec(runtime)


class TestDurabilityStage:
    def make(self, tmp_path, retain_unacked=False, **log_kwargs):
        runtime = make_runtime()
        log = EventLog(str(tmp_path / "events"), **log_kwargs)
        cursors = CursorStore(str(tmp_path / "cursors.json"))
        stage = DurabilityStage(_LogHost(runtime), log, cursors,
                                retain_unacked=retain_unacked)
        return stage, runtime

    def test_settle_local_requires_every_value_handled(self, tmp_path):
        stage, runtime = self.make(tmp_path)
        stage.cursors.register("good")
        stage.cursors.register("bad")
        offset = stage.append_values([person(runtime, "x")], "pub")
        stage.settle_local({"good": True, "bad": False}, offset)
        assert stage.cursors.get("good") == offset + 1
        assert stage.cursors.get("bad") == 0

    def test_advance_capped_by_block_and_retired_cursor(self, tmp_path):
        stage, _ = self.make(tmp_path)
        stage.cursors.register("c")
        stage.tracker.block("c", 4)
        stage.advance("c", 9)
        assert stage.cursors.get("c") == 4  # capped at the block
        stage.advance("ghost", 7)  # never registered: a no-op
        assert "ghost" not in stage.cursors

    def test_retention_floor_follows_slowest_cursor(self, tmp_path):
        stage, runtime = self.make(tmp_path, retain_unacked=True)
        stage.cursors.register("slow")
        stage.cursors.register("fast")
        for index in range(4):
            stage.append_values([person(runtime, "e%d" % index)], "pub")
        stage.advance("fast", 4)
        assert stage.event_log.retention_floor == 0  # slow pins the floor
        stage.advance("slow", 2)
        assert stage.event_log.retention_floor == 2
        assert stage.prune_cursors(10) == []  # both cursors are active

    def test_compact_bounded_by_slowest_cursor(self, tmp_path):
        stage, runtime = self.make(tmp_path, segment_max_bytes=600)
        stage.cursors.register("c")
        for index in range(12):
            stage.append_values([person(runtime, "same-key")], "pub")
        stage.advance("c", 5)  # records >= 5 are unacked
        stage.compact()
        surviving = [record.offset for record in stage.event_log.replay()]
        assert [o for o in surviving if o >= 5] == list(range(5, 12))


class TestAdmissionStage:
    def test_materialize_record_roundtrip(self, tmp_path):
        runtime = make_runtime()
        host = _StubHost(runtime)
        stage = AdmissionStage(host)
        log = EventLog(str(tmp_path))
        offset = log.append(host.codec.encode_batch(
            [person(runtime, "alice")], origin="pub"), origin="pub")
        values = stage.materialize_record(log.read(offset), "pub")
        assert [value.GetName() for value in values] == ["alice"]
        assert stage.stats.replay_failures == 0

    def test_materialize_failure_is_counted_not_raised(self, tmp_path):
        runtime = make_runtime()
        host = _StubHost(runtime)

        def broken(envelope, src):
            raise ProtocolError("no code source")

        host._materialize_batch = broken
        stage = AdmissionStage(host)
        log = EventLog(str(tmp_path))
        offset = log.append(host.codec.encode_batch(
            [person(runtime, "x")], origin="pub"), origin="pub")
        assert stage.materialize_record(log.read(offset), "pub") is None
        assert stage.stats.replay_failures == 1


class TestRoutingStage:
    def test_conforming_filters_like_live_publish(self):
        runtime = make_runtime()
        checker = ConformanceChecker(options=ConformanceOptions.pragmatic())
        index = RoutingIndex(checker, runtime.registry)
        stage = RoutingStage(index)
        expected = person_java()
        runtime.registry.register(expected)
        runtime.registry.register(account_csharp())
        values = [person(runtime, "a"), person(runtime, "b")]
        matched = stage.conforming(values, expected)
        assert [value.GetName() for value, _ in matched] == ["a", "b"]
        assert stage.conforming(values, account_csharp()) == []


class TestBufferedDelivery:
    def make(self):
        runtime = make_runtime()
        host = _StubHost(runtime)
        delivery = BufferedDelivery(host, durability=None,
                                    forward_kind="mesh_forward")
        return runtime, host, delivery

    def sub(self, sid, peer):
        return Subscription(person_java(), None, sid, peer_id=peer)

    def test_one_message_per_destination(self):
        runtime, host, delivery = self.make()
        a, b = person(runtime, "a"), person(runtime, "b")
        ctx = delivery.begin([a, b], "pub", None, None)
        delivery.remote(ctx, self.sub(1, "east"), a, None)
        delivery.remote(ctx, self.sub(1, "east"), b, None)
        delivery.remote(ctx, self.sub(2, "west"), a, None)
        delivery.remote(ctx, self.sub(2, "west"), b, None)
        assert delivery.pending() == 4
        assert delivery.flush() == 2
        assert delivery.pending() == 0
        assert [(dst, count) for dst, _, count in host.batches] == \
            [("east", 2), ("west", 2)]
        # Identical batches bound for different peers share encoded bytes.
        assert host.batches[0][1] is host.batches[1][1]

    def test_forward_flow_shares_the_encoder(self):
        runtime, host, delivery = self.make()
        value = person(runtime, "f")
        delivery.buffer_forward("shard-2", "pub", value)
        assert delivery.pending() == 1
        assert delivery.flush() == 1
        (dst, kind, payload), = host.posts
        assert (dst, kind) == ("shard-2", "mesh_forward")
        envelope = host.codec.parse(payload)
        assert envelope.origin == "pub"

    def test_departed_destination_is_a_counted_drop(self):
        runtime, host, delivery = self.make()
        ctx = delivery.begin([], "pub", None, None)
        delivery.remote(ctx, self.sub(1, "ghost"), person(runtime, "x"), None)
        host.gone.add("ghost")
        assert delivery.flush() == 0
        assert host.network.stats.dropped == 1


class TestPipelineProcess:
    def make_pipeline(self, isolate=False):
        runtime = make_runtime()
        checker = ConformanceChecker(options=ConformanceOptions.pragmatic())
        index = RoutingIndex(checker, runtime.registry)
        pipeline = DeliveryPipeline(routing=RoutingStage(index),
                                    delivery=LocalDelivery())
        return runtime, index, pipeline

    def test_fan_out_counts_and_skips_echo(self):
        runtime, index, pipeline = self.make_pipeline()
        got = []
        index.add(Subscription(person_java(), got.append, 1))
        echo = Subscription(person_java(), got.append, 2, peer_id="pub")
        echo.handler = got.append
        index.add(echo)
        result = pipeline.process([person(runtime, "n")], origin="pub")
        assert result.deliveries == 1  # the publisher's own sub is skipped
        assert pipeline.stats.events_routed == 1
        assert len(got) == 1

    def test_view_shared_across_group(self):
        """One translated view per (entry, value), shared by the group —
        the LocalBroker guarantee, now owned by the pipeline."""
        runtime, index, pipeline = self.make_pipeline()
        views = []
        index.add(Subscription(person_java(), views.append, 1))
        index.add(Subscription(person_java(), views.append, 2))
        pipeline.process([person(runtime, "shared")], origin=None)
        assert len(views) == 2
        assert views[0] is views[1]

    def test_local_delivery_propagates_handler_errors(self):
        runtime, index, pipeline = self.make_pipeline()

        def explode(view):
            raise RuntimeError("boom")

        index.add(Subscription(person_java(), explode, 1))
        with pytest.raises(RuntimeError):
            pipeline.process([person(runtime, "n")], origin=None)


class TestAckSpliceCounters:
    """The acceptance gate on the durable live path: personalising a
    stored record frame with an ack token is a header byte splice —
    ``header_splices`` counts it, ``header_renders`` stays at zero."""

    def make_durable(self):
        runtime = make_runtime()
        host = _StubHost(runtime)
        return runtime, host, DurabilityStage(host)

    def test_direct_durable_delivery_splices_stored_frame(self):
        runtime, host, durability = self.make_durable()
        delivery = DirectDelivery(host, durability)
        frame = host.codec.encode_batch([person(runtime, "d")])
        envelope = host.codec.parse(frame)
        stats = host.codec.stats
        stats.header_renders = 0
        stats.header_splices = 0
        ctx = delivery.begin([None], "pub", 5, envelope, payload=frame)
        subs = [DurableSubscription(person_java(), None, index,
                                    peer_id="peer-%d" % index,
                                    cursor_name="c%d" % index)
                for index in range(3)]
        for sub in subs:
            assert delivery.remote(ctx, sub, None, 5)
        assert stats.header_renders == 0
        assert stats.header_splices == len(subs)
        # Every stamped frame carries its own live token over the SAME
        # payload bytes the record was stored with.
        tokens = set()
        for _, payload, _ in host.batches:
            stamped = host.codec.parse(payload)
            assert stamped.ack is not None
            tokens.add(stamped.ack)
            assert stamped.payload_bytes() == envelope.payload_bytes()
        assert len(tokens) == len(subs)
        assert durability.tracker.pending_count() == len(subs)

    def test_buffered_flush_stamps_ack_without_rerender(self):
        runtime, host, durability = self.make_durable()
        delivery = BufferedDelivery(host, durability=durability,
                                    forward_kind="mesh_forward")
        frame = host.codec.encode_batch([person(runtime, "b")])
        batch = host.codec.lazy_batch(host.codec.parse(frame))
        ctx = delivery.begin([None], "pub", 9, batch.envelope,
                             payload=frame)
        sub = DurableSubscription(person_java(), None, 1, peer_id="east",
                                  cursor_name="c-east")
        assert delivery.remote_frame(ctx, sub, batch, 0, 9)
        delivery.finish(ctx)
        stats = host.codec.stats
        stats.header_renders = 0
        stats.header_splices = 0
        assert delivery.flush() == 1
        assert stats.header_renders == 0
        assert stats.header_splices == 1
        (_, payload, _), = host.batches
        stamped = host.codec.parse(payload)
        assert stamped.ack is not None
        assert stamped.payload_bytes() == batch.envelope.payload_bytes()


class TestDurableSubscriptionDuckTyping:
    def test_cursor_name_of(self):
        from repro.apps.tps.pipeline import cursor_name_of
        plain = Subscription(person_java(), None, 1)
        durable = DurableSubscription(person_java(), None, 2,
                                      cursor_name="c")
        assert cursor_name_of(plain) is None
        assert cursor_name_of(durable) == "c"
