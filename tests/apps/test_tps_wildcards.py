"""TPS with wildcard interests — the paper's rule (i) generalisation
("In order to be more general, wildcards could be allowed") applied to
publish/subscribe topic types."""

import pytest

from repro.apps.tps import LocalBroker
from repro.core import ConformanceChecker, ConformanceOptions, NamePolicy
from repro.cts.builder import TypeBuilder
from repro.runtime.loader import Runtime


def event_type(name, namespace="events"):
    return (
        TypeBuilder("%s.%s" % (namespace, name), assembly_name="events")
        .field("payload", "string", visibility="private")
        .getter("GetPayload", "payload", "string")
        .ctor([("p", "string")], body=lambda self, p: self.set_field("payload", p))
        .build()
    )


@pytest.fixture
def runtime():
    rt = Runtime()
    for name in ("StockEvent", "SportsEvent", "WeatherAlert"):
        rt.load_type(event_type(name))
    return rt


@pytest.fixture
def wildcard_broker():
    options = ConformanceOptions(
        name_policy=NamePolicy(allow_wildcards=True)
    )
    return LocalBroker(ConformanceChecker(options=options))


class TestWildcardSubscriptions:
    def test_star_event_matches_event_suffixed_types(self, runtime, wildcard_broker):
        pattern = event_type("*Event", namespace="patterns")
        got = []
        wildcard_broker.subscribe(pattern, got.append)

        wildcard_broker.publish(runtime.new_instance("events.StockEvent", ["AAPL"]))
        wildcard_broker.publish(runtime.new_instance("events.SportsEvent", ["score"]))
        wildcard_broker.publish(runtime.new_instance("events.WeatherAlert", ["storm"]))

        assert len(got) == 2  # both *Event types, not the Alert
        assert {view.GetPayload() for view in got} == {"AAPL", "score"}

    def test_pattern_still_checks_structure(self, runtime, wildcard_broker):
        """Wildcards relax the name, not the safety: a structurally alien
        *Event type is still filtered."""
        alien = (
            TypeBuilder("events.RogueEvent", assembly_name="events")
            .method("Detonate", [], "void", body=lambda self: None)
            .build()
        )
        runtime.load_type(alien)
        pattern = event_type("*Event", namespace="patterns")
        got = []
        wildcard_broker.subscribe(pattern, got.append)
        wildcard_broker.publish(runtime.new_instance("events.RogueEvent"))
        assert got == []

    def test_question_mark_pattern(self, runtime):
        options = ConformanceOptions(name_policy=NamePolicy(allow_wildcards=True))
        checker = ConformanceChecker(options=options)
        pattern = event_type("?????Event", namespace="patterns")
        assert checker.conforms(event_type("StockEvent"), pattern).ok      # 5 chars
        assert not checker.conforms(event_type("SportsEvent"), pattern).ok  # 6 chars

    def test_plain_broker_rejects_patterns(self, runtime):
        broker = LocalBroker()  # pragmatic policy, no wildcards
        got = []
        broker.subscribe(event_type("*Event", namespace="patterns"), got.append)
        broker.publish(runtime.new_instance("events.StockEvent", ["x"]))
        assert got == []
