"""Hypothesis property suite for cross-shard log replication.

The safety invariant, under arbitrary interleavings of publish, drain,
crash and restart: for every shard S and every follower F of S, the
replica log F keeps for S contains **every** origin record of S below the
replication watermark S holds for F (the last high-water F acknowledged)
— byte-identical, at the origin's own offsets.  Completeness above the
watermark is at-least-once territory (a batch may still be in flight or
have died with a crashed incarnation); below it, a hole is a bug.
"""

import shutil
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.tps import BrokerMesh, TpsPeer
from repro.fixtures import person_assembly_pair
from repro.net.network import SimulatedNetwork
from repro.serialization.envelope import envelope_home

N_SHARDS = 3

#: One step of an interleaving: publish an event homed on shard i, drain
#: one mesh round, drain to idle, or crash-restart shard i.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("publish"), st.integers(0, N_SHARDS - 1)),
        st.tuples(st.just("flush"), st.just(0)),
        st.tuples(st.just("drain"), st.just(0)),
        st.tuples(st.just("restart"), st.integers(0, N_SHARDS - 1)),
    ),
    min_size=1, max_size=14,
)


def origin_offsets(shard):
    return {record.offset for record in shard.event_log.replay()
            if envelope_home(record.payload) is None}


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(ops=ops, factor=st.integers(1, 2))
def test_follower_superset_of_origin_up_to_watermark(ops, factor):
    tmp = tempfile.mkdtemp(prefix="repl-prop-")
    try:
        network = SimulatedNetwork()
        mesh = BrokerMesh(network, shard_count=N_SHARDS,
                          log_root=tmp + "/logs",
                          replication_factor=factor)
        publisher = TpsPeer("publisher", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)

        sequence = 0
        for op, index in ops:
            if op == "publish":
                publisher.publish_async(
                    mesh.shard_ids[index],
                    publisher.new_instance("demo.a.Person",
                                           ["v%d" % sequence]))
                sequence += 1
            elif op == "flush":
                mesh.flush()
            elif op == "drain":
                mesh.run_until_idle()
            else:
                mesh.restart_shard(mesh.shard_ids[index])
        mesh.run_until_idle()

        for shard in mesh.shards:
            origin = origin_offsets(shard)
            assert shard.replication is not None
            for follower_id, marks in shard.replication.watermarks().items():
                follower = mesh.shard(follower_id)
                replica = follower.replicas.log_for(shard.peer_id,
                                                    create=False)
                held = ({record.offset for record in replica.replay()}
                        if replica is not None else set())
                below_watermark = {offset for offset in origin
                                   if offset < marks["acked"]}
                missing = below_watermark - held
                assert missing == set(), (
                    "follower %s is missing origin records %r of %s below "
                    "its acked watermark %d"
                    % (follower_id, sorted(missing), shard.peer_id,
                       marks["acked"]))
                # and what it holds is byte-identical to the origin
                if replica is not None:
                    for record in replica.replay():
                        if record.offset in origin:
                            assert record.payload == shard.event_log.read(
                                record.offset).payload
        mesh.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
