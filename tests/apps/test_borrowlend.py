"""Tests for the borrow/lend abstraction."""

import pytest

from repro.apps.borrowlend import BorrowError, BorrowLendPeer
from repro.cts.assembly import Assembly
from repro.fixtures import account_csharp, person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.remoting.dynamic import DynamicProxy


@pytest.fixture
def world():
    network = SimulatedNetwork()
    lender = BorrowLendPeer("lender", network)
    borrower = BorrowLendPeer("borrower", network)
    asm_a, _ = person_assembly_pair()
    lender.host_assembly(asm_a)
    return network, lender, borrower


class TestLending:
    def test_lend_lists_offer(self, world):
        _, lender, _ = world
        resource = lender.new_instance("demo.a.Person", ["R"])
        offer = lender.lend("r1", resource)
        assert offer.available
        assert lender.offers() == [offer]

    def test_lend_requires_cts_type(self, world):
        _, lender, _ = world
        with pytest.raises(BorrowError):
            lender.lend("bad", 42)

    def test_withdraw(self, world):
        _, lender, _ = world
        lender.lend("r1", lender.new_instance("demo.a.Person", ["R"]))
        lender.withdraw("r1")
        assert lender.offers() == []


class TestBorrowing:
    def test_borrow_by_implicit_conformance(self, world):
        _, lender, borrower = world
        lender.lend("p", lender.new_instance("demo.a.Person", ["Lent"]))
        lease = borrower.borrow("lender", person_java())
        assert isinstance(lease.view, DynamicProxy)
        assert lease.view.getPersonName() == "Lent"

    def test_borrowed_resource_unavailable(self, world):
        _, lender, borrower = world
        offer = lender.lend("p", lender.new_instance("demo.a.Person", ["L"]))
        borrower.borrow("lender", person_java())
        assert not offer.available
        assert offer.lent_to == "borrower"

    def test_second_borrow_fails_until_returned(self, world):
        network, lender, borrower = world
        lender.lend("p", lender.new_instance("demo.a.Person", ["L"]))
        lease = borrower.borrow("lender", person_java())
        other = BorrowLendPeer("other", network)
        with pytest.raises(BorrowError):
            other.borrow("lender", person_java())
        lease.give_back()
        assert other.borrow("lender", person_java()).view.getPersonName() == "L"

    def test_no_conformant_resource(self, world):
        _, lender, borrower = world
        lender.host_assembly(Assembly("bank", [account_csharp()]))
        lender.lend("acct", lender.new_instance("demo.bank.Account", ["o", 7]))
        with pytest.raises(BorrowError):
            borrower.borrow("lender", person_java())

    def test_mutations_visible_to_lender(self, world):
        _, lender, borrower = world
        resource = lender.new_instance("demo.a.Person", ["Before"])
        lender.lend("p", resource)
        lease = borrower.borrow("lender", person_java())
        lease.view.setPersonName("After")
        assert resource.GetName() == "After"


class TestLeases:
    def test_unlimited_lease_never_expires(self, world):
        _, lender, borrower = world
        lender.lend("p", lender.new_instance("demo.a.Person", ["L"]))
        lease = borrower.borrow("lender", person_java())
        assert not lease.expired
        assert lease.expires_at_s is None

    def test_timed_lease_expiry(self, world):
        network, lender, borrower = world
        lender.lend("p", lender.new_instance("demo.a.Person", ["T"]),
                    max_duration_s=0.5)
        lease = borrower.borrow("lender", person_java())
        assert not lease.expired
        network.clock_s += 1.0  # simulated time passes
        assert lease.expired

    def test_reclaim_expired(self, world):
        network, lender, borrower = world
        offer = lender.lend("p", lender.new_instance("demo.a.Person", ["T"]),
                            max_duration_s=0.5)
        borrower.borrow("lender", person_java())
        assert not offer.available
        network.clock_s += 1.0
        assert lender.reclaim_expired() == ["p"]
        assert offer.available

    def test_reclaim_ignores_live_leases(self, world):
        network, lender, borrower = world
        offer = lender.lend("p", lender.new_instance("demo.a.Person", ["T"]),
                            max_duration_s=100.0)
        borrower.borrow("lender", person_java())
        assert lender.reclaim_expired() == []
        assert not offer.available

    def test_double_return_is_error(self, world):
        _, lender, borrower = world
        lender.lend("p", lender.new_instance("demo.a.Person", ["L"]))
        lease = borrower.borrow("lender", person_java())
        lease.give_back()
        with pytest.raises(Exception):
            lease.give_back()
