"""Elastic membership: live shard add/remove/rebalance on the broker
mesh, with the zero-loss / no-duplicate delivery contract under churn,
crashes mid-handoff, and a seeded chaos sweep (MEMBERSHIP_CHAOS_SEED)."""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.tps import BrokerMesh, TpsPeer
from repro.apps.tps import mesh as mesh_module
from repro.apps.tps.topology import Topology
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import NetworkError, SimulatedNetwork


def make_mesh(log_root, shards=3, replication_factor=1, seed=0,
              name="m"):
    network = SimulatedNetwork(seed=seed)
    mesh = BrokerMesh(network, topology=Topology.sized(shards, name),
                      log_root=str(log_root),
                      replication_factor=replication_factor)
    publisher = TpsPeer("publisher", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    return network, mesh, publisher


def durable_subscriber(network, mesh, peer_id, cursor):
    got = []
    peer = TpsPeer(peer_id, network)
    peer.subscribe_durable_remote(mesh.shard_for(peer_id), person_java(),
                                  got.append, cursor=cursor)
    return peer, got


def publish(publisher, mesh, count, start=0, shard_id=None):
    for index in range(start, start + count):
        target = shard_id or mesh.shard_ids[index % len(mesh.shard_ids)]
        publisher.publish_async(target, publisher.new_instance(
            "demo.a.Person", ["e%d" % index]))
    return start + count


def names(got):
    return [event.getPersonName() for event in got]


def assert_exactly_once(got, upto):
    delivered = names(got)
    assert sorted(delivered, key=lambda n: int(n[1:])) == \
        ["e%d" % i for i in range(upto)]
    assert len(delivered) == len(set(delivered))


class TestAddShard:
    def test_add_bumps_epoch_and_newcomer_is_routable(self, tmp_path):
        network, mesh, publisher = make_mesh(tmp_path)
        assert mesh.epoch == 1
        shard = mesh.add_shard()
        assert mesh.epoch == 2
        assert shard.peer_id == "m-shard3"
        assert shard.peer_id in mesh.shard_ids
        assert all(s.epoch == 2 for s in mesh.shards)
        # The newcomer already knows the mesh's summaries: an event
        # published to it reaches a subscriber homed elsewhere.
        got = []
        sub = TpsPeer("cross-sub", network)
        sub.subscribe_remote(mesh.shard_for("cross-sub"), person_java(),
                             got.append)
        assert mesh.shard_for("cross-sub") != shard.peer_id
        publisher.publish_async(shard.peer_id, publisher.new_instance(
            "demo.a.Person", ["hello"]))
        mesh.run_until_idle()
        assert names(got) == ["hello"]
        mesh.close()

    def test_failed_join_leaves_no_trace(self, tmp_path, monkeypatch):
        network, mesh, publisher = make_mesh(tmp_path)
        before_ids = mesh.shard_ids

        def boom(self):
            raise NetworkError("summary sync failed")

        monkeypatch.setattr(mesh_module.MeshShard, "_sync_summaries", boom)
        with pytest.raises(NetworkError):
            mesh.add_shard()
        assert mesh.epoch == 1
        assert mesh.shard_ids == before_ids
        assert not network.can_route("m-shard3")  # torn down, unregistered
        mesh.close()


class TestRebalance:
    def _rehomed_peer(self, mesh):
        """A peer id whose rendezvous home moves onto the next shard the
        mesh would add — the migration case rebalance exists for."""
        after = mesh.topology.with_shard()
        newcomer = after.shard_ids[-1]
        index = 0
        while True:
            peer_id = "moving-sub-%d" % index
            if mesh.topology.shard_for(peer_id) != newcomer \
                    and after.shard_for(peer_id) == newcomer:
                return peer_id, newcomer
            index += 1

    def test_rehomed_durable_cursor_moves_without_loss(self, tmp_path):
        network, mesh, publisher = make_mesh(tmp_path)
        peer_id, newcomer = self._rehomed_peer(mesh)
        old_home = mesh.shard_for(peer_id)
        peer, got = durable_subscriber(network, mesh, peer_id, "mov-c")
        upto = publish(publisher, mesh, 12)
        mesh.run_until_idle()

        mesh.add_shard()
        moved = mesh.rebalance()
        assert moved["epoch"] == 2
        assert "mov-c" in moved["moved"].get(old_home, [])
        assert "mov-c" in mesh.shard(newcomer).cursors
        assert "mov-c" not in mesh.shard(old_home).cursors

        upto = publish(publisher, mesh, 12, start=upto)
        mesh.run_until_idle()
        assert_exactly_once(got, upto)
        mesh.close()

    def test_rebalance_is_idempotent(self, tmp_path):
        network, mesh, publisher = make_mesh(tmp_path)
        peer, got = durable_subscriber(network, mesh, "idem-sub", "idem-c")
        mesh.run_until_idle()
        mesh.add_shard()
        mesh.rebalance()
        again = mesh.rebalance()
        assert again["moved"] == {}
        mesh.close()


class TestRemoveShard:
    def test_remove_hands_off_and_loses_nothing(self, tmp_path):
        network, mesh, publisher = make_mesh(tmp_path, shards=4)
        peer, got = durable_subscriber(network, mesh, "leaver-sub", "lv-c")
        victim = mesh.shard_for("leaver-sub")
        upto = publish(publisher, mesh, 16)
        mesh.run_until_idle()

        mesh.remove_shard(victim)
        assert mesh.epoch == 2
        assert victim not in mesh.shard_ids
        assert victim in mesh.topology.departed
        new_home = mesh.shard_for("leaver-sub")
        assert "lv-c" in mesh.shard(new_home).cursors

        upto = publish(publisher, mesh, 16, start=upto)
        mesh.run_until_idle()
        assert_exactly_once(got, upto)
        mesh.close()

    def test_remove_refuses_to_underrun_replication(self, tmp_path):
        network, mesh, publisher = make_mesh(tmp_path, shards=2)
        with pytest.raises(ValueError):
            mesh.remove_shard(mesh.shard_ids[0])
        assert mesh.epoch == 1
        mesh.close()

    def test_remove_refuses_pinned_local_handler(self, tmp_path):
        network, mesh, publisher = make_mesh(tmp_path, shards=4)
        victim_id = mesh.shard_ids[0]
        mesh.shard(victim_id).subscribe_durable(person_java(), lambda e: None,
                                                cursor="pinned-c")
        with pytest.raises(ValueError):
            mesh.remove_shard(victim_id)
        assert mesh.epoch == 1
        assert victim_id in mesh.shard_ids
        mesh.close()

    def test_unknown_shard(self, tmp_path):
        network, mesh, publisher = make_mesh(tmp_path)
        with pytest.raises(ValueError):
            mesh.remove_shard("m-shard9")
        mesh.close()


class TestCrashDuringHandoff:
    def test_failed_handoff_aborts_then_crash_recovery_completes(
            self, tmp_path, monkeypatch):
        """A handoff RPC that dies mid-removal must leave the leaving
        shard live at the old epoch; after a crash-restart of that shard
        the removal can be retried and still loses nothing."""
        network, mesh, publisher = make_mesh(tmp_path, shards=4)
        peer, got = durable_subscriber(network, mesh, "crash-sub", "cr-c")
        victim = mesh.shard_for("crash-sub")
        upto = publish(publisher, mesh, 12)
        mesh.run_until_idle()

        original = mesh_module.MeshShard.request

        def flaky(self, dst, kind, payload, retries=0):
            if kind == mesh_module.KIND_MESH_HANDOFF:
                raise NetworkError("handoff interrupted")
            return original(self, dst, kind, payload, retries=retries)

        monkeypatch.setattr(mesh_module.MeshShard, "request", flaky)
        with pytest.raises(NetworkError):
            mesh.remove_shard(victim)
        monkeypatch.setattr(mesh_module.MeshShard, "request", original)

        # The abort left the mesh at the old epoch with the victim live
        # and the subscription reactivated there.
        assert mesh.epoch == 1
        assert victim in mesh.shard_ids
        assert "cr-c" in mesh.shard(victim).cursors

        # Crash-restart the shard that was mid-handoff, then retry.
        mesh.restart_shard(victim)
        mesh.run_until_idle()
        mesh.remove_shard(victim)
        upto = publish(publisher, mesh, 12, start=upto)
        mesh.run_until_idle()
        assert_exactly_once(got, upto)
        mesh.close()


def run_chaos(log_root, seed, rounds=6, burst=6):
    """A seeded membership storm: random add/remove/rebalance/restart
    between publish bursts, checked for exactly-once delivery."""
    rng = random.Random(seed)
    network, mesh, publisher = make_mesh(log_root, shards=3,
                                         name="c%d" % seed, seed=seed)
    subscribers = [durable_subscriber(network, mesh, "chaos-sub-%d" % i,
                                      "ch-c-%d" % i) for i in range(2)]
    mesh.run_until_idle()
    upto = 0
    changes = 0
    for _ in range(rounds):
        upto = publish(publisher, mesh, burst, start=upto)
        mesh.run_until_idle()
        op = rng.choice(("add", "remove", "rebalance", "restart"))
        if op == "add" and len(mesh.shard_ids) < 6:
            mesh.add_shard()
            mesh.rebalance()
            changes += 1
        elif op == "remove" and len(mesh.shard_ids) > 2:
            mesh.remove_shard(rng.choice(mesh.shard_ids))
            changes += 1
        elif op == "rebalance":
            mesh.rebalance()
        elif op == "restart":
            mesh.restart_shard(rng.choice(mesh.shard_ids))
        mesh.run_until_idle()
    upto = publish(publisher, mesh, burst, start=upto)
    mesh.run_until_idle()
    assert mesh.epoch == 1 + changes
    for peer, got in subscribers:
        assert_exactly_once(got, upto)
    mesh.close()


class TestMembershipChaos:
    def test_seeded_sweep(self, tmp_path):
        """CI varies MEMBERSHIP_CHAOS_SEED across the chaos matrix; a
        failure reproduces locally by exporting the same seed."""
        seed = int(os.environ.get("MEMBERSHIP_CHAOS_SEED", "0"))
        run_chaos(tmp_path, seed)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture,
                                 HealthCheck.too_slow])
@given(ops=st.lists(st.sampled_from(["join", "leave", "crash"]),
                    min_size=1, max_size=4),
       data=st.data())
def test_join_leave_crash_invariants(tmp_path_factory, ops, data):
    """Property: any short join/leave/crash sequence preserves the
    delivery contract — every published event reaches every durable
    subscriber exactly once, and the epoch counts exactly the
    membership changes."""
    log_root = tmp_path_factory.mktemp("chaos")
    network, mesh, publisher = make_mesh(log_root, shards=3, name="h")
    peer, got = durable_subscriber(network, mesh, "prop-sub", "prop-c")
    mesh.run_until_idle()
    upto = 0
    changes = 0
    for op in ops:
        upto = publish(publisher, mesh, 4, start=upto)
        mesh.run_until_idle()
        if op == "join" and len(mesh.shard_ids) < 6:
            mesh.add_shard()
            mesh.rebalance()
            changes += 1
        elif op == "leave" and len(mesh.shard_ids) > 2:
            victim = data.draw(st.sampled_from(mesh.shard_ids))
            mesh.remove_shard(victim)
            changes += 1
        elif op == "crash":
            target = data.draw(st.sampled_from(mesh.shard_ids))
            mesh.restart_shard(target)
        mesh.run_until_idle()
    upto = publish(publisher, mesh, 4, start=upto)
    mesh.run_until_idle()
    assert mesh.epoch == 1 + changes
    assert_exactly_once(got, upto)
    mesh.close()
