"""CLI coverage for ``repro mesh``: the topology read and the
registry-driven admin operations against a live SocketMesh HTTP API."""

import io
import threading

import pytest

from repro.apps.tps import TpsPeer
from repro.apps.tps.procmesh import SocketMesh
from repro.apps.tps.topology import Topology
from repro.cli import main
from repro.fixtures import person_assembly_pair, person_java


@pytest.fixture
def live_mesh(tmp_path):
    mesh = SocketMesh(topology=Topology.sized(3, "climesh"),
                      log_root=str(tmp_path / "logs"), replication_factor=1)
    driver = mesh.client_network("climesh-driver")
    publisher = TpsPeer("publisher", driver)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    got = []
    subscriber = TpsPeer("cli-sub", driver)
    subscriber.subscribe_durable_remote(mesh.shard_for("cli-sub"),
                                        person_java(), got.append,
                                        cursor="cli-c")
    mesh.run_until_idle()
    server = mesh.serve_http()
    try:
        yield mesh, server.address
    finally:
        mesh.close()


def run_cli(mesh, argv):
    """Run the CLI on a helper thread while this thread pumps the mesh —
    the in-process SocketMesh HTTP server only answers while polled."""
    out = io.StringIO()
    box = {}

    def invoke():
        box["code"] = main(argv, out=out)

    thread = threading.Thread(target=invoke, daemon=True)
    thread.start()
    while thread.is_alive():
        mesh.flush()
        thread.join(timeout=0.001)
    return box["code"], out.getvalue()


class TestMeshTopologyCommand:
    def test_reads_membership_view(self, live_mesh):
        mesh, base = live_mesh
        code, output = run_cli(mesh, ["mesh", "topology", "--url", base])
        assert code == 0
        assert "epoch     1" in output
        for shard_id in mesh.shard_ids:
            assert shard_id in output

    def test_shows_departed_after_removal(self, live_mesh):
        mesh, base = live_mesh
        victim = sorted(set(mesh.shard_ids)
                        - {mesh.shard_for("cli-sub")})[0]
        mesh.remove_shard(victim)
        code, output = run_cli(mesh, ["mesh", "topology", "--url", base])
        assert code == 0
        assert "epoch     2" in output
        assert "departed  %s" % victim in output


class TestMeshAdminCommands:
    def test_rebalance_prints_uniform_envelope(self, live_mesh):
        mesh, base = live_mesh
        code, output = run_cli(mesh, [
            "mesh", "rebalance", "--url", base, "--token", mesh.auth_token])
        assert code == 0
        assert "op        rebalance" in output
        assert "epoch     1" in output
        assert "result    " in output

    def test_add_then_remove_shard_over_http(self, live_mesh):
        mesh, base = live_mesh
        code, output = run_cli(mesh, [
            "mesh", "add_shard", "--url", base, "--token", mesh.auth_token])
        assert code == 0
        assert "op        add_shard" in output
        assert "epoch     2" in output
        newcomer = mesh.shard_ids[-1]
        assert len(mesh.shard_ids) == 4

        code, output = run_cli(mesh, [
            "mesh", "remove_shard", "--url", base, "--shard", newcomer,
            "--token", mesh.auth_token])
        assert code == 0
        assert "op        remove_shard" in output
        assert "epoch     3" in output
        assert newcomer not in mesh.shard_ids

    def test_admin_without_token_fails_loudly(self, live_mesh):
        mesh, base = live_mesh
        code, output = run_cli(mesh, ["mesh", "rebalance", "--url", base])
        assert code == 2
        assert "401" in output

    def test_shard_targeted_op_requires_shard(self, live_mesh):
        mesh, base = live_mesh
        code, output = run_cli(mesh, [
            "mesh", "remove_shard", "--url", base,
            "--token", mesh.auth_token])
        assert code == 2
        assert "--shard" in output

    def test_unknown_action_lists_choices(self, live_mesh):
        mesh, base = live_mesh
        code, output = run_cli(mesh, ["mesh", "explode", "--url", base])
        assert code == 2
        assert "topology" in output and "rebalance" in output
