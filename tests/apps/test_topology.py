"""Tests for the epoch-versioned Topology value object and MeshConfig —
the unified construction surface of the three mesh runners."""

import inspect

import pytest

from repro.apps.tps import BrokerMesh
from repro.apps.tps.topology import MeshConfig, Topology, rendezvous_shard
from repro.net.network import SimulatedNetwork


class TestTopology:
    def test_sized_names_shards_at_epoch_one(self):
        topology = Topology.sized(3, "demo")
        assert topology.shard_ids == ["demo-shard0", "demo-shard1",
                                      "demo-shard2"]
        assert topology.epoch == 1
        assert topology.departed == ()
        assert len(topology) == 3
        assert "demo-shard1" in topology
        assert list(topology) == topology.shard_ids

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology([])
        with pytest.raises(ValueError):
            Topology(["a", "a"])
        with pytest.raises(ValueError):
            Topology(["a"], epoch=0)
        with pytest.raises(ValueError):
            Topology(["a", "b"], departed=["b"])
        with pytest.raises(ValueError):
            Topology.sized(0)

    def test_with_shard_bumps_epoch_and_keeps_old_view(self):
        before = Topology.sized(2, "m")
        after = before.with_shard()
        assert after.epoch == before.epoch + 1
        assert after.shard_ids == ["m-shard0", "m-shard1", "m-shard2"]
        # The old value is untouched: holders keep a consistent view.
        assert before.shard_ids == ["m-shard0", "m-shard1"]
        assert before.epoch == 1

    def test_without_shard_retires_the_id(self):
        before = Topology.sized(3, "m")
        after = before.without_shard("m-shard1")
        assert after.epoch == 2
        assert after.shard_ids == ["m-shard0", "m-shard2"]
        assert after.departed == ("m-shard1",)
        # A departed id stays retired: rejoining under it is an error,
        # and the auto-generated next id skips it.
        with pytest.raises(ValueError):
            after.with_shard("m-shard1")
        assert after.next_shard_id() == "m-shard3"
        assert after.with_shard().shard_ids[-1] == "m-shard3"

    def test_membership_transition_errors(self):
        topology = Topology.sized(2, "m")
        with pytest.raises(ValueError):
            topology.with_shard("m-shard0")  # already live
        with pytest.raises(ValueError):
            topology.without_shard("m-shard9")  # unknown
        only = Topology(["solo"])
        with pytest.raises(ValueError):
            only.without_shard("solo")  # cannot empty the mesh

    def test_shard_for_matches_rendezvous(self):
        topology = Topology.sized(4, "m")
        for key in ("alice", "bob", "publisher-17"):
            assert topology.shard_for(key) == \
                rendezvous_shard(key, topology.shard_ids)
            assert topology.rank(key)[0] == topology.shard_for(key)

    def test_rehomed_is_the_minimal_migration_set(self):
        before = Topology.sized(4, "m")
        after = before.with_shard()
        keys = ["peer%03d" % index for index in range(200)]
        moved = before.rehomed(keys, after)
        # Everything that moved now lives on the newcomer, and the
        # fraction is roughly 1/N of the key space.
        for key in moved:
            assert after.shard_for(key) == "m-shard4"
        assert 0 < len(moved) < len(keys) // 2

    def test_delta(self):
        before = Topology.sized(2, "m")
        after = before.with_shard().without_shard("m-shard0")
        delta = before.delta(after)
        assert delta == {"from_epoch": 1, "to_epoch": 3,
                         "added": ["m-shard2"], "removed": ["m-shard0"]}

    def test_dict_roundtrip_and_equality(self):
        topology = Topology.sized(3, "m").without_shard("m-shard2")
        clone = Topology.from_dict(topology.as_dict())
        assert clone == topology
        assert clone.epoch == topology.epoch
        assert clone.departed == topology.departed
        assert clone != topology.with_shard()


class TestMeshConfig:
    def test_topology_and_shard_count_are_exclusive(self):
        with pytest.raises(ValueError):
            MeshConfig(topology=Topology.sized(2), shard_count=2)

    def test_shard_count_is_deprecated_but_works(self):
        with pytest.warns(DeprecationWarning):
            config = MeshConfig(shard_count=3, name="m")
        assert config.shard_ids == Topology.sized(3, "m").shard_ids

    def test_accepts_wire_shape(self):
        topology = Topology.sized(2, "m")
        config = MeshConfig(topology=topology.as_dict())
        assert config.topology == topology

    def test_rejects_non_topology(self):
        with pytest.raises(TypeError):
            MeshConfig(topology=3)

    def test_default_is_four_shards(self):
        assert len(MeshConfig().topology) == 4

    def test_replication_factor_bounds(self):
        with pytest.raises(ValueError):
            MeshConfig(topology=Topology.sized(2), replication_factor=-1)
        with pytest.raises(ValueError):
            MeshConfig(topology=Topology.sized(2), replication_factor=2)
        with pytest.raises(ValueError):
            MeshConfig(topology=Topology.sized(3), replication_factor=1)

    def test_unified_constructor_signatures(self):
        """All three mesh runners expose the same membership keywords —
        the drift MeshConfig exists to prevent."""
        from repro.apps.tps.procmesh import ProcessMesh, SocketMesh
        for runner in (BrokerMesh, SocketMesh, ProcessMesh):
            parameters = inspect.signature(runner.__init__).parameters
            for keyword in ("topology", "shard_count", "name", "log_root",
                            "replication_factor"):
                assert keyword in parameters, \
                    "%s.__init__ lost %s=" % (runner.__name__, keyword)

    def test_broker_mesh_takes_topology(self):
        topology = Topology.sized(2, "m")
        mesh = BrokerMesh(SimulatedNetwork(), topology=topology)
        try:
            assert mesh.shard_ids == topology.shard_ids
            assert mesh.epoch == 1
        finally:
            mesh.close()

    def test_broker_mesh_shard_count_warns(self):
        with pytest.warns(DeprecationWarning):
            mesh = BrokerMesh(SimulatedNetwork(), shard_count=2)
        mesh.close()
