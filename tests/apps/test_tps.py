"""Tests for type-based publish/subscribe."""

import pytest

from repro.apps.tps import LocalBroker, TpsBroker, TpsPeer
from repro.core import ConformanceChecker, ConformanceOptions
from repro.cts.assembly import Assembly
from repro.fixtures import (
    account_csharp,
    person_assembly_pair,
    person_csharp,
    person_java,
    person_vb,
)
from repro.net.network import SimulatedNetwork
from repro.runtime.loader import Runtime


@pytest.fixture
def runtime():
    rt = Runtime()
    asm_a, _ = person_assembly_pair()
    rt.load_assembly(asm_a)
    rt.load_assembly(Assembly("bank", [account_csharp()]))
    return rt


class TestLocalBroker:
    def test_conformant_event_delivered_via_proxy(self, runtime):
        broker = LocalBroker()
        got = []
        broker.subscribe(person_java(), got.append)
        event = runtime.new_instance("demo.a.Person", ["News"])
        assert broker.publish(event) == 1
        assert got[0].getPersonName() == "News"

    def test_nonconformant_event_filtered(self, runtime):
        broker = LocalBroker()
        got = []
        broker.subscribe(person_java(), got.append)
        account = runtime.new_instance("demo.bank.Account", ["o", 5])
        assert broker.publish(account) == 0
        assert got == []

    def test_multiple_subscriptions_fan_out(self, runtime):
        broker = LocalBroker()
        a, b = [], []
        broker.subscribe(person_java(), a.append)
        broker.subscribe(person_vb(), b.append)
        broker.publish(runtime.new_instance("demo.a.Person", ["fan"]))
        assert len(a) == 1 and len(b) == 1

    def test_unsubscribe(self, runtime):
        broker = LocalBroker()
        got = []
        sub = broker.subscribe(person_java(), got.append)
        broker.unsubscribe(sub)
        broker.publish(runtime.new_instance("demo.a.Person", ["gone"]))
        assert got == []

    def test_counters(self, runtime):
        broker = LocalBroker()
        sub = broker.subscribe(person_java(), lambda e: None)
        broker.publish(runtime.new_instance("demo.a.Person", ["1"]))
        broker.publish(runtime.new_instance("demo.bank.Account", ["o", 1]))
        assert broker.published == 2
        assert broker.delivered == 1
        assert sub.delivered == 1

    def test_event_must_have_type(self):
        broker = LocalBroker()
        with pytest.raises(TypeError):
            broker.publish(object())

    def test_exact_type_subscription_no_proxy(self, runtime):
        broker = LocalBroker()
        got = []
        provider = runtime.registry.require("demo.a.Person")
        broker.subscribe(provider, got.append)
        event = runtime.new_instance("demo.a.Person", ["same"])
        broker.publish(event)
        assert got[0] is event  # no wrapper needed


class TestDistributedTps:
    @pytest.fixture
    def world(self):
        network = SimulatedNetwork()
        broker = TpsBroker("broker", network)
        publisher = TpsPeer("publisher", network)
        subscriber = TpsPeer("subscriber", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        return network, broker, publisher, subscriber

    def test_remote_subscribe_and_publish(self, world):
        network, broker, publisher, subscriber = world
        events = []
        subscriber.subscribe_remote("broker", person_java(), events.append)
        publisher.publish("broker", publisher.new_instance("demo.a.Person", ["Wire"]))
        assert len(events) == 1
        assert events[0].getPersonName() == "Wire"
        assert broker.events_routed == 1

    def test_nonconformant_not_routed(self, world):
        network, broker, publisher, subscriber = world
        publisher.host_assembly(Assembly("bank", [account_csharp()]))
        events = []
        subscriber.subscribe_remote("broker", person_java(), events.append)
        publisher.publish("broker", publisher.new_instance("demo.bank.Account", ["o", 2]))
        assert events == []
        assert broker.events_routed == 0

    def test_multiple_subscribers(self, world):
        network, broker, publisher, subscriber = world
        sub2 = TpsPeer("subscriber2", network)
        e1, e2 = [], []
        subscriber.subscribe_remote("broker", person_java(), e1.append)
        sub2.subscribe_remote("broker", person_vb(), e2.append)
        publisher.publish("broker", publisher.new_instance("demo.a.Person", ["both"]))
        assert len(e1) == 1 and len(e2) == 1
        assert e1[0].getPersonName() == "both"
        assert e2[0].GetName() == "both"

    def test_unsubscribe_remote(self, world):
        network, broker, publisher, subscriber = world
        events = []
        sid = subscriber.subscribe_remote("broker", person_java(), events.append)
        subscriber.unsubscribe_remote("broker", sid)
        publisher.publish("broker", publisher.new_instance("demo.a.Person", ["x"]))
        assert events == []

    def test_publisher_not_echoed(self, world):
        """A peer that both publishes and subscribes does not receive its
        own events back."""
        network, broker, publisher, subscriber = world
        events = []
        publisher.subscribe_remote("broker", person_java(), events.append)
        publisher.publish("broker", publisher.new_instance("demo.a.Person", ["self"]))
        assert events == []

    def test_code_flows_through_broker(self, world):
        """Subscriber never talks to the publisher: descriptions and code
        come from the broker, which re-serves what it downloaded."""
        network, broker, publisher, subscriber = world
        events = []
        subscriber.subscribe_remote("broker", person_java(), events.append)
        publisher.publish("broker", publisher.new_instance("demo.a.Person", ["relay"]))
        assert events[0].getPersonName() == "relay"
        # All subscriber traffic went to the broker.
        partners = {dst for (src, dst, kind, size) in network.log if src == "subscriber"}
        assert partners <= {"broker"}


class TestBrokerObservability:
    """Satellite: stats() snapshots on both broker flavours."""

    @pytest.fixture
    def world(self):
        network = SimulatedNetwork()
        broker = TpsBroker("broker", network)
        publisher = TpsPeer("publisher", network)
        subscriber = TpsPeer("subscriber", network)
        asm_a, _ = person_assembly_pair()
        publisher.host_assembly(asm_a)
        return network, broker, publisher, subscriber

    def test_local_broker_stats(self, runtime):
        broker = LocalBroker()
        keep = broker.subscribe(person_java(), lambda e: None)
        gone = broker.subscribe(person_vb(), lambda e: None)
        broker.publish(runtime.new_instance("demo.a.Person", ["1"]))
        broker.publish(runtime.new_instance("demo.a.Person", ["2"]))
        broker.unsubscribe(gone)
        broker.publish(runtime.new_instance("demo.a.Person", ["3"]))

        snapshot = broker.stats()
        assert snapshot["published"] == 3
        assert snapshot["delivered"] == 5
        assert snapshot["subscriptions"] == {keep.subscription_id: 3}
        routing = snapshot["routing"]
        # Warm publishes hit the verdict cache; the first one missed.
        assert routing["hits"] >= 2
        assert routing["misses"] >= 2
        assert routing["full_checks"] >= 1

    def test_tps_broker_stats(self, world):
        network, broker, publisher, subscriber = world
        subscriber.subscribe_remote("broker", person_java(), lambda e: None)
        publisher.publish("broker", publisher.new_instance("demo.a.Person", ["s"]))

        snapshot = broker.stats()
        assert snapshot["events_routed"] == 1
        assert list(snapshot["subscriptions"].values()) == [1]
        assert snapshot["routing"]["misses"] >= 1
        assert snapshot["transport"]["objects_received"] == 1
        assert snapshot["transport"]["objects_sent"] == 1
        # The plain broker neither batches nor forwards; the mesh shard
        # contributes those counters via _extra_stats.
        assert "forwards_sent" not in snapshot

    def test_transport_counters_still_reachable(self, world):
        """The stats() method must not hide the TransportStats counters;
        the deprecated .stats alias finished its cycle and is gone."""
        network, broker, publisher, subscriber = world
        assert not hasattr(publisher, "stats")
        assert publisher.transport_stats.objects_sent == 0
        assert broker.transport_stats.objects_sent == 0
