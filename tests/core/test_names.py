"""Tests for Levenshtein distance, wildcards, token splitting and NamePolicy."""

import pytest

from repro.core.names import (
    NamePolicy,
    PAPER_POLICY,
    PRAGMATIC_POLICY,
    identifier_tokens,
    levenshtein,
    wildcard_match,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,d",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("same", "same", 0),
            ("abc", "abd", 1),
            ("setname", "setpersonname", 6),
        ],
    )
    def test_known_distances(self, a, b, d):
        assert levenshtein(a, b) == d

    def test_symmetric(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")

    def test_upper_bound_early_exit(self):
        # Distance exceeds the bound: the result just needs to exceed it.
        assert levenshtein("aaaaaaaa", "bbbbbbbb", upper_bound=2) > 2

    def test_upper_bound_exact_when_within(self):
        assert levenshtein("kitten", "sitting", upper_bound=5) == 3

    def test_length_difference_short_circuit(self):
        assert levenshtein("a", "aaaaaa", upper_bound=2) > 2


class TestWildcardMatch:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("*", "anything", True),
            ("get*", "getname", True),
            ("get*", "setname", False),
            ("*name", "personname", True),
            ("get?ame", "getname", True),
            ("get?ame", "getnname", False),  # ? matches exactly one char
            ("get*ame", "getnnname", True),
            ("a*b*c", "aXbYc", True),
            ("a*b*c", "ac", False),
            ("", "", True),
            ("*", "", True),
            ("?", "", False),
        ],
    )
    def test_patterns(self, pattern, text, expected):
        assert wildcard_match(pattern, text) is expected


class TestIdentifierTokens:
    @pytest.mark.parametrize(
        "name,tokens",
        [
            ("setName", ("set", "name")),
            ("setPersonName", ("set", "person", "name")),
            ("GetName", ("get", "name")),
            ("name", ("name",)),
            ("HTTPServer", ("http", "server")),
            ("snake_case_name", ("snake", "case", "name")),
            ("value2text", ("value", "2", "text")),
            ("", ()),
        ],
    )
    def test_splitting(self, name, tokens):
        assert identifier_tokens(name) == tokens


class TestNamePolicy:
    def test_paper_policy_exact_case_insensitive(self):
        assert PAPER_POLICY.conforms("GetName", "getname")
        assert not PAPER_POLICY.conforms("GetName", "GetNames")

    def test_case_sensitive_variant(self):
        policy = NamePolicy(case_sensitive=True)
        assert policy.conforms("GetName", "GetName")
        assert not policy.conforms("GetName", "getname")

    def test_distance_relaxation(self):
        policy = NamePolicy(max_distance=2)
        assert policy.conforms("colour", "color")
        assert not policy.conforms("completely", "different")

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            NamePolicy(max_distance=-1)

    def test_wildcards_disabled_by_default(self):
        assert not NamePolicy().conforms("get*", "getname")

    def test_wildcards_enabled(self):
        policy = NamePolicy(allow_wildcards=True)
        assert policy.conforms("getname", "get*")
        assert policy.conforms("get*", "getname")
        assert not policy.conforms("setname", "get*")

    def test_token_subset_pragmatic(self):
        assert PRAGMATIC_POLICY.conforms("setName", "setPersonName")
        assert PRAGMATIC_POLICY.conforms("setPersonName", "setName")
        assert PRAGMATIC_POLICY.conforms("GetName", "getPersonName")

    def test_token_subset_requires_verb_agreement(self):
        assert not PRAGMATIC_POLICY.conforms("getName", "setPersonName")

    def test_token_subset_multiset_semantics(self):
        # 'nameName' has two 'name' tokens; a single-'name' identifier is a
        # subset, but not vice versa against distinct tokens.
        assert PRAGMATIC_POLICY.conforms("nameName", "namePersonName")
        assert not PRAGMATIC_POLICY.conforms("personPerson", "personName")

    def test_token_subset_exact_still_works(self):
        assert PRAGMATIC_POLICY.conforms("GetName", "getname")

    def test_distance_method(self):
        assert NamePolicy(max_distance=3).distance("abc", "abd") == 1
