"""Tests for the conformance verdict lattice: equality, equivalence,
explicit subtyping, and the aspect checks of rule (vi)."""

import pytest

from repro.core import (
    ConformanceChecker,
    ConformanceOptions,
    NamePolicy,
    Verdict,
)
from repro.core.result import Aspect
from repro.cts.builder import TypeBuilder, interface_builder
from repro.cts.registry import TypeRegistry
from repro.cts.types import INT, OBJECT, STRING


def make_person(full_name="x.Person", getter="GetName", setter="SetName",
                field="name", assembly="asm"):
    return (
        TypeBuilder(full_name, assembly_name=assembly)
        .field(field, "string", visibility="private")
        .method(getter, [], "string")
        .method(setter, [("n", "string")], "void")
        .ctor([("n", "string")])
        .build()
    )


@pytest.fixture
def checker():
    return ConformanceChecker()


class TestIdentityVerdicts:
    def test_equal_same_type(self, checker):
        person = make_person()
        result = checker.conforms(person, person)
        assert result.verdict is Verdict.EQUAL

    def test_equal_same_declaration_recompiled(self, checker):
        # Same assembly + same structure -> same GUID -> EQUAL.
        assert checker.conforms(make_person(), make_person()).verdict is Verdict.EQUAL

    def test_equivalent_different_assembly(self, checker):
        # Same structure compiled into different assemblies: different GUIDs
        # but structurally identical -> EQUIVALENT.
        a = make_person(assembly="asm1")
        b = make_person(assembly="asm2")
        assert a.guid != b.guid
        assert checker.conforms(a, b).verdict is Verdict.EQUIVALENT

    def test_everything_conforms_to_object(self, checker):
        result = checker.conforms(make_person(), OBJECT)
        assert result.ok
        assert result.verdict is Verdict.EXPLICIT

    def test_primitive_identity(self, checker):
        assert checker.conforms(INT, INT).verdict is Verdict.EQUAL

    def test_primitive_mismatch(self, checker):
        assert not checker.conforms(INT, STRING).ok

    def test_numeric_widening_off_by_default(self, checker):
        from repro.cts.types import LONG

        assert not checker.conforms(INT, LONG).ok

    def test_numeric_widening_opt_in(self):
        from repro.cts.types import DOUBLE, LONG

        checker = ConformanceChecker(
            options=ConformanceOptions(allow_numeric_widening=True)
        )
        assert checker.conforms(INT, LONG).ok
        assert checker.conforms(INT, DOUBLE).ok
        assert not checker.conforms(DOUBLE, INT).ok  # narrowing never


class TestExplicitConformance:
    def test_declared_subtype_conforms(self):
        registry = TypeRegistry()
        base = TypeBuilder("x.Base").method("m", [], "void").build()
        sub = TypeBuilder("x.Sub").extends(base).build()
        registry.register(base)
        registry.register(sub)
        checker = ConformanceChecker(resolver=registry)
        result = checker.conforms(sub, base)
        assert result.verdict is Verdict.EXPLICIT

    def test_transitive_subtyping(self):
        registry = TypeRegistry()
        a = TypeBuilder("x.A").build()
        b = TypeBuilder("x.B").extends(a).build()
        c = TypeBuilder("x.C").extends(b).build()
        registry.register_all([a, b, c])
        checker = ConformanceChecker(resolver=registry)
        assert checker.conforms(c, a).verdict is Verdict.EXPLICIT

    def test_interface_implementation(self):
        registry = TypeRegistry()
        iface = interface_builder("x.INamed").method("GetName", [], "string").build()
        impl = (
            TypeBuilder("x.Impl")
            .implements(iface)
            .method("GetName", [], "string")
            .build()
        )
        registry.register_all([iface, impl])
        checker = ConformanceChecker(resolver=registry)
        assert checker.conforms(impl, iface).verdict is Verdict.EXPLICIT

    def test_unrelated_types_not_explicit(self, checker):
        a = TypeBuilder("x.A").build()
        b = TypeBuilder("x.B").method("m", [], "void").build()
        assert not checker.conforms(a, b).ok


class TestNameAspect:
    def test_name_mismatch_fails(self, checker):
        a = make_person("x.Person")
        b = make_person("x.Human")
        result = checker.conforms(a, b)
        assert not result.ok
        assert result.aspects[Aspect.NAME] is False

    def test_name_case_insensitive(self, checker):
        a = make_person("x.PERSON", assembly="a1")
        b = make_person("x.person", assembly="a2")
        assert checker.conforms(a, b).ok

    def test_namespace_ignored_for_name_aspect(self, checker):
        a = make_person("pkg1.Person", assembly="a1")
        b = make_person("pkg2.Person", assembly="a2")
        assert checker.conforms(a, b).ok


class TestFieldAspect:
    def test_missing_public_field_fails(self, checker):
        a = TypeBuilder("x.T", assembly_name="a1").method("Get", [], "int").build()
        b = (
            TypeBuilder("x.T", assembly_name="a2")
            .field("value", "int")
            .method("Get", [], "int")
            .build()
        )
        result = checker.conforms(a, b)
        assert not result.ok
        assert result.aspects[Aspect.FIELDS] is False

    def test_private_fields_not_required(self, checker):
        # Expected type's private fields are implementation detail.
        a = TypeBuilder("x.T", assembly_name="a1").method("Get", [], "int").build()
        b = (
            TypeBuilder("x.T", assembly_name="a2")
            .field("value", "int", visibility="private")
            .method("Get", [], "int")
            .build()
        )
        assert checker.conforms(a, b).ok

    def test_field_type_mismatch_fails(self, checker):
        a = TypeBuilder("x.T", assembly_name="a1").field("v", "string").build()
        b = TypeBuilder("x.T", assembly_name="a2").field("v", "int").build()
        assert not checker.conforms(a, b).ok

    def test_extra_provider_fields_allowed(self, checker):
        a = (
            TypeBuilder("x.T", assembly_name="a1")
            .field("v", "int")
            .field("extra", "string")
            .build()
        )
        b = TypeBuilder("x.T", assembly_name="a2").field("v", "int").build()
        assert checker.conforms(a, b).ok


class TestSupertypeAspect:
    def test_expected_object_superclass_always_ok(self, checker):
        a = make_person(assembly="a1")
        b = make_person(assembly="a2")
        assert checker.conforms(a, b).ok

    def test_expected_named_superclass_requires_conformant_super(self):
        registry = TypeRegistry()
        base1 = TypeBuilder("p.Base", assembly_name="a1").method("m", [], "void").build()
        base2 = TypeBuilder("q.Base", assembly_name="a2").method("m", [], "void").build()
        sub1 = TypeBuilder("p.Sub", assembly_name="a1").extends(base1).build()
        sub2 = TypeBuilder("q.Sub", assembly_name="a2").extends(base2).build()
        registry.register_all([base1, base2, sub1, sub2])
        checker = ConformanceChecker(resolver=registry)
        assert checker.conforms(sub1, sub2).ok

    def test_provider_missing_superclass_fails(self):
        registry = TypeRegistry()
        base = TypeBuilder("q.Base", assembly_name="a2").field("f", "int").build()
        expected = TypeBuilder("q.Sub", assembly_name="a2").extends(base).build()
        provider = TypeBuilder("p.Sub", assembly_name="a1").build()  # extends Object
        registry.register_all([base, expected, provider])
        checker = ConformanceChecker(resolver=registry)
        result = checker.conforms(provider, expected)
        assert not result.ok
        assert result.aspects[Aspect.SUPERTYPES] is False

    def test_expected_interfaces_must_be_covered(self):
        registry = TypeRegistry()
        iface1 = interface_builder("p.IThing", "a1").method("Go", [], "void").build()
        iface2 = interface_builder("q.IThing", "a2").method("Go", [], "void").build()
        provider = TypeBuilder("p.T", assembly_name="a1").implements(iface1).build()
        expected = TypeBuilder("q.T", assembly_name="a2").implements(iface2).build()
        registry.register_all([iface1, iface2, provider, expected])
        checker = ConformanceChecker(resolver=registry)
        assert checker.conforms(provider, expected).ok

    def test_uncovered_interface_fails(self):
        registry = TypeRegistry()
        iface = interface_builder("q.IThing", "a2").method("Go", [], "void").build()
        provider = TypeBuilder("p.T", assembly_name="a1").build()
        expected = TypeBuilder("q.T", assembly_name="a2").implements(iface).build()
        registry.register_all([iface, provider, expected])
        checker = ConformanceChecker(resolver=registry)
        assert not checker.conforms(provider, expected).ok


class TestConstructorAspect:
    def test_missing_ctor_fails(self, checker):
        a = TypeBuilder("x.T", assembly_name="a1").build()
        b = TypeBuilder("x.T", assembly_name="a2").ctor([("n", "string")]).build()
        result = checker.conforms(a, b)
        assert not result.ok
        assert result.aspects[Aspect.CONSTRUCTORS] is False

    def test_matching_ctor_arity_and_types(self, checker):
        a = TypeBuilder("x.T", assembly_name="a1").ctor([("m", "string")]).build()
        b = TypeBuilder("x.T", assembly_name="a2").ctor([("n", "string")]).build()
        assert checker.conforms(a, b).ok

    def test_ctor_arg_permutation(self, checker):
        a = TypeBuilder("x.T", assembly_name="a1").ctor([("i", "int"), ("s", "string")]).build()
        b = TypeBuilder("x.T", assembly_name="a2").ctor([("s", "string"), ("i", "int")]).build()
        result = checker.conforms(a, b)
        assert result.ok
        ctor_match = result.mapping.ctor(2)
        assert ctor_match is not None
        assert ctor_match.permutation == (1, 0)


class TestUnresolvedReferences:
    def test_unresolved_member_types_compared_by_name(self, checker):
        # Neither x.Widget nor y.Widget resolve anywhere; the pragmatic
        # fallback compares simple names and records a warning.
        a = TypeBuilder("x.T", assembly_name="a1").field("w", "other.Widget").build()
        b = TypeBuilder("x.T", assembly_name="a2").field("w", "second.Widget").build()
        result = checker.conforms(a, b)
        assert result.ok
        assert any("compared by name" in w for w in result.warnings)

    def test_unresolved_name_mismatch_fails(self, checker):
        a = TypeBuilder("x.T", assembly_name="a1").field("w", "other.Widget").build()
        b = TypeBuilder("x.T", assembly_name="a2").field("w", "second.Gadget").build()
        assert not checker.conforms(a, b).ok
