"""Unit tests for witness mappings."""

import pytest

from repro.core.mapping import CtorMatch, FieldMatch, MethodMatch, TypeMapping
from repro.cts.members import (
    ConstructorInfo,
    FieldInfo,
    MethodInfo,
    ParameterInfo,
    TypeRef,
)
from repro.cts.types import INT, STRING, VOID


def method(name, param_types=(), return_type=VOID):
    params = [
        ParameterInfo("p%d" % i, TypeRef.to(t)) for i, t in enumerate(param_types)
    ]
    return MethodInfo(name, params, TypeRef.to(return_type))


class TestMethodMatch:
    def test_identity_permutation(self):
        match = MethodMatch(method("a", (INT, STRING)), method("b", (INT, STRING)), (0, 1))
        assert match.is_identity_permutation
        assert match.reorder([1, "x"]) == [1, "x"]

    def test_swap_permutation(self):
        match = MethodMatch(method("a", (STRING, INT)), method("b", (INT, STRING)), (1, 0))
        assert not match.is_identity_permutation
        assert match.reorder(["x", 1]) == [1, "x"]

    def test_reorder_arity_mismatch(self):
        match = MethodMatch(method("a", (INT,)), method("b", (INT,)), (0,))
        with pytest.raises(ValueError):
            match.reorder([1, 2])

    def test_repr(self):
        match = MethodMatch(method("expectedName"), method("providerName"), ())
        assert "expectedName" in repr(match)
        assert "providerName" in repr(match)


class TestCtorMatch:
    def test_reorder(self):
        expected = ConstructorInfo([ParameterInfo("a", TypeRef.to(INT)),
                                    ParameterInfo("b", TypeRef.to(STRING))])
        provider = ConstructorInfo([ParameterInfo("x", TypeRef.to(STRING)),
                                    ParameterInfo("y", TypeRef.to(INT))])
        match = CtorMatch(expected, provider, (1, 0))
        assert match.reorder([5, "s"]) == ["s", 5]

    def test_reorder_mismatch(self):
        match = CtorMatch(ConstructorInfo([]), ConstructorInfo([]), ())
        with pytest.raises(ValueError):
            match.reorder([1])


class TestTypeMapping:
    def _mapping(self):
        mapping = TypeMapping("p.T", "e.T")
        mapping.add_method(MethodMatch(method("Get"), method("Fetch"), ()))
        mapping.add_method(
            MethodMatch(method("Put", (INT,)), method("Store", (INT,)), (0,))
        )
        mapping.add_field(
            FieldMatch(
                FieldInfo("value", TypeRef.to(INT)),
                FieldInfo("val", TypeRef.to(INT)),
            )
        )
        mapping.add_ctor(CtorMatch(ConstructorInfo([]), ConstructorInfo([]), ()))
        return mapping

    def test_method_lookup_case_insensitive(self):
        mapping = self._mapping()
        assert mapping.method("GET", 0).provider.name == "Fetch"
        assert mapping.method("get", 0).provider.name == "Fetch"

    def test_method_lookup_wrong_arity(self):
        assert self._mapping().method("Get", 2) is None

    def test_method_by_name_unique(self):
        mapping = self._mapping()
        assert mapping.method_by_name("Put").provider.name == "Store"

    def test_method_by_name_ambiguous_returns_none(self):
        mapping = TypeMapping("p", "e")
        mapping.add_method(MethodMatch(method("M"), method("A"), ()))
        mapping.add_method(MethodMatch(method("M", (INT,)), method("B", (INT,)), (0,)))
        assert mapping.method_by_name("M") is None

    def test_field_lookup(self):
        assert self._mapping().field("VALUE").provider.name == "val"
        assert self._mapping().field("other") is None

    def test_ctor_lookup(self):
        assert self._mapping().ctor(0) is not None
        assert self._mapping().ctor(3) is None

    def test_is_identity_false_for_renames(self):
        assert not self._mapping().is_identity()

    def test_is_identity_true(self):
        mapping = TypeMapping("p.T", "e.T")
        mapping.add_method(MethodMatch(method("Same"), method("Same"), ()))
        assert mapping.is_identity()

    def test_is_identity_false_for_permutation(self):
        mapping = TypeMapping("p.T", "e.T")
        mapping.add_method(
            MethodMatch(method("M", (INT, STRING)), method("M", (STRING, INT)), (1, 0))
        )
        assert not mapping.is_identity()

    def test_identity_for(self):
        mapping = TypeMapping.identity_for("x.T")
        assert mapping.is_identity()
        assert mapping.provider_name == "x.T"

    def test_accessors_return_lists(self):
        mapping = self._mapping()
        assert len(mapping.methods) == 2
        assert len(mapping.fields) == 1
        assert len(mapping.ctors) == 1
