"""Tests for ambiguity resolution policies (the paper's "up to the
programmer" rule)."""

import pytest

from repro.core import (
    AmbiguityError,
    CallbackPolicy,
    ConformanceChecker,
    ConformanceOptions,
    FirstMatch,
    NamePolicy,
    PreferExactName,
    RequireUnique,
)
from repro.cts.builder import TypeBuilder


def ambiguous_pair():
    """Provider has two methods that both name-conform (LD<=1) to the single
    expected method 'Go'."""
    provider = (
        TypeBuilder("x.T", assembly_name="a1")
        .method("Go", [], "void")
        .method("Gon", [], "void")
        .build()
    )
    expected = TypeBuilder("x.T", assembly_name="a2").method("Gon", [], "void").build()
    return provider, expected


def relaxed_options(policy):
    return ConformanceOptions(name_policy=NamePolicy(max_distance=1), resolution=policy)


class TestFirstMatch:
    def test_takes_declaration_order(self):
        provider, expected = ambiguous_pair()
        checker = ConformanceChecker(options=relaxed_options(FirstMatch()))
        result = checker.conforms(provider, expected)
        assert result.ok
        assert result.mapping.method("Gon", 0).provider.name == "Go"


class TestPreferExactName:
    def test_prefers_exact(self):
        provider, expected = ambiguous_pair()
        checker = ConformanceChecker(options=relaxed_options(PreferExactName()))
        result = checker.conforms(provider, expected)
        assert result.mapping.method("Gon", 0).provider.name == "Gon"

    def test_prefers_exact_case_over_insensitive(self):
        provider = (
            TypeBuilder("x.T", assembly_name="a1")
            .method("go", [], "void")
            .method("Go", [], "void")
            .build()
        )
        expected = TypeBuilder("x.T", assembly_name="a2").method("Go", [], "void").build()
        checker = ConformanceChecker(
            options=ConformanceOptions(resolution=PreferExactName())
        )
        result = checker.conforms(provider, expected)
        assert result.mapping.method("Go", 0).provider.name == "Go"

    def test_default_policy_is_prefer_exact(self):
        provider, expected = ambiguous_pair()
        checker = ConformanceChecker(
            options=ConformanceOptions(name_policy=NamePolicy(max_distance=1))
        )
        result = checker.conforms(provider, expected)
        assert result.mapping.method("Gon", 0).provider.name == "Gon"


class TestRequireUnique:
    def test_raises_on_ambiguity(self):
        provider, expected = ambiguous_pair()
        checker = ConformanceChecker(options=relaxed_options(RequireUnique()))
        with pytest.raises(AmbiguityError):
            checker.conforms(provider, expected)

    def test_ok_when_unique(self):
        provider = TypeBuilder("x.T", assembly_name="a1").method("Go", [], "void").build()
        expected = TypeBuilder("x.T", assembly_name="a2").method("Go", [], "void").build()
        checker = ConformanceChecker(
            options=ConformanceOptions(resolution=RequireUnique())
        )
        assert checker.conforms(provider, expected).ok


class TestCallbackPolicy:
    def test_programmer_decides(self):
        provider, expected = ambiguous_pair()
        seen = {}

        def chooser(expected_name, candidates):
            seen["expected"] = expected_name
            seen["candidates"] = candidates
            return len(candidates) - 1  # pick last

        checker = ConformanceChecker(options=relaxed_options(CallbackPolicy(chooser)))
        result = checker.conforms(provider, expected)
        assert result.ok
        assert seen["expected"] == "Gon"
        assert set(seen["candidates"]) == {"Go", "Gon"}
        assert result.mapping.method("Gon", 0).provider.name == "Gon"

    def test_callback_can_veto(self):
        provider, expected = ambiguous_pair()
        checker = ConformanceChecker(
            options=relaxed_options(CallbackPolicy(lambda n, c: None))
        )
        assert not checker.conforms(provider, expected).ok

    def test_ambiguity_counted_in_stats(self):
        provider, expected = ambiguous_pair()
        checker = ConformanceChecker(options=relaxed_options(FirstMatch()))
        checker.conforms(provider, expected)
        assert checker.stats.ambiguities >= 1
