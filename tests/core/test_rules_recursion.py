"""Tests for recursive/cyclic type structures (coinductive checking) and
memoization soundness."""

import pytest

from repro.core import ConformanceChecker, Verdict
from repro.cts.builder import TypeBuilder
from repro.cts.registry import TypeRegistry


def linked_node(namespace, assembly):
    """A self-referential Node type: field next of type Node."""
    return (
        TypeBuilder("%s.Node" % namespace, assembly_name=assembly)
        .field("value", "int")
        .field("next", "%s.Node" % namespace)
        .method("GetNext", [], "%s.Node" % namespace)
        .build()
    )


class TestRecursiveTypes:
    def test_self_referential_types_conform(self):
        registry = TypeRegistry()
        a = linked_node("p", "a1")
        b = linked_node("q", "a2")
        registry.register_all([a, b])
        checker = ConformanceChecker(resolver=registry)
        result = checker.conforms(a, b)
        assert result.ok
        assert result.verdict is Verdict.IMPLICIT_STRUCTURAL

    def test_mutually_recursive_types(self):
        registry = TypeRegistry()

        def pair(ns, asm):
            ping = (
                TypeBuilder("%s.Ping" % ns, assembly_name=asm)
                .field("other", "%s.Pong" % ns)
                .build()
            )
            pong = (
                TypeBuilder("%s.Pong" % ns, assembly_name=asm)
                .field("other", "%s.Ping" % ns)
                .build()
            )
            return ping, pong

        ping1, pong1 = pair("p", "a1")
        ping2, pong2 = pair("q", "a2")
        registry.register_all([ping1, pong1, ping2, pong2])
        checker = ConformanceChecker(resolver=registry)
        assert checker.conforms(ping1, ping2).ok
        assert checker.conforms(pong1, pong2).ok

    def test_recursive_structure_mismatch_fails(self):
        registry = TypeRegistry()
        good = linked_node("p", "a1")
        # Node whose 'next' is an int: structurally different.
        bad = (
            TypeBuilder("q.Node", assembly_name="a2")
            .field("value", "int")
            .field("next", "int")
            .method("GetNext", [], "q.Node")
            .build()
        )
        registry.register_all([good, bad])
        checker = ConformanceChecker(resolver=registry)
        assert not checker.conforms(bad, good).ok

    def test_deep_nesting_terminates(self):
        registry = TypeRegistry()
        depth = 30

        def chain(ns, asm):
            types = []
            for i in range(depth):
                builder = TypeBuilder("%s.L%d" % (ns, i), assembly_name=asm)
                if i + 1 < depth:
                    builder.field("inner", "%s.L%d" % (ns, i + 1))
                types.append(builder.build())
            return types

        left = chain("p", "a1")
        right = chain("p2", "a2")
        # Rename right chain to match left names (simple names must conform).
        registry.register_all(left)
        registry.register_all(right)
        checker = ConformanceChecker(resolver=registry)
        # Same simple names L0..Ln on both sides -> conforms all the way down.
        assert checker.conforms(left[0], right[0]).ok


class TestMemoization:
    def test_cache_hit_on_repeat(self):
        registry = TypeRegistry()
        a = linked_node("p", "a1")
        b = linked_node("q", "a2")
        registry.register_all([a, b])
        checker = ConformanceChecker(resolver=registry)
        checker.conforms(a, b)
        size_after_first = checker.cache_size
        before_hits = checker.stats.cache_hits
        checker.conforms(a, b)
        assert checker.stats.cache_hits > before_hits
        assert checker.cache_size == size_after_first

    def test_clear_cache(self):
        registry = TypeRegistry()
        a = linked_node("p", "a1")
        b = linked_node("q", "a2")
        registry.register_all([a, b])
        checker = ConformanceChecker(resolver=registry)
        checker.conforms(a, b)
        assert checker.cache_size > 0
        checker.clear_cache()
        assert checker.cache_size == 0

    def test_cached_results_stable(self):
        registry = TypeRegistry()
        a = linked_node("p", "a1")
        b = linked_node("q", "a2")
        registry.register_all([a, b])
        checker = ConformanceChecker(resolver=registry)
        first = checker.conforms(a, b).ok
        second = checker.conforms(a, b).ok
        assert first == second

    def test_negative_results_cached(self):
        a = TypeBuilder("x.T", assembly_name="a1").method("A", [], "void").build()
        b = TypeBuilder("x.T", assembly_name="a2").method("B", [], "void").build()
        checker = ConformanceChecker()
        assert not checker.conforms(a, b).ok
        hits = checker.stats.cache_hits
        assert not checker.conforms(a, b).ok
        assert checker.stats.cache_hits > hits

    def test_assumption_hits_counted(self):
        registry = TypeRegistry()
        a = linked_node("p", "a1")
        b = linked_node("q", "a2")
        registry.register_all([a, b])
        checker = ConformanceChecker(resolver=registry)
        checker.conforms(a, b)
        assert checker.stats.assumption_hits >= 1

    def test_stats_as_dict(self):
        checker = ConformanceChecker()
        data = checker.stats.as_dict()
        assert set(data) == {
            "checks", "cache_hits", "assumption_hits", "resolutions", "ambiguities",
        }
