"""Tests for compound types (related work §2.2 reproduced on our checker)."""

import pytest

from repro.core import ConformanceChecker, ConformanceOptions
from repro.core.compound import (
    CompoundType,
    compound_view,
    conforms_to_compound,
)
from repro.cts.builder import TypeBuilder, interface_builder
from repro.runtime.loader import Runtime


def named_type():
    return (
        interface_builder("ifaces.Named")
        .method("GetName", [], "string")
        .build()
    )


def priced_type():
    return (
        interface_builder("ifaces.Priced")
        .method("GetPrice", [], "int")
        .build()
    )


def product_type():
    return (
        TypeBuilder("shop.Product", assembly_name="shop")
        .field("name", "string", visibility="private")
        .field("price", "int", visibility="private")
        .getter("GetName", "name", "string")
        .getter("GetPrice", "price", "int")
        .ctor([("n", "string"), ("p", "int")],
              body=lambda self, n, p: (self.set_field("name", n),
                                       self.set_field("price", p)) and None)
        .build()
    )


@pytest.fixture
def checker():
    return ConformanceChecker(options=ConformanceOptions(check_name=False))


class TestCompoundType:
    def test_requires_components(self):
        with pytest.raises(ValueError):
            CompoundType([])

    def test_display_name(self):
        compound = CompoundType([named_type(), priced_type()])
        assert compound.display_name == "[ifaces.Named, ifaces.Priced]"
        assert len(compound) == 2


class TestConformsToCompound:
    def test_satisfies_all_components(self, checker):
        compound = CompoundType([named_type(), priced_type()])
        result = conforms_to_compound(product_type(), compound, checker)
        assert result.ok
        assert result.failing_components() == []

    def test_partial_satisfaction_fails(self, checker):
        nameless = (
            TypeBuilder("shop.Tag", assembly_name="shop")
            .method("GetPrice", [], "int", body=lambda self: 0)
            .build()
        )
        compound = CompoundType([named_type(), priced_type()])
        result = conforms_to_compound(nameless, compound, checker)
        assert not result.ok
        assert result.failing_components() == ["ifaces.Named"]

    def test_explain_lists_components(self, checker):
        compound = CompoundType([named_type(), priced_type()])
        text = conforms_to_compound(product_type(), compound, checker).explain()
        assert "ifaces.Named" in text
        assert "ifaces.Priced" in text

    def test_mapping_for_component(self, checker):
        compound = CompoundType([named_type()])
        result = conforms_to_compound(product_type(), compound, checker)
        mapping = result.mapping_for(named_type())
        assert mapping is not None

    def test_single_component_equals_plain_check(self, checker):
        compound = CompoundType([named_type()])
        compound_ok = conforms_to_compound(product_type(), compound, checker).ok
        plain_ok = checker.conforms(product_type(), named_type()).ok
        assert compound_ok == plain_ok


class TestCompoundViews:
    def test_views_per_facet(self, checker):
        runtime = Runtime()
        product = product_type()
        runtime.load_type(product)
        instance = runtime.instantiate(product, ["Widget", 42])
        views = compound_view(
            instance, CompoundType([named_type(), priced_type()]), checker
        )
        assert views["ifaces.Named"].GetName() == "Widget"
        assert views["ifaces.Priced"].GetPrice() == 42

    def test_unsatisfied_compound_raises(self, checker):
        runtime = Runtime()
        product = product_type()
        runtime.load_type(product)
        instance = runtime.instantiate(product, ["W", 1])
        loud = interface_builder("ifaces.Loud").method("Shout", [], "void").build()
        with pytest.raises(ValueError):
            compound_view(instance, CompoundType([named_type(), loud]), checker)

    def test_untyped_object_rejected(self, checker):
        with pytest.raises(TypeError):
            compound_view(object(), CompoundType([named_type()]), checker)
