"""Tests for ConformanceOptions ablations — the "weaker rule" the paper
warns about, and the per-aspect switches."""

import pytest

from repro.core import ConformanceChecker, ConformanceOptions, Verdict
from repro.cts.builder import TypeBuilder
from repro.fixtures import account_csharp, person_csharp, person_java, person_vb


class TestNameOnlyWeakRule:
    """"One could think of having a weaker rule taking into account only the
    name of the types ... However, not taking into account the whole set of
    aspects breaks the type safety" (Section 4.2)."""

    def test_name_only_accepts_structural_impostor(self):
        # Same simple name 'Person', completely different structure.
        impostor = (
            TypeBuilder("evil.Person", assembly_name="evil")
            .method("Detonate", [], "void")
            .build()
        )
        weak = ConformanceChecker(options=ConformanceOptions.name_only())
        assert weak.conforms(impostor, person_csharp()).ok  # unsafe!

    def test_full_rule_rejects_impostor(self):
        impostor = (
            TypeBuilder("evil.Person", assembly_name="evil")
            .method("Detonate", [], "void")
            .build()
        )
        full = ConformanceChecker()
        assert not full.conforms(impostor, person_csharp()).ok

    def test_weak_acceptance_leads_to_runtime_error(self):
        """The exact failure mode the paper predicts: 'might lead to receive
        an error while trying to call a specific method onto the object'."""
        from repro.remoting.dynamic import wrap
        from repro.runtime.loader import Runtime

        impostor = (
            TypeBuilder("evil.Person", assembly_name="evil")
            .method("Detonate", [], "void", body=lambda self: None)
            .build()
        )
        weak = ConformanceChecker(options=ConformanceOptions.name_only())
        runtime = Runtime()
        runtime.load_type(impostor)
        instance = runtime.instantiate(impostor)
        view = wrap(instance, person_csharp(), weak)
        with pytest.raises(AttributeError):
            view.GetName()


class TestAspectSwitches:
    def test_disable_constructors(self):
        provider = (
            TypeBuilder("x.T", assembly_name="a1").method("Go", [], "void").build()
        )
        expected = (
            TypeBuilder("x.T", assembly_name="a2")
            .method("Go", [], "void")
            .ctor([("n", "string")])
            .build()
        )
        strict = ConformanceChecker()
        assert not strict.conforms(provider, expected).ok
        lax = ConformanceChecker(
            options=ConformanceOptions(check_constructors=False)
        )
        assert lax.conforms(provider, expected).ok

    def test_disable_fields(self):
        provider = TypeBuilder("x.T", assembly_name="a1").build()
        expected = TypeBuilder("x.T", assembly_name="a2").field("f", "int").build()
        assert not ConformanceChecker().conforms(provider, expected).ok
        lax = ConformanceChecker(options=ConformanceOptions(check_fields=False))
        assert lax.conforms(provider, expected).ok

    def test_disable_name(self):
        provider = person_csharp()
        renamed = (
            TypeBuilder("x.Human", assembly_name="a2")
            .field("name", "string", visibility="private")
            .method("GetName", [], "string")
            .method("SetName", [("n", "string")], "void")
            .ctor([("n", "string")])
            .build()
        )
        assert not ConformanceChecker().conforms(provider, renamed).ok
        lax = ConformanceChecker(options=ConformanceOptions(check_name=False))
        assert lax.conforms(provider, renamed).ok

    def test_disable_methods(self):
        provider = TypeBuilder("x.T", assembly_name="a1").build()
        expected = TypeBuilder("x.T", assembly_name="a2").method("M", [], "void").build()
        lax = ConformanceChecker(options=ConformanceOptions(check_methods=False))
        assert lax.conforms(provider, expected).ok


class TestPresets:
    def test_paper_defaults_strict_names(self):
        checker = ConformanceChecker(options=ConformanceOptions.paper_defaults())
        assert not checker.conforms(person_csharp(), person_java()).ok

    def test_pragmatic_unifies_the_motivating_example(self):
        checker = ConformanceChecker(options=ConformanceOptions.pragmatic())
        result = checker.conforms(person_csharp(), person_java())
        assert result.ok
        assert result.verdict is Verdict.IMPLICIT_STRUCTURAL

    def test_pragmatic_still_rejects_different_modules(self):
        checker = ConformanceChecker(options=ConformanceOptions.pragmatic())
        assert not checker.conforms(account_csharp(), person_java()).ok

    def test_vb_and_csharp_conform_under_paper_rules(self):
        """Same member names, different language: the paper's strict rules
        suffice — no relaxation needed."""
        checker = ConformanceChecker()
        result = checker.conforms(person_vb(), person_csharp())
        assert result.ok

    def test_repr_mentions_disabled_aspects(self):
        options = ConformanceOptions(check_fields=False, allow_numeric_widening=True)
        text = repr(options)
        assert "-fields" in text
        assert "+widening" in text


class TestOneShotHelper:
    def test_module_level_conforms(self):
        from repro.core import conforms

        assert conforms(person_vb(), person_csharp()).ok
        assert not conforms(account_csharp(), person_csharp()).ok
