"""Unit tests for conformance results and verdicts."""

import pytest

from repro.core.mapping import TypeMapping
from repro.core.result import Aspect, ConformanceResult, Verdict


class TestVerdict:
    def test_values_are_stable_wire_names(self):
        assert Verdict.EQUAL.value == "equal"
        assert Verdict.IMPLICIT_STRUCTURAL.value == "implicit"
        assert Verdict.FAILED.value == "failed"

    def test_all_aspects_enumerated(self):
        assert {a.value for a in Aspect} == {
            "name", "fields", "supertypes", "methods", "constructors",
        }


class TestConformanceResult:
    def test_success_truthy(self):
        result = ConformanceResult.success("a.T", "b.T", Verdict.EQUAL)
        assert result
        assert result.ok

    def test_failure_falsy(self):
        result = ConformanceResult.failure("a.T", "b.T", ["broken"])
        assert not result
        assert not result.ok
        assert result.mapping is None

    def test_success_gets_identity_mapping(self):
        result = ConformanceResult.success("a.T", "b.T", Verdict.EQUIVALENT)
        assert result.mapping is not None
        assert result.mapping.is_identity()

    def test_identity_verdicts_never_need_proxy(self):
        for verdict in (Verdict.EQUAL, Verdict.EQUIVALENT, Verdict.EXPLICIT):
            result = ConformanceResult.success("a.T", "b.T", verdict)
            assert not result.needs_proxy

    def test_implicit_with_renames_needs_proxy(self):
        from repro.core.mapping import MethodMatch
        from repro.cts.members import MethodInfo, TypeRef
        from repro.cts.types import VOID

        mapping = TypeMapping("a.T", "b.T")
        mapping.add_method(
            MethodMatch(
                MethodInfo("expectedName", [], TypeRef.to(VOID)),
                MethodInfo("providerName", [], TypeRef.to(VOID)),
                (),
            )
        )
        result = ConformanceResult.success(
            "a.T", "b.T", Verdict.IMPLICIT_STRUCTURAL, mapping=mapping
        )
        assert result.needs_proxy

    def test_explain_success(self):
        result = ConformanceResult.success(
            "a.T", "b.T", Verdict.IMPLICIT_STRUCTURAL,
            aspects={Aspect.NAME: True, Aspect.METHODS: True},
        )
        text = result.explain()
        assert "a.T conforms to b.T" in text
        assert "name" in text
        assert "methods" in text

    def test_explain_failure_lists_reasons(self):
        result = ConformanceResult.failure(
            "a.T", "b.T", ["no method Foo", "no field bar"],
            aspects={Aspect.METHODS: False},
            warnings=["compared by name"],
        )
        text = result.explain()
        assert "does NOT conform" in text
        assert "no method Foo" in text
        assert "warning: compared by name" in text
        assert "FAILED" in text

    def test_repr(self):
        result = ConformanceResult.success("a.T", "b.T", Verdict.EQUAL)
        assert "a.T" in repr(result)
        assert "equal" in repr(result)
