"""Tests for implicit behavioral conformance (the paper's §4.1 fragment)."""

import pytest

from repro.core import (
    BehavioralChecker,
    BehavioralOptions,
    ConformanceChecker,
    ConformanceOptions,
    IncomparableError,
)
from repro.fixtures import person_csharp, person_java, person_vb
from repro.langs.csharp import compile_source
from repro.runtime.loader import Runtime


def counter_source(increment_expr):
    return """
    class Counter {
        private int count;
        public Counter() { this.count = 0; }
        public int Get() { return this.count; }
        public void Bump(int by) { this.count = this.count + %s; }
    }
    """ % increment_expr


@pytest.fixture
def runtime():
    return Runtime()


def checker_for(runtime, **kwargs):
    return BehavioralChecker(
        runtime,
        structural=ConformanceChecker(options=ConformanceOptions.pragmatic()),
        options=BehavioralOptions(**kwargs),
    )


class TestAgreement:
    def test_identical_behaviour_conforms(self, runtime):
        a = compile_source(counter_source("by"), namespace="a")[0]
        b = compile_source(counter_source("by"), namespace="b")[0]
        runtime.load_type(a)
        runtime.load_type(b)
        result = checker_for(runtime).check(a, b)
        assert result.ok
        assert result.calls_made > 0
        assert "Get" in result.compared_methods

    def test_different_internals_same_behaviour(self, runtime):
        """Behavioural equivalence tolerates different implementations."""
        loop_impl = """
        class Summer {
            public int SumTo(int n) {
                int total = 0;
                int i = 1;
                while (i <= n) { total = total + i; i = i + 1; }
                if (n < 0) { return 0; }
                return total;
            }
        }
        """
        formula_impl = """
        class Summer {
            public int SumTo(int n) {
                if (n < 0) { return 0; }
                return n * (n + 1) / 2;
            }
        }
        """
        a = compile_source(loop_impl, namespace="a")[0]
        b = compile_source(formula_impl, namespace="b")[0]
        runtime.load_type(a)
        runtime.load_type(b)
        result = checker_for(runtime, int_bound=100).check(a, b)
        assert result.ok

    def test_paper_person_pair_strong_conformance(self, runtime):
        """The two programmers' Person types behave identically — "strong"
        implicit conformance per §4.1."""
        a = person_csharp()
        b = person_java()
        runtime.load_type(a)
        runtime.load_type(b)
        assert checker_for(runtime).strong_conforms(a, b)


class TestDivergence:
    def test_off_by_one_detected(self, runtime):
        a = compile_source(counter_source("by"), namespace="a")[0]
        bad = compile_source(counter_source("by + 1"), namespace="b")[0]
        runtime.load_type(a)
        runtime.load_type(bad)
        result = checker_for(runtime).check(a, bad)
        assert not result.ok
        assert result.divergences
        divergence = result.divergences[0]
        assert divergence.method_name in ("Get", "Bump")

    def test_stateful_divergence_found_through_getter(self, runtime):
        """The bug is invisible in return values of the setter (void); only
        the call-sequence harness catches it via the getter."""
        good = compile_source(
            """
            class Cell {
                private int v;
                public void Put(int x) { this.v = x; }
                public int Take() { return this.v; }
            }
            """,
            namespace="a",
        )[0]
        evil = compile_source(
            """
            class Cell {
                private int v;
                public void Put(int x) { this.v = x * 2; }
                public int Take() { return this.v; }
            }
            """,
            namespace="b",
        )[0]
        runtime.load_type(good)
        runtime.load_type(evil)
        result = checker_for(runtime, rounds=20).check(good, evil)
        assert not result.ok

    def test_exception_behaviour_compared(self, runtime):
        total = """
        class Div {
            public int Ratio(int a, int b) { if (b == 0) { return 0; } return a / b; }
        }
        """
        partial = """
        class Div {
            public int Ratio(int a, int b) { return a / b; }
        }
        """
        a = compile_source(total, namespace="a")[0]
        b = compile_source(partial, namespace="b")[0]
        runtime.load_type(a)
        runtime.load_type(b)
        result = checker_for(runtime, rounds=40, int_bound=3).check(a, b)
        # With |b| <= 3, zero divisors occur; one side raises, the other not.
        assert not result.ok


class TestScope:
    def test_non_primitive_methods_skipped(self, runtime):
        from repro.fixtures import employee_csharp, employee_java

        addr_a, emp_a = employee_csharp()
        addr_b, emp_b = employee_java()
        for info in (addr_a, emp_a, addr_b, emp_b):
            runtime.load_type(info)
        checker = BehavioralChecker(
            runtime,
            structural=ConformanceChecker(
                resolver=runtime.registry, options=ConformanceOptions.pragmatic()
            ),
        )
        result = checker.check(emp_a, emp_b)
        # GetAddress returns a non-primitive: skipped, as the paper warns.
        assert "getAddress" in result.skipped_methods
        assert "getName" in result.compared_methods
        assert result.ok

    def test_structurally_nonconformant_incomparable(self, runtime):
        from repro.fixtures import account_csharp

        a = account_csharp()
        b = person_csharp()
        runtime.load_type(a)
        runtime.load_type(b)
        with pytest.raises(IncomparableError):
            checker_for(runtime).check(a, b)

    def test_strong_conforms_false_when_incomparable(self, runtime):
        from repro.fixtures import account_csharp

        a = account_csharp()
        b = person_csharp()
        runtime.load_type(a)
        runtime.load_type(b)
        assert not checker_for(runtime).strong_conforms(a, b)

    def test_deterministic_given_seed(self, runtime):
        a = compile_source(counter_source("by"), namespace="a")[0]
        bad = compile_source(counter_source("by + 1"), namespace="b")[0]
        runtime.load_type(a)
        runtime.load_type(bad)
        r1 = checker_for(runtime, seed=42).check(a, bad)
        r2 = checker_for(runtime, seed=42).check(a, bad)
        assert len(r1.divergences) == len(r2.divergences)
        assert r1.divergences[0].args == r2.divergences[0].args

    def test_explain_mentions_divergence(self, runtime):
        a = compile_source(counter_source("by"), namespace="a")[0]
        bad = compile_source(counter_source("by + 1"), namespace="b")[0]
        runtime.load_type(a)
        runtime.load_type(bad)
        result = checker_for(runtime).check(a, bad)
        text = result.explain()
        assert "does NOT conform" in text
        assert "Divergence" in text
