"""Tests for rule (iv): method conformance — names, variance, permutations,
modifiers — and the witness mappings it produces."""

import pytest

from repro.core import ConformanceChecker, ConformanceOptions, NamePolicy, Verdict
from repro.cts.builder import TypeBuilder
from repro.cts.members import Modifiers
from repro.cts.registry import TypeRegistry


@pytest.fixture
def checker():
    return ConformanceChecker()


def ty(name, assembly):
    return TypeBuilder(name, assembly_name=assembly)


class TestMethodMatching:
    def test_every_expected_method_needed(self, checker):
        provider = ty("x.T", "a1").method("A", [], "void").build()
        expected = (
            ty("x.T", "a2").method("A", [], "void").method("B", [], "void").build()
        )
        assert not checker.conforms(provider, expected).ok

    def test_extra_provider_methods_fine(self, checker):
        provider = (
            ty("x.T", "a1").method("A", [], "void").method("Extra", [], "int").build()
        )
        expected = ty("x.T", "a2").method("A", [], "void").build()
        assert checker.conforms(provider, expected).ok

    def test_private_methods_invisible(self, checker):
        provider = ty("x.T", "a1").method("A", [], "void", visibility="private").build()
        expected = ty("x.T", "a2").method("A", [], "void").build()
        assert not checker.conforms(provider, expected).ok

    def test_arity_must_match(self, checker):
        provider = ty("x.T", "a1").method("A", [("x", "int")], "void").build()
        expected = ty("x.T", "a2").method("A", [], "void").build()
        assert not checker.conforms(provider, expected).ok

    def test_case_insensitive_method_names(self, checker):
        provider = ty("x.T", "a1").method("getname", [], "string").build()
        expected = ty("x.T", "a2").method("GetName", [], "string").build()
        result = checker.conforms(provider, expected)
        assert result.ok
        match = result.mapping.method("GetName", 0)
        assert match.provider.name == "getname"


class TestReturnCovariance:
    def test_same_return_ok(self, checker):
        provider = ty("x.T", "a1").method("Get", [], "int").build()
        expected = ty("x.T", "a2").method("Get", [], "int").build()
        assert checker.conforms(provider, expected).ok

    def test_different_primitive_return_fails(self, checker):
        provider = ty("x.T", "a1").method("Get", [], "int").build()
        expected = ty("x.T", "a2").method("Get", [], "string").build()
        assert not checker.conforms(provider, expected).ok

    def test_covariant_object_return(self):
        # Provider returns a subtype of what's expected: allowed (the caller
        # consumes the return value).
        registry = TypeRegistry()
        base = ty("p.Animal", "a0").method("Noise", [], "string").build()
        sub = ty("p.Dog", "a0").extends(base).method("Noise", [], "string").build()
        provider = ty("x.Shelter", "a1").method("Adopt", [], sub).build()
        expected = ty("x.Shelter", "a2").method("Adopt", [], base).build()
        registry.register_all([base, sub])
        checker = ConformanceChecker(resolver=registry)
        assert checker.conforms(provider, expected).ok

    def test_contravariant_return_fails(self):
        registry = TypeRegistry()
        base = ty("p.Animal", "a0").method("Noise", [], "string").build()
        sub = ty("p.Dog", "a0").extends(base).method("Noise", [], "string").build()
        provider = ty("x.Shelter", "a1").method("Adopt", [], base).build()
        expected = ty("x.Shelter", "a2").method("Adopt", [], sub).build()
        registry.register_all([base, sub])
        checker = ConformanceChecker(resolver=registry)
        assert not checker.conforms(provider, expected).ok


class TestArgumentContravariance:
    def test_provider_accepting_supertype_ok(self):
        registry = TypeRegistry()
        base = ty("p.Animal", "a0").method("Noise", [], "string").build()
        sub = ty("p.Dog", "a0").extends(base).method("Noise", [], "string").build()
        # Provider accepts any Animal; expected signature passes a Dog.
        provider = ty("x.Walker", "a1").method("Walk", [("a", base)], "void").build()
        expected = ty("x.Walker", "a2").method("Walk", [("d", sub)], "void").build()
        registry.register_all([base, sub])
        checker = ConformanceChecker(resolver=registry)
        assert checker.conforms(provider, expected).ok

    def test_provider_demanding_subtype_fails(self):
        registry = TypeRegistry()
        base = ty("p.Animal", "a0").method("Noise", [], "string").build()
        sub = ty("p.Dog", "a0").extends(base).method("Noise", [], "string").build()
        provider = ty("x.Walker", "a1").method("Walk", [("d", sub)], "void").build()
        expected = ty("x.Walker", "a2").method("Walk", [("a", base)], "void").build()
        registry.register_all([base, sub])
        checker = ConformanceChecker(resolver=registry)
        assert not checker.conforms(provider, expected).ok


class TestPermutations:
    def test_two_arg_swap(self, checker):
        provider = ty("x.T", "a1").method("Mix", [("i", "int"), ("s", "string")], "void").build()
        expected = ty("x.T", "a2").method("Mix", [("s", "string"), ("i", "int")], "void").build()
        result = checker.conforms(provider, expected)
        assert result.ok
        match = result.mapping.method("Mix", 2)
        # provider slot 0 (int) takes expected arg 1 (int)
        assert match.permutation == (1, 0)
        assert match.reorder(["text", 42]) == [42, "text"]

    def test_identity_permutation_preferred(self, checker):
        provider = (
            ty("x.T", "a1")
            .method("M", [("a", "int"), ("b", "int")], "void")
            .method("Extra", [], "void")
            .build()
        )
        expected = ty("x.T", "a2").method("M", [("c", "int"), ("d", "int")], "void").build()
        match = checker.conforms(provider, expected).mapping.method("M", 2)
        assert match.permutation == (0, 1)
        assert match.is_identity_permutation

    def test_three_way_rotation(self, checker):
        provider = ty("x.T", "a1").method(
            "M", [("a", "int"), ("b", "string"), ("c", "bool")], "void"
        ).build()
        expected = ty("x.T", "a2").method(
            "M", [("x", "bool"), ("y", "int"), ("z", "string")], "void"
        ).build()
        result = checker.conforms(provider, expected)
        assert result.ok
        match = result.mapping.method("M", 3)
        # provider (int, string, bool) drawing from expected (bool, int, string)
        assert match.permutation == (1, 2, 0)

    def test_no_valid_permutation(self, checker):
        provider = ty("x.T", "a1").method("M", [("a", "int"), ("b", "int")], "void").build()
        expected = ty("x.T", "a2").method("M", [("x", "string"), ("y", "int")], "void").build()
        assert not checker.conforms(provider, expected).ok

    def test_permutations_disabled(self):
        checker = ConformanceChecker(
            options=ConformanceOptions(allow_permutations=False)
        )
        provider = ty("x.T", "a1").method("M", [("i", "int"), ("s", "string")], "void").build()
        expected = ty("x.T", "a2").method("M", [("s", "string"), ("i", "int")], "void").build()
        assert not checker.conforms(provider, expected).ok

    def test_arity_above_cap_only_identity(self):
        checker = ConformanceChecker(
            options=ConformanceOptions(max_permutation_arity=2)
        )
        types = ["int", "string", "bool"]
        provider = ty("x.T", "a1").method("M", [("p%d" % i, t) for i, t in enumerate(types)], "void").build()
        rotated = types[1:] + types[:1]
        expected = ty("x.T", "a2").method("M", [("q%d" % i, t) for i, t in enumerate(rotated)], "void").build()
        assert not checker.conforms(provider, expected).ok


class TestModifierCompatibility:
    def test_static_mismatch_fails(self, checker):
        provider = ty("x.T", "a1").method("M", [], "void", static=True).build()
        expected = ty("x.T", "a2").method("M", [], "void").build()
        assert not checker.conforms(provider, expected).ok

    def test_static_match_ok(self, checker):
        provider = ty("x.T", "a1").method("M", [], "void", static=True).build()
        expected = ty("x.T", "a2").method("M", [], "void", static=True).build()
        assert checker.conforms(provider, expected).ok

    def test_abstract_flag_ignored_by_default(self, checker):
        # A concrete provider satisfies an abstract expected method.
        provider = ty("x.T", "a1").method("M", [], "void").build()
        expected = ty("x.T", "a2").method("M", [], "void", abstract=True).build()
        assert checker.conforms(provider, expected).ok

    def test_strict_modifiers_option(self):
        checker = ConformanceChecker(options=ConformanceOptions(strict_modifiers=True))
        provider = ty("x.T", "a1").method("M", [], "void").build()
        expected = ty("x.T", "a2").method("M", [], "void", abstract=True).build()
        assert not checker.conforms(provider, expected).ok


class TestMappingContents:
    def test_mapping_covers_all_expected_members(self):
        checker = ConformanceChecker(options=ConformanceOptions.pragmatic())
        from repro.fixtures import person_csharp, person_java

        result = checker.conforms(person_csharp(), person_java())
        mapping = result.mapping
        assert mapping.method("getPersonName", 0).provider.name == "GetName"
        assert mapping.method("setPersonName", 1).provider.name == "SetName"
        assert mapping.ctor(1) is not None

    def test_identity_mapping_detection(self, checker):
        a = ty("x.T", "a1").method("Go", [], "void").ctor([]).build()
        b = ty("x.T", "a2").method("Go", [], "void").ctor([]).build()
        result = checker.conforms(a, b)
        if result.verdict is Verdict.IMPLICIT_STRUCTURAL:
            assert result.mapping.is_identity()
        assert not result.needs_proxy

    def test_renamed_method_needs_proxy(self):
        checker = ConformanceChecker(
            options=ConformanceOptions(name_policy=NamePolicy(max_distance=3))
        )
        a = ty("x.T", "a1").method("Go", [], "void").build()
        b = ty("x.T", "a2").method("Gone", [], "void").build()
        result = checker.conforms(a, b)
        assert result.ok
        assert result.needs_proxy
