"""Tests for the related-work baseline matchers."""

import pytest

from repro.core import ExactMatcher, TaggedStructuralMatcher, Verdict
from repro.cts.builder import TypeBuilder, interface_builder
from repro.cts.registry import TypeRegistry
from repro.fixtures import person_csharp, person_java, person_vb


class TestExactMatcher:
    def test_identity(self):
        person = person_csharp()
        assert ExactMatcher().conforms(person, person).verdict is Verdict.EQUAL

    def test_object_root(self):
        from repro.cts.types import OBJECT

        assert ExactMatcher().conforms(person_csharp(), OBJECT).ok

    def test_declared_subtype(self):
        registry = TypeRegistry()
        base = TypeBuilder("x.Base").build()
        sub = TypeBuilder("x.Sub").extends(base).build()
        registry.register_all([base, sub])
        matcher = ExactMatcher(registry)
        assert matcher.conforms(sub, base).verdict is Verdict.EXPLICIT

    def test_transitive_through_interfaces(self):
        registry = TypeRegistry()
        iface = interface_builder("x.I").build()
        mid = TypeBuilder("x.Mid").implements(iface).build()
        sub = TypeBuilder("x.Sub").extends(mid).build()
        registry.register_all([iface, mid, sub])
        matcher = ExactMatcher(registry)
        assert matcher.conforms(sub, iface).ok

    def test_rejects_structural_twins(self):
        """The key limitation: two Person types that the paper's checker
        unifies are NOT interoperable under exact matching."""
        assert not ExactMatcher().conforms(person_vb(), person_csharp()).ok


class TestTaggedStructuralMatcher:
    def test_untagged_types_never_match(self):
        matcher = TaggedStructuralMatcher()
        assert not matcher.conforms(person_vb(), person_csharp()).ok

    def test_tagged_identical_signatures_match(self):
        a = person_vb()       # GetName/SetName
        b = person_csharp()   # GetName/SetName — same signatures
        matcher = TaggedStructuralMatcher()
        matcher.tag(a.full_name, b.full_name)
        assert matcher.conforms(a, b).ok

    def test_tagged_but_renamed_methods_fail(self):
        """Läufer-style rules require identical names: the paper's renamed
        accessors (getPersonName) defeat it even when tagged."""
        a = person_csharp()
        b = person_java()
        matcher = TaggedStructuralMatcher()
        matcher.tag(a.full_name, b.full_name)
        assert not matcher.conforms(a, b).ok

    def test_one_sided_tag_insufficient(self):
        a = person_vb()
        b = person_csharp()
        matcher = TaggedStructuralMatcher()
        matcher.tag(a.full_name)
        assert not matcher.conforms(a, b).ok

    def test_explicit_subtyping_still_works_untagged(self):
        registry = TypeRegistry()
        base = TypeBuilder("x.Base").build()
        sub = TypeBuilder("x.Sub").extends(base).build()
        registry.register_all([base, sub])
        matcher = TaggedStructuralMatcher(resolver=registry)
        assert matcher.conforms(sub, base).ok

    def test_case_sensitive_unlike_paper(self):
        a = (
            TypeBuilder("x.T", assembly_name="a1")
            .method("getname", [], "string")
            .build()
        )
        b = (
            TypeBuilder("x.T", assembly_name="a2")
            .method("GetName", [], "string")
            .build()
        )
        matcher = TaggedStructuralMatcher()
        matcher.tag("x.T")
        assert not matcher.conforms(a, b).ok
