"""Tests for the C#-like frontend."""

import pytest

from repro.cts.members import Modifiers, Visibility
from repro.cts.types import TypeKind
from repro.langs.cfamily import ParseError
from repro.langs.csharp import compile_source, parse
from repro.runtime.loader import Runtime


def compile_one(source, namespace="t"):
    types = compile_source(source, namespace=namespace)
    assert len(types) == 1
    return types[0]


def new_runtime(*types):
    runtime = Runtime()
    for info in types:
        runtime.load_type(info)
    return runtime


class TestDeclarations:
    def test_empty_class(self):
        info = compile_one("class Empty { }")
        assert info.full_name == "t.Empty"
        assert info.kind is TypeKind.CLASS
        assert info.superclass.full_name == "System.Object"

    def test_heritage_clause(self):
        source = "class Sub : Base, IThing { }"
        info = compile_one(source)
        assert info.superclass.full_name == "t.Base"
        assert [i.full_name for i in info.interfaces] == ["t.IThing"]

    def test_interface_only_heritage(self):
        info = compile_one("class Sub : IThing, IOther { }")
        assert info.superclass.full_name == "System.Object"
        assert len(info.interfaces) == 2

    def test_interface_declaration(self):
        info = compile_one("interface INamed { string GetName(); }")
        assert info.kind is TypeKind.INTERFACE
        assert info.find_method("GetName").body is None

    def test_field_visibility(self):
        info = compile_one("class C { private string name; public int age; }")
        assert info.find_field("name").visibility is Visibility.PRIVATE
        assert info.find_field("age").visibility is Visibility.PUBLIC

    def test_static_modifier(self):
        info = compile_one("class C { public static int Count() { return 1; } }")
        assert info.find_method("Count").modifiers & Modifiers.STATIC

    def test_qualified_type_names(self):
        info = compile_one("class C { public other.pkg.Thing f; }")
        assert info.find_field("f").type_ref.full_name == "other.pkg.Thing"

    def test_parse_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse("class { }")

    def test_parse_error_unclosed_body(self):
        with pytest.raises(ParseError):
            parse("class C {")


class TestExecution:
    def test_accessors(self):
        info = compile_one(
            """
            class Person {
                private string name;
                public Person(string n) { this.name = n; }
                public string GetName() { return this.name; }
                public void SetName(string n) { this.name = n; }
            }
            """
        )
        runtime = new_runtime(info)
        person = runtime.instantiate(info, ["Anders"])
        assert person.invoke("GetName") == "Anders"
        person.invoke("SetName", "Hejlsberg")
        assert person.invoke("GetName") == "Hejlsberg"

    def test_implicit_field_access_without_this(self):
        info = compile_one(
            """
            class Counter {
                private int count;
                public void Inc() { count = count + 1; }
                public int Get() { return count; }
            }
            """
        )
        runtime = new_runtime(info)
        counter = runtime.instantiate(info)
        counter.invoke("Inc")
        counter.invoke("Inc")
        assert counter.invoke("Get") == 2

    def test_arithmetic_and_precedence(self):
        info = compile_one(
            """
            class Math2 {
                public int Calc(int a, int b) { return a + b * 2 - 1; }
                public bool Both(bool x, bool y) { return x && y || a(x); }
                public bool a(bool v) { return !v; }
            }
            """
        )
        runtime = new_runtime(info)
        math2 = runtime.instantiate(info)
        assert math2.invoke("Calc", 3, 4) == 10
        assert math2.invoke("Both", True, True) is True
        assert math2.invoke("Both", False, True) is True  # a(False) == True
        assert math2.invoke("Both", True, False) is False

    def test_if_else_chain(self):
        info = compile_one(
            """
            class Grader {
                public string Grade(int score) {
                    if (score >= 90) { return "A"; }
                    else if (score >= 80) { return "B"; }
                    else { return "C"; }
                }
            }
            """
        )
        runtime = new_runtime(info)
        grader = runtime.instantiate(info)
        assert grader.invoke("Grade", 95) == "A"
        assert grader.invoke("Grade", 85) == "B"
        assert grader.invoke("Grade", 50) == "C"

    def test_while_loop(self):
        info = compile_one(
            """
            class Summer {
                public int SumTo(int n) {
                    int total = 0;
                    int i = 1;
                    while (i <= n) {
                        total = total + i;
                        i = i + 1;
                    }
                    return total;
                }
            }
            """
        )
        runtime = new_runtime(info)
        summer = runtime.instantiate(info)
        assert summer.invoke("SumTo", 10) == 55

    def test_local_var_declarations(self):
        info = compile_one(
            """
            class Locals {
                public int F() {
                    int a = 5;
                    var b = 6;
                    string s;
                    s = "x";
                    return a + b;
                }
            }
            """
        )
        runtime = new_runtime(info)
        assert runtime.instantiate(info).invoke("F") == 11

    def test_new_and_cross_class_calls(self):
        types = compile_source(
            """
            class Pair {
                private int a;
                private int b;
                public Pair(int x, int y) { this.a = x; this.b = y; }
                public int Sum() { return this.a + this.b; }
            }
            class Factory {
                public int Make() {
                    Pair p = new Pair(3, 4);
                    return p.Sum();
                }
            }
            """,
            namespace="t",
        )
        runtime = new_runtime(*types)
        factory = runtime.instantiate(types[1])
        assert factory.invoke("Make") == 7

    def test_string_concatenation(self):
        info = compile_one(
            """
            class Greeter {
                public string Greet(string who) { return "Hello, " + who + "!"; }
            }
            """
        )
        runtime = new_runtime(info)
        assert runtime.instantiate(info).invoke("Greet", "World") == "Hello, World!"

    def test_method_calling_own_method(self):
        info = compile_one(
            """
            class Fib {
                public int Compute(int n) {
                    if (n < 2) { return n; }
                    return Compute(n - 1) + Compute(n - 2);
                }
            }
            """
        )
        runtime = new_runtime(info)
        assert runtime.instantiate(info).invoke("Compute", 10) == 55
