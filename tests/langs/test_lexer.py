"""Tests for the C-family tokenizer."""

import pytest

from repro.langs.lexer import LexError, Token, TokenStream, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]  # drop EOF


class TestTokenize:
    def test_identifiers_and_punct(self):
        assert kinds("foo . bar ;") == [
            ("ident", "foo"), ("punct", "."), ("ident", "bar"), ("punct", ";"),
        ]

    def test_numbers(self):
        assert kinds("12 3.5") == [("int", "12"), ("float", "3.5")]

    def test_int_followed_by_dot_method(self):
        # "12.foo" must not lex as a float
        assert kinds("12.foo")[:2] == [("int", "12"), ("punct", ".")]

    def test_strings_with_escapes(self):
        tokens = tokenize(r'"a\nb\"c"')
        assert tokens[0].value == 'a\nb"c'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unknown_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_line_comments(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comments(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_two_char_operators(self):
        assert kinds("a == b != c <= d >= e && f || g")[1::2] == [
            ("punct", "=="), ("punct", "!="), ("punct", "<="),
            ("punct", ">="), ("punct", "&&"), ("punct", "||"),
        ]

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")


class TestTokenStream:
    def test_peek_does_not_advance(self):
        ts = TokenStream(tokenize("a b"))
        assert ts.peek().value == "a"
        assert ts.peek().value == "a"

    def test_next_advances(self):
        ts = TokenStream(tokenize("a b"))
        assert ts.next().value == "a"
        assert ts.next().value == "b"
        assert ts.exhausted

    def test_next_at_eof_stays(self):
        ts = TokenStream(tokenize(""))
        assert ts.next().kind == Token.EOF
        assert ts.next().kind == Token.EOF

    def test_accept(self):
        ts = TokenStream(tokenize("( foo"))
        assert ts.accept_punct("(")
        assert not ts.accept_punct(")")
        assert ts.accept_ident("foo")

    def test_expect_raises_with_line(self):
        ts = TokenStream(tokenize("foo"))
        with pytest.raises(LexError):
            ts.expect_punct(";")

    def test_peek_offset(self):
        ts = TokenStream(tokenize("a b c"))
        assert ts.peek(2).value == "c"
