"""Tests for array literals, indexing and for-loops in the C-family
frontends (and the IL ops behind them)."""

import pytest

from repro.il.instructions import Instr, MethodBody, Op
from repro.il.interp import IlRuntimeError, Interpreter
from repro.langs.cfamily import ParseError
from repro.langs.csharp import compile_source
from repro.langs.java import compile_source as compile_java
from repro.runtime.loader import Runtime


def compile_and_load(source, namespace="t"):
    runtime = Runtime()
    types = compile_source(source, namespace=namespace)
    for info in types:
        runtime.load_type(info)
    return runtime, types


class TestArrayLiterals:
    def test_literal_and_index(self):
        runtime, types = compile_and_load(
            """
            class A {
                public int Second() {
                    int[] xs = new int[] { 10, 20, 30 };
                    return xs[1];
                }
            }
            """
        )
        assert runtime.instantiate(types[0]).invoke("Second") == 20

    def test_empty_literal(self):
        runtime, types = compile_and_load(
            """
            class A {
                public int Count() {
                    int[] xs = new int[] { };
                    return xs.Length;
                }
            }
            """
        )
        assert runtime.instantiate(types[0]).invoke("Count") == 0

    def test_length_property(self):
        runtime, types = compile_and_load(
            """
            class A {
                public int Len(string[] names) { return names.Length; }
            }
            """
        )
        assert runtime.instantiate(types[0]).invoke("Len", ["a", "b", "c"]) == 3

    def test_index_assignment(self):
        runtime, types = compile_and_load(
            """
            class A {
                public int Set(int[] xs) {
                    xs[0] = 99;
                    return xs[0];
                }
            }
            """
        )
        values = [1, 2]
        assert runtime.instantiate(types[0]).invoke("Set", values) == 99
        assert values == [99, 2]

    def test_out_of_range_raises(self):
        runtime, types = compile_and_load(
            """
            class A {
                public int Get(int[] xs) { return xs[5]; }
            }
            """
        )
        with pytest.raises(IlRuntimeError):
            runtime.instantiate(types[0]).invoke("Get", [1])

    def test_string_indexing(self):
        runtime, types = compile_and_load(
            """
            class A {
                public string Ch(string s, int i) { return s[i]; }
            }
            """
        )
        assert runtime.instantiate(types[0]).invoke("Ch", "hello", 1) == "e"


class TestForLoops:
    def test_classic_for(self):
        runtime, types = compile_and_load(
            """
            class A {
                public int SumTo(int n) {
                    int total = 0;
                    for (int i = 1; i <= n; i = i + 1) {
                        total = total + i;
                    }
                    return total;
                }
            }
            """
        )
        assert runtime.instantiate(types[0]).invoke("SumTo", 10) == 55

    def test_for_over_array(self):
        runtime, types = compile_and_load(
            """
            class A {
                public int Sum(int[] xs) {
                    int total = 0;
                    for (int i = 0; i < xs.Length; i = i + 1) {
                        total = total + xs[i];
                    }
                    return total;
                }
            }
            """
        )
        assert runtime.instantiate(types[0]).invoke("Sum", [3, 4, 5]) == 12

    def test_for_without_init(self):
        runtime, types = compile_and_load(
            """
            class A {
                public int Count(int n) {
                    int i = 0;
                    for (; i < n; i = i + 1) { }
                    return i;
                }
            }
            """
        )
        assert runtime.instantiate(types[0]).invoke("Count", 4) == 4

    def test_java_dialect_too(self):
        runtime = Runtime()
        types = compile_java(
            """
            class A {
                public int Max(int[] xs) {
                    int best = xs[0];
                    for (int i = 1; i < xs.length(); i = i + 1) {
                        if (xs[i] > best) { best = xs[i]; }
                    }
                    return best;
                }
                public int length() { return 0; }
            }
            """,
            namespace="j",
        )
        # Use .Length via field form instead; Java 'length()' clash avoided.
        types = compile_java(
            """
            class A {
                public int Max(int[] xs) {
                    int best = xs[0];
                    for (int i = 1; i < xs.Length; i = i + 1) {
                        if (xs[i] > best) { best = xs[i]; }
                    }
                    return best;
                }
            }
            """,
            namespace="j",
        )
        for info in types:
            runtime.load_type(info)
        assert runtime.instantiate(types[0]).invoke("Max", [3, 9, 2]) == 9

    def test_bad_for_initialiser(self):
        with pytest.raises(ParseError):
            compile_source(
                "class A { public void F() { for (1 + 2; true; ) { } } }",
                namespace="t",
            )


class TestIlOpsDirectly:
    def _run(self, instrs, args=()):
        class _Env:
            def get_field(self, r, n):
                raise AssertionError

            set_field = call_method = new_instance = get_field

        return Interpreter(_Env()).execute(MethodBody(instrs), None, list(args))

    def test_new_list(self):
        result = self._run([
            Instr(Op.PUSH_CONST, 1),
            Instr(Op.PUSH_CONST, 2),
            Instr(Op.NEW_LIST, 2),
            Instr(Op.RETURN),
        ])
        assert result == [1, 2]

    def test_list_len(self):
        result = self._run([
            Instr(Op.PUSH_CONST, "abcd"),
            Instr(Op.LIST_LEN),
            Instr(Op.RETURN),
        ])
        assert result == 4

    def test_list_len_on_int_fails(self):
        with pytest.raises(IlRuntimeError):
            self._run([
                Instr(Op.PUSH_CONST, 5),
                Instr(Op.LIST_LEN),
                Instr(Op.RETURN),
            ])

    def test_index_on_dict(self):
        result = self._run([
            Instr(Op.LOAD_ARG, 0),
            Instr(Op.PUSH_CONST, "k"),
            Instr(Op.INDEX_GET),
            Instr(Op.RETURN),
        ], args=[{"k": 7}])
        assert result == 7

    def test_index_non_collection(self):
        with pytest.raises(IlRuntimeError):
            self._run([
                Instr(Op.PUSH_CONST, 5),
                Instr(Op.PUSH_CONST, 0),
                Instr(Op.INDEX_GET),
                Instr(Op.RETURN),
            ])

    def test_bool_index_rejected(self):
        with pytest.raises(IlRuntimeError):
            self._run([
                Instr(Op.LOAD_ARG, 0),
                Instr(Op.PUSH_CONST, True),
                Instr(Op.INDEX_GET),
                Instr(Op.RETURN),
            ], args=[[1, 2]])
