"""Tests for the Java-like frontend."""

import pytest

from repro.cts.types import TypeKind
from repro.langs.java import compile_source, parse
from repro.runtime.loader import Runtime


def compile_one(source, namespace="j"):
    types = compile_source(source, namespace=namespace)
    assert len(types) == 1
    return types[0]


class TestHeritage:
    def test_extends(self):
        info = compile_one("class Sub extends Base { }")
        assert info.superclass.full_name == "j.Base"

    def test_implements(self):
        info = compile_one("class Sub implements A, B { }")
        assert [i.full_name for i in info.interfaces] == ["j.A", "j.B"]

    def test_extends_and_implements(self):
        info = compile_one("class Sub extends Base implements A { }")
        assert info.superclass.full_name == "j.Base"
        assert [i.full_name for i in info.interfaces] == ["j.A"]

    def test_plain_class_defaults_to_object(self):
        info = compile_one("class Plain { }")
        assert info.superclass.full_name == "System.Object"


class TestJavaTypeSpellings:
    def test_java_primitive_names(self):
        info = compile_one(
            """
            class Types {
                public boolean flag;
                public int count;
                public String label;
            }
            """
        )
        assert info.find_field("flag").type_ref.full_name == "System.Boolean"
        assert info.find_field("count").type_ref.full_name == "System.Int32"
        # 'String' resolves via the case-insensitive alias table
        assert info.find_field("label").type_ref.full_name == "System.String"


class TestExecution:
    def test_person_accessors(self):
        info = compile_one(
            """
            class Person {
                private String name;
                public Person(String n) { this.name = n; }
                public String getPersonName() { return this.name; }
                public void setPersonName(String n) { this.name = n; }
            }
            """
        )
        runtime = Runtime()
        runtime.load_type(info)
        person = runtime.instantiate(info, ["James"])
        assert person.invoke("getPersonName") == "James"
        person.invoke("setPersonName", "Gosling")
        assert person.invoke("getPersonName") == "Gosling"

    def test_same_source_same_il_as_csharp(self):
        """The two C-family frontends compile identical logic to identical IL."""
        from repro.langs.csharp import compile_source as compile_cs

        body_src = "{ return a + b * 2; }"
        cs = compile_cs("class M { public int f(int a, int b) %s }" % body_src, namespace="x")[0]
        jv = compile_one("class M { public int f(int a, int b) %s }" % body_src, namespace="x")
        assert cs.find_method("f").body == jv.find_method("f").body

    def test_interface(self):
        info = compile_one("interface Named { String getName(); }")
        assert info.kind is TypeKind.INTERFACE
        assert info.find_method("getName").body is None
