"""Tests for the VB-like frontend."""

import pytest

from repro.cts.members import Modifiers, Visibility
from repro.cts.types import TypeKind
from repro.langs.vb import VbParseError, compile_source, parse
from repro.runtime.loader import Runtime


def compile_one(source, namespace="v"):
    types = compile_source(source, namespace=namespace)
    assert len(types) == 1
    return types[0]


def new_runtime(*types):
    runtime = Runtime()
    for info in types:
        runtime.load_type(info)
    return runtime


class TestDeclarations:
    def test_class_with_inherits_and_implements(self):
        info = compile_one(
            """
            Class Sub1
                Inherits Base
                Implements IThing, IOther
            End Class
            """
        )
        assert info.superclass.full_name == "v.Base"
        assert [i.full_name for i in info.interfaces] == ["v.IThing", "v.IOther"]

    def test_field_declaration(self):
        info = compile_one(
            """
            Class C
                Private name As String
                Public age As Integer
            End Class
            """
        )
        assert info.find_field("name").visibility is Visibility.PRIVATE
        assert info.find_field("age").type_ref.full_name == "System.Int32"

    def test_shared_maps_to_static(self):
        info = compile_one(
            """
            Class C
                Public Shared Function One() As Integer
                    Return 1
                End Function
            End Class
            """
        )
        assert info.find_method("One").modifiers & Modifiers.STATIC

    def test_interface(self):
        info = compile_one(
            """
            Interface INamed
                Function GetName() As String
                Sub SetName(n As String)
            End Interface
            """
        )
        assert info.kind is TypeKind.INTERFACE
        assert info.find_method("GetName").body is None
        assert info.find_method("SetName").body is None

    def test_comments_ignored(self):
        info = compile_one(
            """
            Class C  ' a class
                ' just a comment line
                Public x As Integer
            End Class
            """
        )
        assert info.find_field("x") is not None

    def test_missing_end_class(self):
        with pytest.raises(VbParseError):
            parse("Class C\nPublic x As Integer\n")


class TestExecution:
    def test_person(self):
        info = compile_one(
            """
            Class Person
                Private name As String
                Public Sub New(n As String)
                    Me.name = n
                End Sub
                Public Function GetName() As String
                    Return Me.name
                End Function
                Public Sub SetName(n As String)
                    Me.name = n
                End Sub
            End Class
            """
        )
        runtime = new_runtime(info)
        person = runtime.instantiate(info, ["Alain"])
        assert person.invoke("GetName") == "Alain"
        person.invoke("SetName", "Basic")
        assert person.invoke("GetName") == "Basic"

    def test_if_elseif_else(self):
        info = compile_one(
            """
            Class Grader
                Public Function Grade(score As Integer) As String
                    If score >= 90 Then
                        Return "A"
                    ElseIf score >= 80 Then
                        Return "B"
                    Else
                        Return "C"
                    End If
                End Function
            End Class
            """
        )
        runtime = new_runtime(info)
        grader = runtime.instantiate(info)
        assert grader.invoke("Grade", 95) == "A"
        assert grader.invoke("Grade", 85) == "B"
        assert grader.invoke("Grade", 10) == "C"

    def test_while_loop_and_dim(self):
        info = compile_one(
            """
            Class Summer
                Public Function SumTo(n As Integer) As Integer
                    Dim total As Integer = 0
                    Dim i As Integer = 1
                    While i <= n
                        total = total + i
                        i = i + 1
                    End While
                    Return total
                End Function
            End Class
            """
        )
        runtime = new_runtime(info)
        assert runtime.instantiate(info).invoke("SumTo", 10) == 55

    def test_vb_operators(self):
        info = compile_one(
            """
            Class Ops
                Public Function Test(a As Integer, b As Integer) As Boolean
                    Return a = b Or Not a < b And b <> 0
                End Function
                Public Function Concat(x As String, n As Integer) As String
                    Return x & n
                End Function
                Public Function Remainder(a As Integer, b As Integer) As Integer
                    Return a Mod b
                End Function
            End Class
            """
        )
        runtime = new_runtime(info)
        ops = runtime.instantiate(info)
        assert ops.invoke("Test", 2, 2) is True
        assert ops.invoke("Test", 3, 2) is True   # Not 3<2 And 2<>0
        assert ops.invoke("Test", 1, 2) is False
        assert ops.invoke("Concat", "n=", 5) == "n=5"
        assert ops.invoke("Remainder", 7, 3) == 1

    def test_nothing_and_booleans(self):
        info = compile_one(
            """
            Class Lits
                Public Function GetNothing() As Object
                    Return Nothing
                End Function
                Public Function Truth() As Boolean
                    Return True
                End Function
            End Class
            """
        )
        runtime = new_runtime(info)
        lits = runtime.instantiate(info)
        assert lits.invoke("GetNothing") is None
        assert lits.invoke("Truth") is True

    def test_new_object(self):
        types = compile_source(
            """
            Class Point
                Public x As Integer
                Public Sub New(a As Integer)
                    Me.x = a
                End Sub
            End Class
            Class Factory
                Public Function Make() As Integer
                    Dim p As Point = New Point(9)
                    Return p.x
                End Function
            End Class
            """,
            namespace="v",
        )
        runtime = new_runtime(*types)
        factory = runtime.instantiate(types[1])
        assert factory.invoke("Make") == 9


class TestCrossLanguage:
    def test_vb_and_csharp_compile_to_same_il(self):
        from repro.langs.csharp import compile_source as compile_cs

        vb = compile_one(
            """
            Class M
                Public Function AddOne(a As Integer) As Integer
                    Return a + 1
                End Function
            End Class
            """,
            namespace="x",
        )
        cs = compile_cs(
            "class M { public int AddOne(int a) { return a + 1; } }",
            namespace="x",
        )[0]
        assert vb.find_method("AddOne").body == cs.find_method("AddOne").body
