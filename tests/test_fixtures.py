"""Sanity tests over the shared paper fixtures."""

import pytest

from repro import fixtures
from repro.runtime.loader import Runtime


class TestPersonFixtures:
    def test_three_languages_compile(self):
        for factory in (fixtures.person_csharp, fixtures.person_java,
                        fixtures.person_vb):
            info = factory()
            assert info.simple_name == "Person"
            assert len(info.public_methods()) == 2
            assert len(info.public_constructors()) == 1

    def test_distinct_namespaces_and_identities(self):
        types = [fixtures.person_csharp(), fixtures.person_java(),
                 fixtures.person_vb()]
        assert len({t.full_name for t in types}) == 3
        assert len({t.guid for t in types}) == 3

    def test_factories_are_deterministic(self):
        assert fixtures.person_csharp().guid == fixtures.person_csharp().guid

    def test_all_person_flavours_run(self):
        runtime = Runtime()
        for factory, getter in (
            (fixtures.person_csharp, "GetName"),
            (fixtures.person_java, "getPersonName"),
            (fixtures.person_vb, "GetName"),
        ):
            info = factory()
            runtime.load_type(info)
            instance = runtime.instantiate(info, ["Check"])
            assert instance.invoke(getter) == "Check"


class TestOtherFixtures:
    def test_account_is_not_a_person(self):
        account = fixtures.account_csharp()
        assert account.simple_name == "Account"
        assert account.find_method("Deposit") is not None

    def test_account_behaviour(self):
        runtime = Runtime()
        account_type = fixtures.account_csharp()
        runtime.load_type(account_type)
        account = runtime.instantiate(account_type, ["owner", 100])
        account.invoke("Deposit", 50)
        assert account.invoke("GetBalance") == 150

    def test_employee_pairs_nested(self):
        for factory in (fixtures.employee_csharp, fixtures.employee_java):
            address, employee = factory()
            assert address.simple_name == "Address"
            assert employee.simple_name == "Employee"
            refs = employee.referenced_type_names()
            assert address.full_name in refs

    def test_assembly_pairs_link_and_host(self):
        asm_a, asm_b = fixtures.person_assembly_pair()
        assert asm_a.name == "person-a"
        assert asm_b.name == "person-b"
        hr_a, hr_b = fixtures.employee_assembly_pair()
        # The link step resolved the Employee->Address sibling ref.
        employee = hr_a.find_type("demo.a.Employee")
        assert employee.find_field("address").type_ref.is_resolved
