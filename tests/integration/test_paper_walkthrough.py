"""Paper walkthrough: one executable check per claim, section by section.

These tests read as an index from the paper's text into the codebase —
each docstring quotes or paraphrases the claim being demonstrated.
"""

import pytest

from repro.core import (
    ConformanceChecker,
    ConformanceOptions,
    ExactMatcher,
    TaggedStructuralMatcher,
    Verdict,
)
from repro.cts.assembly import Assembly
from repro.fixtures import person_csharp, person_java, person_vb
from repro.net.network import SimulatedNetwork
from repro.remoting.dynamic import wrap
from repro.remoting.remote import RemotingPeer
from repro.runtime.loader import Runtime
from repro.transport.protocol import InteropPeer


def pragmatic():
    return ConformanceChecker(options=ConformanceOptions.pragmatic())


class TestSection1Introduction:
    def test_types_by_different_programmers_treated_as_one(self):
        """'types that are supposed to represent the same software module
        are indeed treated as one single type' — across languages."""
        checker = pragmatic()
        assert checker.conforms(person_csharp(), person_java()).ok
        assert checker.conforms(person_vb(), person_csharp()).ok

    def test_exchange_is_pass_by_value(self):
        """'not only passed-by-reference, but especially also
        passed-by-value'."""
        network = SimulatedNetwork()
        a = InteropPeer("a", network, options=ConformanceOptions.pragmatic())
        b = InteropPeer("b", network, options=ConformanceOptions.pragmatic())
        a.host_assembly(Assembly("p", [person_csharp()]))
        b.declare_interest(person_java())
        original = a.new_instance("demo.a.Person", ["value"])
        a.send("b", original)
        b.inbox[0].view.setPersonName("mutated-remotely")
        assert original.GetName() == "value"  # a copy travelled, not a ref


class TestSection2RelatedWork:
    def test_2_1_laufer_needs_tags_and_exact_names(self):
        """'only types that are tagged as being structural conformant can
        pretend to do so' — and renamed accessors defeat it regardless."""
        matcher = TaggedStructuralMatcher()
        a, b = person_csharp(), person_java()
        assert not matcher.conforms(a, b).ok        # untagged
        matcher.tag(a.full_name, b.full_name)
        assert not matcher.conforms(a, b).ok        # tagged but renamed

    def test_corba_rmi_style_exact_matching_fails(self):
        """Plain middleware matching (identity/declared subtyping) cannot
        unify independently written twins."""
        assert not ExactMatcher().conforms(person_vb(), person_csharp()).ok

    def test_2_2_compound_types(self):
        """Büchi/Weck compound types, reproduced over our checker."""
        from repro.core import CompoundType, conforms_to_compound
        from repro.cts.builder import interface_builder

        named = interface_builder("i.Named").method("GetName", [], "string").build()
        settable = interface_builder("i.Settable").method(
            "SetName", [("n", "string")], "void").build()
        checker = ConformanceChecker(options=ConformanceOptions(check_name=False))
        result = conforms_to_compound(person_csharp(), CompoundType([named, settable]), checker)
        assert result.ok


class TestSection3Overview:
    def test_protocol_is_optimistic(self):
        """'the code of the object as well as its type representation are
        not always sent with the object itself, but only when needed'."""
        network = SimulatedNetwork()
        a = InteropPeer("a", network, options=ConformanceOptions.pragmatic())
        b = InteropPeer("b", network, options=ConformanceOptions.pragmatic())
        a.host_assembly(Assembly("p", [person_csharp()]))
        b.declare_interest(person_java())
        for i in range(3):
            a.send("b", a.new_instance("demo.a.Person", ["n%d" % i]))
        # Description and code travelled exactly once, not three times.
        kinds = network.stats.by_kind_messages
        assert kinds["object"] == 3
        assert kinds["get_description"] == 1
        assert kinds["get_assembly"] == 1


class TestSection4Conformance:
    def test_equality_equivalence_explicit_implicit_hierarchy(self):
        """Definition ladder: equality (identity), equivalence (structure),
        explicit (subtyping), implicit structural (the contribution)."""
        checker = pragmatic()
        person = person_csharp()
        assert checker.conforms(person, person).verdict is Verdict.EQUAL
        twin = person_csharp(namespace="demo.a", assembly_name="rebuilt")
        assert checker.conforms(person, twin).verdict is Verdict.EQUIVALENT
        assert checker.conforms(
            person_csharp(), person_java()
        ).verdict is Verdict.IMPLICIT_STRUCTURAL

    def test_weak_name_only_rule_breaks_type_safety(self):
        """'not taking into account the whole set of aspects breaks the
        type safety'."""
        from repro.cts.builder import TypeBuilder

        impostor = TypeBuilder("evil.Person", assembly_name="evil").build()
        weak = ConformanceChecker(options=ConformanceOptions.name_only())
        full = ConformanceChecker()
        assert weak.conforms(impostor, person_csharp()).ok
        assert not full.conforms(impostor, person_csharp()).ok


class TestSection5Representation:
    def test_conformance_checked_without_implementation(self):
        """'make the comparison between two types possible ... without
        having to transfer the implementation'."""
        from repro.describe.description import describe
        from repro.describe.xml_codec import (
            deserialize_description,
            serialize_description,
        )

        provider = deserialize_description(
            serialize_description(describe(person_csharp()))
        )
        expected = deserialize_description(
            serialize_description(describe(person_java()))
        )
        assert provider.to_type_info().find_method("GetName").body is None
        assert provider.conforms(expected, pragmatic())


class TestSection6Serialization:
    def test_hybrid_message_structure(self):
        """Figure 3: XML message = type information + serialized object."""
        from repro.serialization.envelope import EnvelopeCodec

        runtime = Runtime()
        runtime.load_type(person_csharp())
        codec = EnvelopeCodec(runtime)
        data = codec.encode(runtime.new_instance("demo.a.Person", ["Fig3"]))
        # The framed message keeps Figure 3's shape: an XML header carrying
        # the type information, then the serialized object (now as a raw
        # length-delimited suffix rather than base64 text).
        assert data.startswith(b"XME2")
        assert b"<XmlMessage>" in data
        assert b"TypeInformation" in data
        assert b"Payload" in data
        # The legacy all-XML rendering is still available for old peers.
        legacy = codec.envelope_to_legacy_bytes(codec.parse(data))
        assert legacy.startswith(b"<")
        assert codec.parse(legacy).root_entry().name == "demo.a.Person"

    def test_pass_by_reference_through_dynamic_proxy(self):
        """'the interposing of a dynamic proxy as a wrapper is necessary
        since T_q and T_l are not explicitly compatible'."""
        network = SimulatedNetwork()
        server = RemotingPeer("s", network, options=ConformanceOptions.pragmatic())
        client = RemotingPeer("c", network, options=ConformanceOptions.pragmatic())
        server.host_assembly(Assembly("p", [person_csharp()]))
        obj = server.new_instance("demo.a.Person", ["ref"])
        server.export(obj, name="o")
        view = client.lookup_as("s", "o", person_java())
        view.setPersonName("via-proxy-chain")
        assert obj.GetName() == "via-proxy-chain"


class TestSection7Performance:
    def test_proxy_overhead_negligible_vs_conformance(self):
        """'this amount of time still remains negligible with respect to
        the time taken for checking type conformance'."""
        import time

        runtime = Runtime()
        provider = person_csharp()
        runtime.load_type(provider)
        checker = pragmatic()
        view = wrap(runtime.instantiate(provider, ["x"]), person_java(), checker)

        n = 200
        start = time.perf_counter()
        for _ in range(n):
            view.invoke("getPersonName")
        proxy_time = time.perf_counter() - start

        options = ConformanceOptions.pragmatic()
        start = time.perf_counter()
        for _ in range(n):
            ConformanceChecker(options=options).conforms(provider, person_java())
        check_time = time.perf_counter() - start
        assert proxy_time < check_time


class TestSection8Applications:
    def test_tps_without_a_priori_agreement(self):
        """'subscribers and publishers must agree a priori on the types ...
        enhancing TPS with type interoperability would alleviate this'."""
        from repro.apps.tps import LocalBroker

        runtime = Runtime()
        runtime.load_type(person_csharp())
        broker = LocalBroker()
        got = []
        broker.subscribe(person_java(), got.append)  # subscriber's own type
        broker.publish(runtime.new_instance("demo.a.Person", ["no-agreement"]))
        assert got[0].getPersonName() == "no-agreement"

    def test_borrow_lend_with_conformance_criterion(self):
        """'a possible criterion is type conformance, for a type T_q with
        which the lent resource's type T_l must conform'."""
        from repro.apps.borrowlend import BorrowLendPeer

        network = SimulatedNetwork()
        lender = BorrowLendPeer("lender", network)
        borrower = BorrowLendPeer("borrower", network)
        lender.host_assembly(Assembly("p", [person_csharp()]))
        lender.lend("r", lender.new_instance("demo.a.Person", ["lent"]))
        lease = borrower.borrow("lender", person_java())
        assert lease.view.getPersonName() == "lent"
