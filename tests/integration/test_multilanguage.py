"""Cross-language integration: the same module authored in three surface
languages interoperates over the wire."""

import itertools

import pytest

from repro.core import ConformanceChecker, ConformanceOptions
from repro.cts.assembly import Assembly
from repro.fixtures import (
    PERSON_CSHARP_SOURCE,
    PERSON_JAVA_SOURCE,
    PERSON_VB_SOURCE,
    person_csharp,
    person_java,
    person_vb,
)
from repro.net.network import SimulatedNetwork
from repro.transport.protocol import InteropPeer


ALL_PERSONS = {
    "csharp": person_csharp,
    "java": person_java,
    "vb": person_vb,
}


class TestPairwiseConformance:
    @pytest.mark.parametrize(
        "provider_lang,expected_lang",
        list(itertools.permutations(ALL_PERSONS, 2)),
    )
    def test_all_pairs_conform_pragmatically(self, provider_lang, expected_lang):
        checker = ConformanceChecker(options=ConformanceOptions.pragmatic())
        provider = ALL_PERSONS[provider_lang]()
        expected = ALL_PERSONS[expected_lang]()
        assert checker.conforms(provider, expected).ok, (
            "%s Person should conform to %s Person" % (provider_lang, expected_lang)
        )

    def test_language_tags_recorded(self):
        assert person_csharp().language == "csharp"
        assert person_java().language == "java"
        assert person_vb().language == "vb"


class TestCrossLanguageWire:
    @pytest.mark.parametrize(
        "provider_lang,expected_lang",
        list(itertools.permutations(ALL_PERSONS, 2)),
    )
    def test_object_exchange(self, provider_lang, expected_lang):
        network = SimulatedNetwork()
        sender = InteropPeer("sender", network,
                             options=ConformanceOptions.pragmatic())
        receiver = InteropPeer("receiver", network,
                               options=ConformanceOptions.pragmatic())
        provider = ALL_PERSONS[provider_lang]()
        expected = ALL_PERSONS[expected_lang]()
        sender.host_assembly(Assembly("prov", [provider]))
        receiver.declare_interest(expected)

        sender.send("receiver", sender.new_instance(provider.full_name, ["Poly"]))
        received = receiver.inbox[0]
        assert received.accepted

        # Use the receiver's own expected surface.
        getter = expected.public_methods()[0].name
        name = received.view.invoke(
            "GetName" if "GetName" in [m.name for m in expected.methods] else "getPersonName"
        )
        assert name == "Poly"

    def test_vb_code_executes_on_receiving_peer(self):
        """Code authored in VB-like syntax ships as IL and runs on a peer
        that has never seen VB source."""
        network = SimulatedNetwork()
        sender = InteropPeer("sender", network,
                             options=ConformanceOptions.pragmatic())
        receiver = InteropPeer("receiver", network,
                               options=ConformanceOptions.pragmatic())
        vb_person = person_vb()
        sender.host_assembly(Assembly("vbp", [vb_person]))
        receiver.declare_interest(person_csharp())

        sender.send("receiver", sender.new_instance("demo.c.Person", ["VB"]))
        view = receiver.inbox[0].view
        assert view.GetName() == "VB"
        view.SetName("still VB semantics")
        assert view.GetName() == "still VB semantics"

    def test_source_snippets_are_distinct_languages(self):
        # Sanity: fixtures really are three different surface syntaxes.
        assert "class Person {" in PERSON_CSHARP_SOURCE
        assert "String" in PERSON_JAVA_SOURCE
        assert "End Class" in PERSON_VB_SOURCE
