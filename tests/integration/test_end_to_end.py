"""End-to-end integration: the full Figure-1 pipeline across subsystems."""

import pytest

from repro.core import ConformanceOptions, Verdict
from repro.cts.assembly import Assembly
from repro.fixtures import person_assembly_pair, person_java, person_vb
from repro.langs.csharp import compile_source as compile_cs
from repro.langs.vb import compile_source as compile_vb
from repro.net.codeserver import CodeRepository
from repro.net.network import SimulatedNetwork
from repro.transport.protocol import InteropPeer


class TestFullPipeline:
    def test_compile_ship_check_download_invoke(self):
        """Source code on one peer ends as a proxied invocation on another,
        passing through: frontend -> IL -> assembly -> envelope -> network
        -> description -> conformance -> code download -> runtime -> proxy.
        """
        network = SimulatedNetwork()
        producer = InteropPeer("producer", network,
                               options=ConformanceOptions.pragmatic())
        consumer = InteropPeer("consumer", network,
                               options=ConformanceOptions.pragmatic())

        # Producer authors a type in C#-like source.
        source = """
        class Sensor {
            private string label;
            private int reading;
            public Sensor(string l, int r) { this.label = l; this.reading = r; }
            public string GetLabel() { return this.label; }
            public int GetReading() { return this.reading; }
        }
        """
        types = compile_cs(source, namespace="prod")
        producer.host_assembly(Assembly("sensors", types))

        # Consumer declares its own independently-written Sensor type.
        expected = compile_vb(
            """
            Class Sensor
                Private label As String
                Private reading As Integer
                Public Sub New(l As String, r As Integer)
                    Me.label = l
                    Me.reading = r
                End Sub
                Public Function GetLabel() As String
                    Return Me.label
                End Function
                Public Function GetReading() As Integer
                    Return Me.reading
                End Function
            End Class
            """,
            namespace="cons",
        )[0]
        consumer.declare_interest(expected)

        producer.send("consumer", producer.new_instance("prod.Sensor", ["t1", 42]))
        received = consumer.inbox[0]
        assert received.accepted
        assert received.result.verdict is Verdict.IMPLICIT_STRUCTURAL
        assert received.view.GetLabel() == "t1"
        assert received.view.GetReading() == 42

    def test_three_peer_relay(self):
        """Code propagates hop by hop; no peer other than the origin ever
        talks to the origin."""
        network = SimulatedNetwork()
        peers = [
            InteropPeer("p%d" % i, network, options=ConformanceOptions.pragmatic())
            for i in range(3)
        ]
        asm_a, _ = person_assembly_pair()
        peers[0].host_assembly(asm_a)
        for peer in peers[1:]:
            peer.declare_interest(person_java())

        peers[0].send("p1", peers[0].new_instance("demo.a.Person", ["Relay"]))
        peers[1].send("p2", peers[1].inbox[0].value)
        assert peers[2].inbox[0].view.getPersonName() == "Relay"
        p2_partners = {dst for (src, dst, _, __) in network.log if src == "p2"}
        assert "p0" not in p2_partners

    def test_many_types_many_peers(self):
        """A small mesh: every peer hosts its own module; all exchange."""
        network = SimulatedNetwork()
        n = 4
        peers = []
        for i in range(n):
            peer = InteropPeer("peer%d" % i, network,
                               options=ConformanceOptions.pragmatic())
            source = """
            class Item%d {
                private string tag;
                public Item%d(string t) { this.tag = t; }
                public string GetTag() { return this.tag; }
            }
            """ % (i, i)
            types = compile_cs(source, namespace="m%d" % i)
            peer.host_assembly(Assembly("items%d" % i, types))
            peers.append(peer)

        for i, sender in enumerate(peers):
            for j, receiver in enumerate(peers):
                if i != j:
                    obj = sender.new_instance("m%d.Item%d" % (i, i), ["from%d" % i])
                    sender.send("peer%d" % j, obj)

        for j, receiver in enumerate(peers):
            assert len(receiver.inbox) == n - 1
            for received in receiver.inbox:
                assert received.accepted
                assert received.view.GetTag().startswith("from")

    def test_repository_centric_deployment(self):
        """All code lives in a repository; peers exchange objects and pull
        code from the repo, not from each other."""
        network = SimulatedNetwork()
        repo = CodeRepository("repo", network)
        asm_a, _ = person_assembly_pair()
        repo.publish(asm_a)

        sender = InteropPeer("sender", network,
                             options=ConformanceOptions.pragmatic(),
                             code_source="repo")
        receiver = InteropPeer("receiver", network,
                               options=ConformanceOptions.pragmatic(),
                               code_source="repo")
        # Sender bootstraps its own code from the repo too.
        assembly = sender.fetch_assembly("repo", asm_a.download_path)
        sender.runtime.load_assembly(assembly)
        receiver.declare_interest(person_vb())

        sender.send("receiver", sender.new_instance("demo.a.Person", ["RepoFlow"]))
        assert receiver.inbox[0].view.GetName() == "RepoFlow"


class TestStatefulExchange:
    def test_mutation_then_reship(self):
        network = SimulatedNetwork()
        a = InteropPeer("a", network, options=ConformanceOptions.pragmatic())
        b = InteropPeer("b", network, options=ConformanceOptions.pragmatic())
        asm_a, _ = person_assembly_pair()
        a.host_assembly(asm_a)
        b.declare_interest(person_java())

        person = a.new_instance("demo.a.Person", ["v1"])
        a.send("b", person)
        view = b.inbox[0].view
        view.setPersonName("v2")

        # Pass-by-value: the sender's copy is untouched.
        assert person.GetName() == "v1"
        # Re-ship the mutated copy back (b -> a): a knows the type already.
        b.send("a", b.inbox[0].value)
        assert a.inbox[0].view.GetName() == "v2"
