"""Type evolution scenarios: the "dynamic environment where new events of
new types can be put into the system through remote locations at runtime"
(Section 3.1), including version drift between peers."""

import pytest

from repro.core import ConformanceChecker, ConformanceOptions, Verdict
from repro.cts.assembly import Assembly
from repro.fixtures import person_java
from repro.langs.csharp import compile_source
from repro.net.network import SimulatedNetwork
from repro.transport.protocol import InteropPeer

PERSON_V1 = """
class Person {
    private string name;
    public Person(string n) { this.name = n; }
    public string GetName() { return this.name; }
    public void SetName(string n) { this.name = n; }
}
"""

# V2 adds a field and a method (backwards-compatible extension).
PERSON_V2 = """
class Person {
    private string name;
    private int age;
    public Person(string n) { this.name = n; this.age = 0; }
    public string GetName() { return this.name; }
    public void SetName(string n) { this.name = n; }
    public int GetAge() { return this.age; }
    public void SetAge(int a) { this.age = a; }
}
"""


def v1_type():
    return compile_source(PERSON_V1, namespace="app", assembly_name="app-v1")[0]


def v2_type():
    return compile_source(PERSON_V2, namespace="app", assembly_name="app-v2")[0]


class TestVersionConformance:
    def test_v2_conforms_to_v1(self):
        """Extension is safe in the provider position: a V2 object can be
        used where V1 is expected."""
        checker = ConformanceChecker()
        result = checker.conforms(v2_type(), v1_type())
        assert result.ok
        assert result.verdict is Verdict.IMPLICIT_STRUCTURAL

    def test_v1_does_not_conform_to_v2(self):
        """But not the other way: V1 cannot satisfy V2's new members."""
        checker = ConformanceChecker()
        result = checker.conforms(v1_type(), v2_type())
        assert not result.ok
        assert any("GetAge" in f for f in result.failures)

    def test_versions_have_distinct_identities(self):
        assert v1_type().guid != v2_type().guid


class TestVersionedExchange:
    def test_new_version_flows_to_old_peer(self):
        """An upgraded publisher keeps serving a V1-expecting subscriber:
        the V2 object arrives and is usable as V1."""
        network = SimulatedNetwork()
        publisher = InteropPeer("publisher", network)
        subscriber = InteropPeer("subscriber", network)
        publisher.host_assembly(Assembly("app-v2", [v2_type()]))
        subscriber.declare_interest(v1_type())

        person = publisher.new_instance("app.Person", ["Upgraded"])
        person.invoke("SetAge", 30)
        publisher.send("subscriber", person)

        received = subscriber.inbox[0]
        assert received.accepted
        assert received.view.GetName() == "Upgraded"
        # The raw value still carries V2 state, even though the view is V1.
        assert received.value.fields["age"] == 30

    def test_old_version_rejected_by_new_expectation(self):
        network = SimulatedNetwork()
        publisher = InteropPeer("publisher", network)
        subscriber = InteropPeer("subscriber", network)
        publisher.host_assembly(Assembly("app-v1", [v1_type()]))
        subscriber.declare_interest(v2_type())

        publisher.send("subscriber", publisher.new_instance("app.Person", ["Old"]))
        assert not subscriber.inbox[0].accepted
        assert subscriber.transport_stats.assemblies_fetched == 0  # no code wasted

    def test_both_versions_coexist_on_one_peer(self):
        """Same full name, different identities: the receiver holds both
        versions' code simultaneously (GUIDs disambiguate)."""
        network = SimulatedNetwork()
        publisher1 = InteropPeer("p1", network)
        publisher2 = InteropPeer("p2", network)
        subscriber = InteropPeer("subscriber", network,
                                 options=ConformanceOptions.pragmatic())
        publisher1.host_assembly(Assembly("app-v1", [v1_type()]))
        publisher2.host_assembly(Assembly("app-v2", [v2_type()]))
        subscriber.declare_interest(person_java())

        publisher1.send("subscriber", publisher1.new_instance("app.Person", ["One"]))
        publisher2.send("subscriber", publisher2.new_instance("app.Person", ["Two"]))

        assert [r.view.getPersonName() for r in subscriber.inbox] == ["One", "Two"]
        # Each object carries its own version's identity — the second was
        # NOT silently decoded as the first version.
        first, second = (r.value.type_info for r in subscriber.inbox)
        assert first.guid == v1_type().guid
        assert second.guid == v2_type().guid
        assert subscriber.transport_stats.assemblies_fetched == 2

    def test_new_type_introduced_at_runtime(self):
        """The headline dynamic scenario: a type that did not exist when
        the receiver started is introduced, described, checked and run."""
        network = SimulatedNetwork()
        sender = InteropPeer("sender", network, options=ConformanceOptions.pragmatic())
        receiver = InteropPeer("receiver", network, options=ConformanceOptions.pragmatic())
        receiver.declare_interest(person_java())

        # Authored "at runtime", long after both peers exist.
        brand_new = compile_source(
            """
            class Person {
                private string name;
                public Person(string n) { this.name = n; }
                public string GetPersonName() { return this.name; }
                public void SetPersonName(string n) { this.name = n; }
            }
            """,
            namespace="runtime.fresh",
        )[0]
        sender.host_assembly(Assembly("fresh", [brand_new]))
        sender.send("receiver", sender.new_instance("runtime.fresh.Person", ["Hot"]))
        assert receiver.inbox[0].view.getPersonName() == "Hot"
