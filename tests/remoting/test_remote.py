"""Tests for pass-by-reference remoting."""

import pytest

from repro.core import ConformanceOptions
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.remoting.dynamic import DynamicProxy
from repro.remoting.remote import ObjectRef, RemoteProxy, RemotingError, RemotingPeer


@pytest.fixture
def setup():
    network = SimulatedNetwork()
    server = RemotingPeer("server", network, options=ConformanceOptions.pragmatic())
    client = RemotingPeer("client", network, options=ConformanceOptions.pragmatic())
    asm_a, _ = person_assembly_pair()
    server.host_assembly(asm_a)
    return network, server, client


class TestObjectRef:
    def test_wire_round_trip(self):
        ref = ObjectRef("p", 3, "x.T", "00000000-0000-0000-0000-000000000000")
        restored = ObjectRef.from_wire(ref.to_wire())
        assert restored.peer_id == "p"
        assert restored.object_id == 3
        assert restored.type_name == "x.T"


class TestExportLookup:
    def test_export_returns_ref(self, setup):
        _, server, _ = setup
        person = server.new_instance("demo.a.Person", ["Exp"])
        ref = server.export(person)
        assert ref.peer_id == "server"
        assert ref.type_name == "demo.a.Person"

    def test_export_requires_cts_type(self, setup):
        _, server, _ = setup
        with pytest.raises(RemotingError):
            server.export(42)

    def test_lookup_by_name(self, setup):
        _, server, client = setup
        person = server.new_instance("demo.a.Person", ["Named"])
        server.export(person, name="the-person")
        stub = client.lookup("server", "the-person")
        assert isinstance(stub, RemoteProxy)
        assert stub._repro_type().full_name == "demo.a.Person"

    def test_lookup_unknown_name(self, setup):
        _, server, client = setup
        with pytest.raises(Exception):
            client.lookup("server", "nope")


class TestRemoteInvocation:
    def test_invoke_and_mutate(self, setup):
        _, server, client = setup
        person = server.new_instance("demo.a.Person", ["Remote"])
        server.export(person, name="p")
        stub = client.lookup("server", "p")
        assert stub.GetName() == "Remote"
        stub.SetName("Changed")
        assert person.GetName() == "Changed"  # server-side state changed

    def test_unknown_method_surfaces_error(self, setup):
        _, server, client = setup
        person = server.new_instance("demo.a.Person", ["X"])
        server.export(person, name="p")
        stub = client.lookup("server", "p")
        with pytest.raises(RemotingError):
            stub.Fly()

    def test_stale_ref(self, setup):
        _, server, client = setup
        person = server.new_instance("demo.a.Person", ["X"])
        ref = server.export(person, name="p")
        stub = client.lookup("server", "p")
        server._exports.clear()
        with pytest.raises(RemotingError):
            stub.GetName()

    def test_by_value_argument_of_unknown_type(self, setup):
        """Client sends a CtsInstance argument whose type the *server* does
        not know: the optimistic protocol fetches the code mid-invocation."""
        network, server, client = setup
        from repro.cts.assembly import Assembly
        from repro.cts.builder import TypeBuilder

        echo_type = (
            TypeBuilder("x.Echo", assembly_name="echo")
            .method("EchoName", [("p", "demo.a.Person")], "string",
                    body=None)
            .build()
        )
        # Give Echo an IL-free native body via builder? Use IL through source:
        from repro.langs.csharp import compile_source

        echo_type = compile_source(
            """
            class Echo {
                public string EchoName(demo.a.Person p) { return p.GetName(); }
            }
            """,
            namespace="x",
        )[0]
        server.host_assembly(Assembly("echo", [echo_type]))
        echo = server.new_instance("x.Echo")
        server.export(echo, name="echo")

        # Client builds a Person from its own copy of the assembly.
        asm_a, _ = person_assembly_pair()
        client.host_assembly(asm_a)
        person = client.new_instance("demo.a.Person", ["ByValue"])

        stub = client.lookup("server", "echo")
        assert stub.EchoName(person) == "ByValue"


class TestLookupAs:
    def test_implicit_conformance_wraps_stub(self, setup):
        """The paper's scenario: expected type matches the remote type only
        implicitly -> remote stub wrapped in a dynamic proxy."""
        _, server, client = setup
        person = server.new_instance("demo.a.Person", ["Wrapped"])
        server.export(person, name="p")
        view = client.lookup_as("server", "p", person_java())
        assert isinstance(view, DynamicProxy)
        assert view.getPersonName() == "Wrapped"
        view.setPersonName("Twice")
        assert person.GetName() == "Twice"

    def test_explicit_conformance_returns_bare_stub(self, setup):
        _, server, client = setup
        person = server.new_instance("demo.a.Person", ["Bare"])
        server.export(person, name="p")
        info = server.runtime.registry.require("demo.a.Person")
        view = client.lookup_as("server", "p", info)
        assert isinstance(view, RemoteProxy)

    def test_remote_calls_cost_round_trips(self, setup):
        network, server, client = setup
        person = server.new_instance("demo.a.Person", ["Count"])
        server.export(person, name="p")
        stub = client.lookup("server", "p")
        before = network.stats.round_trips
        stub.GetName()
        assert network.stats.round_trips == before + 1


class TestExportLifecycle:
    def test_unexport_invalidates_stubs(self, setup):
        _, server, client = setup
        person = server.new_instance("demo.a.Person", ["Gone"])
        ref = server.export(person, name="p")
        stub = client.lookup("server", "p")
        assert stub.GetName() == "Gone"
        assert server.unexport(ref)
        with pytest.raises(RemotingError):
            stub.GetName()

    def test_unexport_removes_binding(self, setup):
        _, server, client = setup
        person = server.new_instance("demo.a.Person", ["B"])
        ref = server.export(person, name="p")
        server.unexport(ref)
        with pytest.raises(Exception):
            client.lookup("server", "p")

    def test_unexport_unknown_ref(self, setup):
        _, server, _ = setup
        from repro.remoting.remote import ObjectRef

        ghost = ObjectRef("server", 999, "x.T", "0" * 32)
        assert not server.unexport(ghost)

    def test_export_count(self, setup):
        _, server, _ = setup
        assert server.export_count() == 0
        person = server.new_instance("demo.a.Person", ["C"])
        ref = server.export(person)
        assert server.export_count() == 1
        server.unexport(ref)
        assert server.export_count() == 0
