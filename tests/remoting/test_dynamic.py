"""Tests for dynamic proxies: renaming, permutation, deep wrapping."""

import pytest

from repro.core import ConformanceChecker, ConformanceOptions, NamePolicy
from repro.cts.builder import TypeBuilder
from repro.cts.registry import TypeRegistry
from repro.fixtures import person_csharp, person_java
from repro.remoting.dynamic import (
    DynamicProxy,
    NotConformantError,
    ProxyError,
    unwrap,
    wrap,
    wrap_with_result,
)
from repro.runtime.loader import Runtime


@pytest.fixture
def checker():
    return ConformanceChecker(options=ConformanceOptions.pragmatic())


@pytest.fixture
def runtime():
    return Runtime()


@pytest.fixture
def person_view(checker, runtime):
    provider_type = person_csharp()
    runtime.load_type(provider_type)
    person = runtime.instantiate(provider_type, ["Ada"])
    return person, wrap(person, person_java(), checker)


class TestMethodTranslation:
    def test_renamed_getter(self, person_view):
        _, view = person_view
        assert view.getPersonName() == "Ada"

    def test_renamed_setter_mutates_target(self, person_view):
        person, view = person_view
        view.setPersonName("Grace")
        assert person.GetName() == "Grace"

    def test_invoke_api(self, person_view):
        _, view = person_view
        assert view.invoke("getPersonName") == "Ada"

    def test_unknown_method(self, person_view):
        _, view = person_view
        with pytest.raises(AttributeError):
            view.fly()

    def test_repro_type_reports_expected(self, person_view, checker):
        _, view = person_view
        assert view._repro_type().full_name == "demo.b.Person"

    def test_repr(self, person_view):
        _, view = person_view
        assert "demo.a.Person" in repr(view)
        assert "demo.b.Person" in repr(view)


class TestArgumentPermutation:
    def test_permuted_call(self, checker, runtime):
        provider_type = (
            TypeBuilder("x.Fmt", assembly_name="a1")
            .method(
                "Format", [("count", "int"), ("label", "string")], "string",
                body=lambda self, count, label: "%s=%d" % (label, count),
            )
            .build()
        )
        expected_type = (
            TypeBuilder("x.Fmt", assembly_name="a2")
            .method("Format", [("label", "string"), ("count", "int")], "string")
            .build()
        )
        runtime.load_type(provider_type)
        obj = runtime.instantiate(provider_type)
        view = wrap(obj, expected_type, checker)
        # Caller uses the EXPECTED order (label first).
        assert view.Format("n", 3) == "n=3"


class TestWrapBehaviour:
    def test_no_proxy_for_identical_type(self, checker, runtime):
        provider_type = person_csharp()
        runtime.load_type(provider_type)
        person = runtime.instantiate(provider_type, ["Same"])
        view = wrap(person, provider_type, checker)
        assert view is person  # zero-overhead fast path

    def test_not_conformant_raises(self, checker, runtime):
        from repro.fixtures import account_csharp

        account_type = account_csharp()
        runtime.load_type(account_type)
        account = runtime.instantiate(account_type, ["o", 1])
        with pytest.raises(NotConformantError):
            wrap(account, person_java(), checker)

    def test_wrap_requires_typed_value(self, checker):
        with pytest.raises(ProxyError):
            wrap(42, person_java(), checker)

    def test_wrap_with_failed_result_raises(self, checker, runtime):
        from repro.core.result import ConformanceResult

        failed = ConformanceResult.failure("a", "b", ["nope"])
        with pytest.raises(NotConformantError):
            wrap_with_result(object(), person_java(), failed)

    def test_unwrap_strips_layers(self, person_view):
        person, view = person_view
        assert unwrap(view) is person
        assert unwrap(person) is person
        assert unwrap("plain") == "plain"


class TestArgumentUnwrapping:
    def test_proxied_argument_unwrapped_before_call(self, checker, runtime):
        """When a proxied value is passed back into a provider method, the
        provider receives the naked object."""
        provider_person = person_csharp()
        runtime.load_type(provider_person)
        alice = runtime.instantiate(provider_person, ["Alice"])
        alice_view = wrap(alice, person_java(), checker)

        received = []
        # Provider method name differs from the expected one so a real
        # translating proxy is interposed (identity mappings skip the proxy).
        taker_type = (
            TypeBuilder("x.Taker", assembly_name="a1")
            .method("TakePerson", [("p", provider_person)], "void",
                    body=lambda self, p: received.append(p))
            .build()
        )
        expected_taker = (
            TypeBuilder("x.Taker", assembly_name="a2")
            .method("Take", [("p", person_java())], "void")
            .build()
        )
        runtime.load_type(taker_type)
        taker = runtime.instantiate(taker_type)
        taker_view = wrap(taker, expected_taker, checker)
        taker_view.Take(alice_view)
        assert received[0] is alice

    def test_pass_through_for_provider_surface(self, checker, runtime):
        """Provider-side code holding a proxied object can still call the
        provider's own method names: the proxy passes them through."""
        provider_person = person_csharp()
        runtime.load_type(provider_person)
        alice = runtime.instantiate(provider_person, ["Alice"])
        alice_view = wrap(alice, person_java(), checker)
        # Expected-surface name works through the mapping...
        assert alice_view.getPersonName() == "Alice"
        # ...and the provider's own name passes through.
        assert alice_view.GetName() == "Alice"


class TestDeepWrapping:
    def test_return_value_wrapped_to_expected_type(self, checker):
        """Paper: "This mismatch increases with the depth of the matching"
        — nested conformant returns get their own wrapper."""
        from repro.fixtures import employee_csharp, employee_java

        registry = TypeRegistry()
        addr_a, emp_a = employee_csharp()
        addr_b, emp_b = employee_java()
        registry.register_all([addr_a, emp_a, addr_b, emp_b])
        checker = ConformanceChecker(
            resolver=registry, options=ConformanceOptions.pragmatic()
        )
        runtime = Runtime(registry)
        address = runtime.instantiate(addr_a, ["5 Main St", "Lausanne"])
        employee = runtime.instantiate(emp_a, ["Eva", address])

        view = wrap(employee, emp_b, checker)
        nested = view.getAddress()
        assert isinstance(nested, DynamicProxy)
        assert nested.getStreet() == "5 Main St"
        assert nested.getCity() == "Lausanne"

    def test_primitive_returns_not_wrapped(self, person_view):
        _, view = person_view
        assert isinstance(view.getPersonName(), str)


class TestFieldAccessThroughProxy:
    def test_public_field_mapping(self, checker, runtime):
        provider_type = (
            TypeBuilder("x.Box", assembly_name="a1").field("Value", "int").build()
        )
        expected_type = (
            TypeBuilder("x.Box", assembly_name="a2").field("value", "int").build()
        )
        runtime.load_type(provider_type)
        box = runtime.instantiate(provider_type)
        box.set_field("Value", 5)
        view = wrap(box, expected_type, checker)
        assert view.value == 5
        view.value = 9
        assert box.get_field("Value") == 9

    def test_unmapped_field_write_raises(self, person_view):
        _, view = person_view
        with pytest.raises(AttributeError):
            view.nonexistent = 1
