"""Tests for the hybrid envelope (Figure 3)."""

import pytest

from repro.cts.assembly import Assembly
from repro.fixtures import employee_csharp, person_assembly_pair
from repro.runtime.loader import Runtime
from repro.serialization.envelope import EnvelopeCodec, ObjectEnvelope
from repro.serialization.errors import UnknownTypeError, WireFormatError


@pytest.fixture
def runtime():
    rt = Runtime()
    asm_a, _ = person_assembly_pair()
    rt.load_assembly(asm_a)
    return rt


class TestWrap:
    def test_type_entries_cover_graph(self, runtime):
        hr = Assembly("hr-a", employee_csharp())
        runtime.load_assembly(hr)
        address = runtime.new_instance("demo.a.Address", ["5 Main St", "Lausanne"])
        employee = runtime.new_instance("demo.a.Employee", ["Eva", address])
        codec = EnvelopeCodec(runtime)
        envelope = codec.wrap(employee)
        assert envelope.type_names() == ["demo.a.Employee", "demo.a.Address"]

    def test_root_entry_first(self, runtime):
        codec = EnvelopeCodec(runtime)
        person = runtime.new_instance("demo.a.Person", ["Root"])
        assert codec.wrap(person).root_entry().name == "demo.a.Person"

    def test_entries_carry_download_paths(self, runtime):
        codec = EnvelopeCodec(runtime)
        person = runtime.new_instance("demo.a.Person", ["P"])
        entry = codec.wrap(person).root_entry()
        assert entry.download_path == "repo://person-a/1.0.0"
        assert entry.assembly == "person-a"

    def test_empty_envelope_root_raises(self):
        envelope = ObjectEnvelope([], "binary", b"")
        with pytest.raises(WireFormatError):
            envelope.root_entry()


class TestRoundTrip:
    @pytest.mark.parametrize("encoding", ["binary", "soap"])
    def test_object_round_trip(self, runtime, encoding):
        codec = EnvelopeCodec(runtime, encoding=encoding)
        person = runtime.new_instance("demo.a.Person", ["Ann"])
        restored = codec.decode(codec.encode(person))
        assert restored.invoke("GetName") == "Ann"

    @pytest.mark.parametrize("encoding", ["binary", "soap"])
    def test_plain_values_allowed(self, runtime, encoding):
        codec = EnvelopeCodec(runtime, encoding=encoding)
        assert codec.decode(codec.encode([1, "two", None])) == [1, "two", None]

    def test_parse_preserves_payload_encoding(self, runtime):
        soap_codec = EnvelopeCodec(runtime, encoding="soap")
        person = runtime.new_instance("demo.a.Person", ["Enc"])
        data = soap_codec.encode(person)
        # A binary-default codec can still decode: encoding travels in-band.
        binary_codec = EnvelopeCodec(runtime, encoding="binary")
        assert binary_codec.decode(data).invoke("GetName") == "Enc"

    def test_unwrap_unknown_type_raises(self, runtime):
        codec = EnvelopeCodec(runtime)
        person = runtime.new_instance("demo.a.Person", ["X"])
        data = codec.encode(person)
        receiver = EnvelopeCodec(Runtime())
        envelope = receiver.parse(data)  # parsing works without the type...
        assert envelope.root_entry().name == "demo.a.Person"
        with pytest.raises(UnknownTypeError):  # ...materialising does not
            receiver.unwrap(envelope)


class TestErrors:
    def test_invalid_encoding_config(self):
        with pytest.raises(ValueError):
            EnvelopeCodec(encoding="json")

    def test_parse_garbage(self, runtime):
        with pytest.raises(WireFormatError):
            EnvelopeCodec(runtime).parse(b"not xml")

    def test_parse_wrong_root(self, runtime):
        with pytest.raises(WireFormatError):
            EnvelopeCodec(runtime).parse(b"<Wrong/>")

    def test_parse_missing_payload(self, runtime):
        with pytest.raises(WireFormatError):
            EnvelopeCodec(runtime).parse(b"<XmlMessage><TypeInformation/></XmlMessage>")

    def test_parse_bad_encoding_attr(self, runtime):
        data = b'<XmlMessage><Payload encoding="weird">aGk=</Payload></XmlMessage>'
        with pytest.raises(WireFormatError):
            EnvelopeCodec(runtime).parse(data)

    def test_parse_bad_base64(self, runtime):
        data = b'<XmlMessage><Payload encoding="binary">@@@</Payload></XmlMessage>'
        with pytest.raises(WireFormatError):
            EnvelopeCodec(runtime).parse(data)
