"""Tests for the hybrid envelope (Figure 3)."""

import pytest

from repro.cts.assembly import Assembly
from repro.fixtures import employee_csharp, person_assembly_pair
from repro.runtime.loader import Runtime
from repro.serialization.envelope import EnvelopeCodec, ObjectEnvelope
from repro.serialization.errors import UnknownTypeError, WireFormatError


@pytest.fixture
def runtime():
    rt = Runtime()
    asm_a, _ = person_assembly_pair()
    rt.load_assembly(asm_a)
    return rt


class TestWrap:
    def test_type_entries_cover_graph(self, runtime):
        hr = Assembly("hr-a", employee_csharp())
        runtime.load_assembly(hr)
        address = runtime.new_instance("demo.a.Address", ["5 Main St", "Lausanne"])
        employee = runtime.new_instance("demo.a.Employee", ["Eva", address])
        codec = EnvelopeCodec(runtime)
        envelope = codec.wrap(employee)
        assert envelope.type_names() == ["demo.a.Employee", "demo.a.Address"]

    def test_root_entry_first(self, runtime):
        codec = EnvelopeCodec(runtime)
        person = runtime.new_instance("demo.a.Person", ["Root"])
        assert codec.wrap(person).root_entry().name == "demo.a.Person"

    def test_entries_carry_download_paths(self, runtime):
        codec = EnvelopeCodec(runtime)
        person = runtime.new_instance("demo.a.Person", ["P"])
        entry = codec.wrap(person).root_entry()
        assert entry.download_path == "repo://person-a/1.0.0"
        assert entry.assembly == "person-a"

    def test_empty_envelope_root_raises(self):
        envelope = ObjectEnvelope([], "binary", b"")
        with pytest.raises(WireFormatError):
            envelope.root_entry()


class TestRoundTrip:
    @pytest.mark.parametrize("encoding", ["binary", "soap"])
    def test_object_round_trip(self, runtime, encoding):
        codec = EnvelopeCodec(runtime, encoding=encoding)
        person = runtime.new_instance("demo.a.Person", ["Ann"])
        restored = codec.decode(codec.encode(person))
        assert restored.invoke("GetName") == "Ann"

    @pytest.mark.parametrize("encoding", ["binary", "soap"])
    def test_plain_values_allowed(self, runtime, encoding):
        codec = EnvelopeCodec(runtime, encoding=encoding)
        assert codec.decode(codec.encode([1, "two", None])) == [1, "two", None]

    def test_parse_preserves_payload_encoding(self, runtime):
        soap_codec = EnvelopeCodec(runtime, encoding="soap")
        person = runtime.new_instance("demo.a.Person", ["Enc"])
        data = soap_codec.encode(person)
        # A binary-default codec can still decode: encoding travels in-band.
        binary_codec = EnvelopeCodec(runtime, encoding="binary")
        assert binary_codec.decode(data).invoke("GetName") == "Enc"

    def test_unwrap_unknown_type_raises(self, runtime):
        codec = EnvelopeCodec(runtime)
        person = runtime.new_instance("demo.a.Person", ["X"])
        data = codec.encode(person)
        receiver = EnvelopeCodec(Runtime())
        envelope = receiver.parse(data)  # parsing works without the type...
        assert envelope.root_entry().name == "demo.a.Person"
        with pytest.raises(UnknownTypeError):  # ...materialising does not
            receiver.unwrap(envelope)


class TestErrors:
    def test_invalid_encoding_config(self):
        with pytest.raises(ValueError):
            EnvelopeCodec(encoding="json")

    def test_parse_garbage(self, runtime):
        with pytest.raises(WireFormatError):
            EnvelopeCodec(runtime).parse(b"not xml")

    def test_parse_wrong_root(self, runtime):
        with pytest.raises(WireFormatError):
            EnvelopeCodec(runtime).parse(b"<Wrong/>")

    def test_parse_missing_payload(self, runtime):
        with pytest.raises(WireFormatError):
            EnvelopeCodec(runtime).parse(b"<XmlMessage><TypeInformation/></XmlMessage>")

    def test_parse_bad_encoding_attr(self, runtime):
        data = b'<XmlMessage><Payload encoding="weird">aGk=</Payload></XmlMessage>'
        with pytest.raises(WireFormatError):
            EnvelopeCodec(runtime).parse(data)

    def test_parse_bad_base64(self, runtime):
        data = b'<XmlMessage><Payload encoding="binary">@@@</Payload></XmlMessage>'
        with pytest.raises(WireFormatError):
            EnvelopeCodec(runtime).parse(data)


class TestBatchEnvelopes:
    def test_batch_round_trip(self, runtime):
        codec = EnvelopeCodec(runtime)
        events = [runtime.new_instance("demo.a.Person", ["b%d" % i])
                  for i in range(5)]
        envelope = codec.parse(codec.encode_batch(events))
        assert envelope.is_batch and envelope.batch_count == 5
        restored = codec.unwrap_batch(envelope)
        assert [p.GetName() for p in restored] == ["b%d" % i for i in range(5)]

    def test_union_type_section_and_roots(self, runtime):
        hr = Assembly("hr-a", employee_csharp())
        runtime.load_assembly(hr)
        codec = EnvelopeCodec(runtime)
        person = runtime.new_instance("demo.a.Person", ["P"])
        address = runtime.new_instance("demo.a.Address", ["5 Main St", "X"])
        employee = runtime.new_instance("demo.a.Employee", ["E", address])
        envelope = codec.wrap_batch([person, employee, person])
        # Union, first-seen order, deduplicated.
        assert envelope.type_names() == [
            "demo.a.Person", "demo.a.Employee", "demo.a.Address",
        ]
        assert envelope.batch_roots == [0, 1, 0]
        assert envelope.batch_root_entry(1).name == "demo.a.Employee"

    def test_origin_travels(self, runtime):
        codec = EnvelopeCodec(runtime)
        event = runtime.new_instance("demo.a.Person", ["O"])
        envelope = codec.parse(codec.encode_batch([event], origin="publisher-7"))
        assert envelope.origin == "publisher-7"

    def test_ack_token_travels(self, runtime):
        codec = EnvelopeCodec(runtime)
        event = runtime.new_instance("demo.a.Person", ["A"])
        envelope = codec.parse(
            codec.encode_batch([event], origin="pub", ack="shard-1/ack-9"))
        assert envelope.ack == "shard-1/ack-9"
        assert envelope.origin == "pub"
        # Absent by default — live non-durable batches carry no token.
        plain = codec.parse(codec.encode_batch([event]))
        assert plain.ack is None

    def test_single_envelope_unchanged(self, runtime):
        """Non-batch messages carry no batch attributes and keep parsing
        exactly as before."""
        codec = EnvelopeCodec(runtime)
        data = codec.encode(runtime.new_instance("demo.a.Person", ["S"]))
        assert b"batch=" not in data
        envelope = codec.parse(data)
        assert not envelope.is_batch
        assert envelope.origin is None
        assert codec.unwrap(envelope).GetName() == "S"
        # unwrap_batch treats it as a one-element batch.
        assert [v.GetName() for v in codec.unwrap_batch(envelope)] == ["S"]

    def test_unwrap_refuses_batch(self, runtime):
        codec = EnvelopeCodec(runtime)
        envelope = codec.parse(
            codec.encode_batch([runtime.new_instance("demo.a.Person", ["X"])])
        )
        with pytest.raises(WireFormatError, match="batch"):
            codec.unwrap(envelope)

    def test_empty_batch_rejected(self, runtime):
        with pytest.raises(ValueError):
            EnvelopeCodec(runtime).wrap_batch([])

    def test_malformed_batch_attrs_rejected(self, runtime):
        codec = EnvelopeCodec(runtime)
        data = codec.encode_batch([runtime.new_instance("demo.a.Person", ["M"])])
        broken = data.replace(b'batch="1"', b'batch="2"')
        with pytest.raises(WireFormatError, match="does not match"):
            codec.parse(broken)
        # Same-length corruption: the frame header is length-prefixed, so
        # a size-changing splice would truncate the XML instead.
        garbage = data.replace(b'batch="1"', b'batch="z"')
        with pytest.raises(WireFormatError, match="malformed"):
            codec.parse(garbage)

    def test_root_index_out_of_range_rejected(self, runtime):
        codec = EnvelopeCodec(runtime)
        data = codec.encode_batch([runtime.new_instance("demo.a.Person", ["R"])])
        broken = data.replace(b'roots="0"', b'roots="3"')
        with pytest.raises(WireFormatError, match="out of range"):
            codec.parse(broken)


class TestLenientHeaderReaders:
    """Uniform malformed-header handling: the mid-pipeline header readers
    (``envelope_record_keys``, ``envelope_home``) return ``None`` and
    count ``header_parse_errors`` for ANY malformed input — they never
    raise (a corrupt stored record must not take down compaction or
    record classification)."""

    def _readers(self):
        from repro.serialization.envelope import (
            envelope_home,
            envelope_record_keys,
            parse_frame_header,
        )
        return envelope_record_keys, envelope_home, parse_frame_header

    def _assert_swallowed(self, data, expected_errors=3):
        from repro.serialization.envelope import CodecStats
        stats = CodecStats()
        for reader in self._readers():
            assert reader(data, stats=stats) is None
        assert stats.header_parse_errors == expected_errors
        assert stats.header_parses == 0

    def test_truncated_frame(self, runtime):
        codec = EnvelopeCodec(runtime)
        data = codec.encode_batch([runtime.new_instance("demo.a.Person",
                                                        ["T"])])
        # Cut mid-header: the length prefix promises more than is there.
        self._assert_swallowed(data[:12])
        # Cut mid-length-prefix.
        self._assert_swallowed(b"XME2")

    def test_corrupt_v1_xml(self):
        self._assert_swallowed(b"<XmlMessage><TypeInformation>")
        self._assert_swallowed(b"<Wrong/>")

    def test_corrupt_attributes(self, runtime):
        codec = EnvelopeCodec(runtime)
        data = codec.encode_batch(
            [runtime.new_instance("demo.a.Person", ["C"])])
        self._assert_swallowed(data.replace(b'batch="1"', b'batch="z"'))
        self._assert_swallowed(data.replace(b'roots="0"', b'roots="9"'))

    def test_garbage(self):
        self._assert_swallowed(b"")
        self._assert_swallowed(b"\x00\x01\x02\x03garbage")

    def test_wellformed_v1_still_reads(self, runtime):
        """The lenient readers accept the legacy all-XML frame too."""
        from repro.serialization.envelope import (
            CodecStats,
            envelope_home,
            envelope_record_keys,
        )
        codec = EnvelopeCodec(runtime)
        envelope = codec.wrap_batch(
            [runtime.new_instance("demo.a.Person", ["L"])])
        legacy = codec.envelope_to_legacy_bytes(envelope)
        stats = CodecStats()
        assert envelope_record_keys(legacy, stats=stats) is not None
        assert envelope_home(legacy, stats=stats) is None  # no home attr
        assert stats.header_parse_errors == 0
        assert stats.header_parses == 2


class TestHomeAttribute:
    """Per-value home-record provenance (mesh replication/fetch dedup)."""

    def test_home_round_trips(self, runtime):
        from repro.serialization.envelope import (
            decode_home,
            encode_home,
            envelope_home,
        )
        codec = EnvelopeCodec(runtime)
        events = [runtime.new_instance("demo.a.Person", ["h%d" % i])
                  for i in range(3)]
        envelope = codec.wrap_batch(events, origin="pub")
        envelope.home = encode_home("shard0", [4, None, 6])
        data = codec.envelope_to_bytes(envelope)
        assert codec.parse(data).home == "shard0|4,-,6"
        assert envelope_home(data) == ("shard0", [4, None, 6])
        assert decode_home("s|1,2") == ("s", [1, 2])
        assert decode_home("garbage") is None
        assert decode_home("s|1,x") is None

    def test_absent_home_reads_none(self, runtime):
        codec = EnvelopeCodec(runtime)
        data = codec.encode_batch(
            [runtime.new_instance("demo.a.Person", ["n"])])
        from repro.serialization.envelope import envelope_home
        assert envelope_home(data) is None
        assert envelope_home(b"not xml") is None
        assert codec.parse(data).home is None
