"""Tests for the SOAP-like XML object serializer."""

import pytest

from repro.fixtures import person_assembly_pair
from repro.runtime.loader import Runtime
from repro.serialization.errors import (
    UnknownTypeError,
    UnsupportedValueError,
    WireFormatError,
)
from repro.serialization.soap import SoapSerializer


@pytest.fixture
def runtime():
    rt = Runtime()
    asm_a, _ = person_assembly_pair()
    rt.load_assembly(asm_a)
    return rt


@pytest.fixture
def codec(runtime):
    return SoapSerializer(runtime)


class TestPrimitives:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -5, 12345, 0.5, -1.25, "", "hello", "<tag> & stuff"],
    )
    def test_round_trip(self, codec, value):
        assert codec.deserialize(codec.serialize(value)) == value

    def test_bool_type_preserved(self, codec):
        assert codec.deserialize(codec.serialize(True)) is True

    def test_float_precision(self, codec):
        value = 0.1 + 0.2
        assert codec.deserialize(codec.serialize(value)) == value


class TestContainers:
    def test_list(self, codec):
        value = [1, "two", None, [True]]
        assert codec.deserialize(codec.serialize(value)) == value

    def test_dict(self, codec):
        value = {"k": [1, 2], "nested": {"x": "y"}}
        assert codec.deserialize(codec.serialize(value)) == value

    def test_unsupported(self, codec):
        with pytest.raises(UnsupportedValueError):
            codec.serialize(object())


class TestObjects:
    def test_round_trip(self, codec, runtime):
        person = runtime.new_instance("demo.a.Person", ["Simone"])
        restored = codec.deserialize(codec.serialize(person))
        assert restored.invoke("GetName") == "Simone"

    def test_shared_reference(self, codec, runtime):
        person = runtime.new_instance("demo.a.Person", ["S"])
        restored = codec.deserialize(codec.serialize({"x": person, "y": person}))
        assert restored["x"] is restored["y"]

    def test_cyclic_field(self, codec, runtime):
        person = runtime.new_instance("demo.a.Person", ["Loop"])
        person.fields["name"] = person
        restored = codec.deserialize(codec.serialize(person))
        assert restored.fields["name"] is restored

    def test_unknown_type(self, codec, runtime):
        person = runtime.new_instance("demo.a.Person", ["X"])
        data = codec.serialize(person)
        with pytest.raises(UnknownTypeError):
            SoapSerializer(Runtime()).deserialize(data)

    def test_xml_shape(self, codec, runtime):
        person = runtime.new_instance("demo.a.Person", ["Look"])
        text = codec.serialize(person).decode("utf-8")
        assert "<Envelope>" in text
        assert "<Body>" in text
        assert 'type="demo.a.Person"' in text
        assert '<Field name="name">' in text
        assert "<string>Look</string>" in text

    def test_output_indented(self, codec, runtime):
        # Human-readable (pretty-printed) like real SOAP toolkits.
        person = runtime.new_instance("demo.a.Person", ["Pretty"])
        text = codec.serialize(person).decode("utf-8")
        assert "\n  " in text


class TestMalformed:
    def test_invalid_xml(self, codec):
        with pytest.raises(WireFormatError):
            codec.deserialize(b"<oops")

    def test_wrong_root(self, codec):
        with pytest.raises(WireFormatError):
            codec.deserialize(b"<NotEnvelope/>")

    def test_empty_body(self, codec):
        with pytest.raises(WireFormatError):
            codec.deserialize(b"<Envelope><Body/></Envelope>")

    def test_bad_int(self, codec):
        with pytest.raises(WireFormatError):
            codec.deserialize(b"<Envelope><Body><int>xyz</int></Body></Envelope>")

    def test_unknown_element(self, codec):
        with pytest.raises(WireFormatError):
            codec.deserialize(b"<Envelope><Body><wibble/></Body></Envelope>")

    def test_dangling_href(self, codec):
        data = (
            b'<Envelope><Body><Object type="demo.a.Person" id="id-1">'
            b'<Field name="name"><ref href="#id-9"/></Field>'
            b"</Object></Body></Envelope>"
        )
        runtime = Runtime()
        asm_a, _ = person_assembly_pair()
        runtime.load_assembly(asm_a)
        with pytest.raises(WireFormatError):
            SoapSerializer(runtime).deserialize(data)
