"""Tests for the binary object serializer."""

import math

import pytest

from repro.fixtures import person_assembly_pair
from repro.runtime.loader import Runtime
from repro.serialization.binary import BinarySerializer
from repro.serialization.errors import (
    UnknownTypeError,
    UnsupportedValueError,
    WireFormatError,
)


@pytest.fixture
def runtime():
    rt = Runtime()
    asm_a, _ = person_assembly_pair()
    rt.load_assembly(asm_a)
    return rt


@pytest.fixture
def codec(runtime):
    return BinarySerializer(runtime)


class TestPrimitives:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 127, 128, -128, 2**40, -(2**40),
         0.0, 1.5, -2.25, "", "hello", "ünïcødé", "x" * 10_000, b"", b"raw\x00bytes"],
    )
    def test_round_trip(self, codec, value):
        assert codec.deserialize(codec.serialize(value)) == value

    def test_bool_stays_bool(self, codec):
        assert codec.deserialize(codec.serialize(True)) is True

    def test_float_nan(self, codec):
        assert math.isnan(codec.deserialize(codec.serialize(float("nan"))))

    def test_float_inf(self, codec):
        assert codec.deserialize(codec.serialize(float("inf"))) == float("inf")


class TestContainers:
    def test_list_round_trip(self, codec):
        value = [1, "two", 3.0, None, [True, False]]
        assert codec.deserialize(codec.serialize(value)) == value

    def test_dict_round_trip(self, codec):
        value = {"a": 1, "b": [2, 3], "c": {"d": None}}
        assert codec.deserialize(codec.serialize(value)) == value

    def test_dict_non_string_keys_rejected(self, codec):
        with pytest.raises(UnsupportedValueError):
            codec.serialize({1: "x"})

    def test_unsupported_type_rejected(self, codec):
        with pytest.raises(UnsupportedValueError):
            codec.serialize(object())

    def test_set_rejected(self, codec):
        with pytest.raises(UnsupportedValueError):
            codec.serialize({1, 2})


class TestObjects:
    def test_instance_round_trip(self, codec, runtime):
        person = runtime.new_instance("demo.a.Person", ["Alice"])
        restored = codec.deserialize(codec.serialize(person))
        assert restored.type_info.guid == person.type_info.guid
        assert restored.get_field("name") == "Alice"
        assert restored.invoke("GetName") == "Alice"

    def test_private_fields_serialized(self, codec, runtime):
        # 'name' is private; the paper's serializers carry private state.
        person = runtime.new_instance("demo.a.Person", ["Secret"])
        restored = codec.deserialize(codec.serialize(person))
        assert restored.fields["name"] == "Secret"

    def test_shared_reference_preserved(self, codec, runtime):
        person = runtime.new_instance("demo.a.Person", ["Shared"])
        restored = codec.deserialize(codec.serialize([person, person]))
        assert restored[0] is restored[1]

    def test_distinct_objects_stay_distinct(self, codec, runtime):
        a = runtime.new_instance("demo.a.Person", ["A"])
        b = runtime.new_instance("demo.a.Person", ["A"])
        restored = codec.deserialize(codec.serialize([a, b]))
        assert restored[0] is not restored[1]

    def test_cycle_via_container_field(self, codec, runtime):
        person = runtime.new_instance("demo.a.Person", ["Loop"])
        person.fields["name"] = person  # self-cycle through a field
        restored = codec.deserialize(codec.serialize(person))
        assert restored.fields["name"] is restored

    def test_unknown_type_raises(self, codec, runtime):
        person = runtime.new_instance("demo.a.Person", ["X"])
        data = codec.serialize(person)
        empty = BinarySerializer(Runtime())
        with pytest.raises(UnknownTypeError) as err:
            empty.deserialize(data)
        assert err.value.type_name == "demo.a.Person"

    def test_object_without_runtime_raises(self, codec, runtime):
        person = runtime.new_instance("demo.a.Person", ["X"])
        data = codec.serialize(person)
        with pytest.raises(WireFormatError):
            BinarySerializer().deserialize(data)


class TestWireRobustness:
    def test_bad_magic(self, codec):
        with pytest.raises(WireFormatError):
            codec.deserialize(b"NOPE" + b"\x00")

    def test_truncated_payload(self, codec):
        data = codec.serialize("hello world")
        with pytest.raises(WireFormatError):
            codec.deserialize(data[:-3])

    def test_trailing_garbage(self, codec):
        data = codec.serialize(42)
        with pytest.raises(WireFormatError):
            codec.deserialize(data + b"\x00")

    def test_unknown_tag(self, codec):
        with pytest.raises(WireFormatError):
            codec.deserialize(b"RBS1\xff")

    def test_dangling_backreference(self, codec):
        with pytest.raises(WireFormatError):
            codec.deserialize(b"RBS1\x09\x05")

    def test_compactness_vs_soap(self, runtime):
        """Binary payloads should be much smaller than SOAP for the same
        object — the reason the hybrid scheme offers both."""
        from repro.serialization.soap import SoapSerializer

        person = runtime.new_instance("demo.a.Person", ["Compact"])
        binary_size = len(BinarySerializer(runtime).serialize(person))
        soap_size = len(SoapSerializer(runtime).serialize(person))
        assert binary_size * 2 < soap_size
