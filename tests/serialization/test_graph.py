"""Tests for object-graph utilities."""

import pytest

from repro.fixtures import employee_csharp, person_assembly_pair
from repro.cts.assembly import Assembly
from repro.runtime.loader import Runtime
from repro.serialization.errors import UnsupportedValueError
from repro.serialization.graph import check_serializable, collect_types, graph_size


@pytest.fixture
def runtime():
    rt = Runtime()
    asm_a, _ = person_assembly_pair()
    rt.load_assembly(asm_a)
    rt.load_assembly(Assembly("hr-a", employee_csharp()))
    return rt


class TestCheckSerializable:
    def test_ok_values(self, runtime):
        person = runtime.new_instance("demo.a.Person", ["ok"])
        check_serializable([1, "x", {"k": person}, None, 2.5])

    def test_cyclic_ok(self, runtime):
        person = runtime.new_instance("demo.a.Person", ["c"])
        person.fields["name"] = person
        check_serializable(person)

    def test_bad_value(self):
        with pytest.raises(UnsupportedValueError):
            check_serializable([1, object()])

    def test_bad_dict_key(self):
        with pytest.raises(UnsupportedValueError):
            check_serializable({2: "x"})


class TestCollectTypes:
    def test_single_object(self, runtime):
        person = runtime.new_instance("demo.a.Person", ["p"])
        assert [t.full_name for t in collect_types(person)] == ["demo.a.Person"]

    def test_nested_types_in_order(self, runtime):
        address = runtime.new_instance("demo.a.Address", ["s", "c"])
        employee = runtime.new_instance("demo.a.Employee", ["e", address])
        names = [t.full_name for t in collect_types(employee)]
        assert names == ["demo.a.Employee", "demo.a.Address"]

    def test_deduplicates(self, runtime):
        a = runtime.new_instance("demo.a.Person", ["a"])
        b = runtime.new_instance("demo.a.Person", ["b"])
        assert len(collect_types([a, b])) == 1

    def test_primitives_only(self):
        assert collect_types([1, "x", None]) == []

    def test_cycles_terminate(self, runtime):
        person = runtime.new_instance("demo.a.Person", ["x"])
        person.fields["name"] = [person, person]
        assert len(collect_types(person)) == 1


class TestGraphSize:
    def test_counts(self, runtime):
        person = runtime.new_instance("demo.a.Person", ["p"])
        counts = graph_size({"people": [person], "n": 3})
        assert counts["objects"] == 1
        assert counts["containers"] == 2  # dict + list
        assert counts["primitives"] >= 2  # "p" and 3
