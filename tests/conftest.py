"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import fixtures as fx
from repro.core import ConformanceChecker, ConformanceOptions
from repro.cts.assembly import Assembly
from repro.net.network import SimulatedNetwork
from repro.runtime.loader import Runtime


@pytest.fixture
def person_cs():
    """The C#-authored Person (GetName/SetName)."""
    return fx.person_csharp()


@pytest.fixture
def person_java():
    """The Java-authored Person (getPersonName/setPersonName)."""
    return fx.person_java()


@pytest.fixture
def person_vb():
    """The VB-authored Person (GetName/SetName)."""
    return fx.person_vb()


@pytest.fixture
def account():
    """A type that must NOT conform to Person."""
    return fx.account_csharp()


@pytest.fixture
def strict_checker():
    """Checker with the paper's verbatim rules (LD = 0)."""
    return ConformanceChecker()


@pytest.fixture
def pragmatic_checker():
    """Checker with the token-subset name relaxation."""
    return ConformanceChecker(options=ConformanceOptions.pragmatic())


@pytest.fixture
def runtime():
    return Runtime()


@pytest.fixture
def loaded_runtime(person_cs):
    rt = Runtime()
    rt.load_type(person_cs)
    return rt


@pytest.fixture
def network():
    return SimulatedNetwork()


@pytest.fixture
def person_assemblies():
    return fx.person_assembly_pair()


@pytest.fixture
def employee_assemblies():
    return fx.employee_assembly_pair()
