#!/usr/bin/env python3
"""Durable replay — late joiners and shard crash recovery.

PR 2's mesh delivers events only to subscribers connected at publish
time.  This demo shows the persistence subsystem removing that limit:

1. every shard appends admitted event batches to a segmented
   :class:`EventLog` before fan-out;
2. a **late durable subscriber** replays the conforming backlog from a
   named cursor, then switches to live delivery — per-batch acks advance
   the cursor, so nothing is replayed twice;
3. ``BrokerMesh.restart_shard`` crash-restarts a shard: the replacement
   reopens the log (recovery scan included), reloads durable
   subscriptions from the cursor store, resyncs sibling summaries, and
   redelivers whatever was never acked (at-least-once).

Run:  PYTHONPATH=src python examples/durable_replay.py
"""

import tempfile

from repro.apps.tps import BrokerMesh, TpsPeer
from repro.fixtures import person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork
from repro.persistence import inspect_log

N_BACKLOG = 8


def main():
    log_root = tempfile.mkdtemp(prefix="repro-durable-")
    network = SimulatedNetwork()
    mesh = BrokerMesh(network, shard_count=3, log_root=log_root)
    publisher = TpsPeer("publisher", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    home = mesh.shard_for("publisher")

    # A plain (non-durable) subscriber sees the burst as it happens.  It
    # subscribes at the publisher's home shard on purpose: when that
    # shard crashes later, this subscription dies with it — the contrast
    # the durable subscription exists to fix.
    live = []
    early = TpsPeer("early-sub", network)
    early.subscribe_remote(home, person_java(), live.append)
    for index in range(N_BACKLOG):
        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["e%d" % index]))
    mesh.run_until_idle()
    print("published %d events; live subscriber saw %d"
          % (N_BACKLOG, len(live)))

    # ...and a subscriber that joins AFTER the burst replays it durably.
    late = []
    newcomer = TpsPeer("late-sub", network)
    newcomer.subscribe_durable_remote(home, person_java(), late.append,
                                      cursor="late-sub")
    mesh.run_until_idle()
    print("late durable subscriber replayed: %s"
          % [event.getPersonName() for event in late])

    # Live events keep flowing; acks keep the cursor at the log's edge.
    publisher.publish_async(
        home, publisher.new_instance("demo.a.Person", ["live-after-join"]))
    mesh.run_until_idle()
    shard = mesh.shard(home)
    print("cursor after live event: %s (log end %d)"
          % (shard.cursors.as_dict(), shard.event_log.next_offset))

    # Crash the home shard mid-flight: two events are logged and sent,
    # but the acks never reach the old incarnation.
    publisher.publish_async(
        home, publisher.new_instance("demo.a.Person", ["crash-1"]))
    publisher.publish_async(
        home, publisher.new_instance("demo.a.Person", ["crash-2"]))
    mesh.flush()  # logged + buffered on the shard
    mesh.flush()  # delivered; acks still queued when the crash hits
    mesh.restart_shard(home)
    mesh.run_until_idle()
    names = [event.getPersonName() for event in late]
    print("after crash-restart the durable subscriber has %d events "
          "(%d duplicates from at-least-once redelivery)"
          % (len(names), len(names) - len(set(names))))
    assert set(names) >= {"crash-1", "crash-2"}

    # The restarted shard rebuilt the durable subscription from its
    # cursor store — but the plain subscription died with the crash.
    publisher.publish_async(
        home, publisher.new_instance("demo.a.Person", ["recovered"]))
    mesh.run_until_idle()
    assert [event.getPersonName() for event in late][-1] == "recovered"
    assert [event.getPersonName() for event in live][-1] != "recovered"
    print("post-restart publish reached the durable subscriber; the plain "
          "subscription died with the shard (%d vs %d events)"
          % (len(late), len(live)))

    info = inspect_log(shard.event_log.directory)
    print("\nhome shard log: %d records in offsets [%d, %d), %d segment(s)"
          % (info["records"], info["first_offset"], info["next_offset"],
             info["segment_count"]))
    print("replay counters:", {
        "events_replayed": mesh.stats()["events_replayed"],
        "replay_failures": mesh.stats()["replay_failures"],
    })
    print("\nInspect any shard log yourself:")
    print("  PYTHONPATH=src python -m repro log inspect %s/%s"
          % (log_root, home))


if __name__ == "__main__":
    main()
