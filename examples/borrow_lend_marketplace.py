#!/usr/bin/env python3
"""Borrow/lend marketplace with type-conformance matching (paper Section 8).

Lenders put resources up for lending; borrowers ask for "anything that
conforms to my expected type".  The lent printer was written by a different
team with different method names — the borrower still drives it through its
own interface, by reference, over the network.

Run:  python examples/borrow_lend_marketplace.py
"""

from repro import Assembly, SimulatedNetwork
from repro.apps.borrowlend import BorrowError, BorrowLendPeer
from repro.langs.csharp import compile_source as compile_csharp
from repro.langs.java import compile_source as compile_java

LENDER_PRINTER = """
class Printer {
    private string status;
    private int jobs;
    public Printer() { this.status = "idle"; this.jobs = 0; }
    public string GetStatus() { return this.status; }
    public int GetJobs() { return this.jobs; }
    public string PrintDocument(string doc) {
        this.jobs = this.jobs + 1;
        this.status = "printing " + doc;
        return "job " + this.jobs + ": " + doc;
    }
}
"""

BORROWER_PRINTER = """
class Printer {
    private String status;
    private int jobs;
    public Printer() { this.status = "idle"; this.jobs = 0; }
    public String getPrinterStatus() { return this.status; }
    public int getPrinterJobs() { return this.jobs; }
    public String printDocument(String doc) { return doc; }
}
"""


def main():
    network = SimulatedNetwork()
    lender = BorrowLendPeer("print-shop", network)
    borrower = BorrowLendPeer("law-firm", network)

    printer_types = compile_csharp(LENDER_PRINTER, namespace="shop")
    lender.host_assembly(Assembly("shop-devices", printer_types))
    printer = lender.new_instance("shop.Printer")
    lender.lend("front-desk-printer", printer, max_duration_s=60.0)
    print("Lender offers:", lender.offers())

    # The borrower's own Printer type (Java-like, different names).
    expected = compile_java(BORROWER_PRINTER, namespace="firm")[0]

    lease = borrower.borrow("print-shop", expected)
    print("\nBorrowed:", lease)
    print("status via borrower's surface:", lease.view.getPrinterStatus())
    print("printing:", lease.view.printDocument("contract.pdf"))
    print("printing:", lease.view.printDocument("brief.pdf"))
    print("jobs counted on the lender's machine:", printer.GetJobs())
    print("status:", lease.view.getPrinterStatus())

    # A second borrower cannot take the same resource while it is lent.
    competitor = BorrowLendPeer("startup", network)
    try:
        competitor.borrow("print-shop", expected)
    except BorrowError as exc:
        print("\nCompetitor's borrow failed as expected:", exc)

    lease.give_back()
    print("\nAfter return:", lender.offers())
    second = competitor.borrow("print-shop", expected)
    print("Competitor now borrows fine:", second.view.getPrinterStatus())
    second.give_back()

    print("\nNetwork:", network.stats)


if __name__ == "__main__":
    main()
