#!/usr/bin/env python3
"""Multi-language type-based publish/subscribe over the optimistic protocol.

Three organisations author "the same" NewsEvent module independently — in
C#-like, Java-like and VB-like syntax, with different accessor spellings.
A broker routes events by *type conformance*: every subscriber receives
every conformant event as its own expected type, and the code of unknown
event types travels on demand (Figure 1).

Run:  python examples/multilanguage_news.py
"""

from repro import Assembly, SimulatedNetwork
from repro.apps.tps import TpsBroker, TpsPeer
from repro.langs.csharp import compile_source as compile_csharp
from repro.langs.java import compile_source as compile_java
from repro.langs.vb import compile_source as compile_vb

CSHARP_NEWS = """
class NewsEvent {
    private string headline;
    private string body;
    public NewsEvent(string h, string b) { this.headline = h; this.body = b; }
    public string GetHeadline() { return this.headline; }
    public string GetBody() { return this.body; }
}
"""

JAVA_NEWS = """
class NewsEvent {
    private String headline;
    private String body;
    public NewsEvent(String h, String b) { this.headline = h; this.body = b; }
    public String getNewsHeadline() { return this.headline; }
    public String getNewsBody() { return this.body; }
}
"""

VB_NEWS = """
Class NewsEvent
    Private headline As String
    Private body As String
    Public Sub New(h As String, b As String)
        Me.headline = h
        Me.body = b
    End Sub
    Public Function GetHeadline() As String
        Return Me.headline
    End Function
    Public Function GetBody() As String
        Return Me.body
    End Function
End Class
"""


def main():
    network = SimulatedNetwork()
    broker = TpsBroker("broker", network)

    # Publisher: a C# shop.
    publisher = TpsPeer("reuters", network)
    cs_types = compile_csharp(CSHARP_NEWS, namespace="com.reuters")
    publisher.host_assembly(Assembly("reuters-news", cs_types))

    # Subscriber 1: a Java shop with its own NewsEvent type.
    java_subscriber = TpsPeer("javashop", network)
    java_news = compile_java(JAVA_NEWS, namespace="org.javashop")[0]

    # Subscriber 2: a VB shop.
    vb_subscriber = TpsPeer("vbshop", network)
    vb_news = compile_vb(VB_NEWS, namespace="vb.shop")[0]

    java_inbox, vb_inbox = [], []
    java_subscriber.subscribe_remote("broker", java_news, java_inbox.append)
    vb_subscriber.subscribe_remote("broker", vb_news, vb_inbox.append)

    print("Publishing two events from the C# shop...")
    for headline, body in [
        ("Types unified", "Implicit structural conformance ships."),
        ("Middleware news", "Optimistic protocol saves bytes."),
    ]:
        event = publisher.new_instance("com.reuters.NewsEvent", [headline, body])
        publisher.publish("broker", event)

    print("\nJava shop received %d events (via its own surface):" % len(java_inbox))
    for event in java_inbox:
        print("  -", event.getNewsHeadline(), "//", event.getNewsBody())

    print("\nVB shop received %d events:" % len(vb_inbox))
    for event in vb_inbox:
        print("  -", event.GetHeadline(), "//", event.GetBody())

    print("\nNetwork accounting:")
    print("  messages:", network.stats.messages,
          " bytes:", network.stats.bytes_sent,
          " round trips:", network.stats.round_trips)
    print("  by kind:", dict(sorted(network.stats.by_kind_messages.items())))
    print("\nNote: descriptions/code were fetched once per peer; the second"
          " event travelled as a bare envelope.")


if __name__ == "__main__":
    main()
