#!/usr/bin/env python3
"""Byte/round-trip accounting: the Figure-1 optimistic protocol vs an eager
baseline that ships descriptions + code with every object.

Prints the per-stream totals for growing N and the rejection scenario where
the optimistic protocol never downloads code at all.

Run:  python examples/optimistic_vs_eager.py
"""

from repro import Assembly, SimulatedNetwork
from repro.core import ConformanceOptions
from repro.fixtures import account_csharp, person_assembly_pair, person_java
from repro.transport.eager import EagerPeer
from repro.transport.protocol import InteropPeer


def build_world(peer_cls):
    network = SimulatedNetwork()
    sender = peer_cls("sender", network, options=ConformanceOptions.pragmatic())
    receiver = peer_cls("receiver", network, options=ConformanceOptions.pragmatic())
    asm_a, _ = person_assembly_pair()
    sender.host_assembly(asm_a)
    receiver.declare_interest(person_java())
    return network, sender, receiver


def run_stream(peer_cls, n_objects):
    network, sender, receiver = build_world(peer_cls)
    for i in range(n_objects):
        sender.send("receiver", sender.new_instance("demo.a.Person", ["p%d" % i]))
    return network.stats.bytes_sent, network.stats.round_trips


def main():
    print("Streaming N same-type objects from sender to receiver")
    print()
    print("    N   optimistic bytes (rtts)     eager bytes (rtts)   savings")
    print("  ---   -----------------------   --------------------   -------")
    for n in (1, 2, 5, 10, 25, 50):
        opt_bytes, opt_rtts = run_stream(InteropPeer, n)
        eag_bytes, eag_rtts = run_stream(EagerPeer, n)
        savings = 100.0 * (1 - opt_bytes / eag_bytes)
        print("  %3d   %15s (%d)   %18s (%d)   %+6.1f%%" % (
            n, format(opt_bytes, ","), opt_rtts,
            format(eag_bytes, ","), eag_rtts, savings))

    print()
    print("Rejection scenario (receiver is interested in Person; sender"
          " ships an Account):")
    for cls, label in ((InteropPeer, "optimistic"), (EagerPeer, "eager")):
        network, sender, receiver = build_world(cls)
        sender.host_assembly(Assembly("bank", [account_csharp()]))
        sender.send("receiver", sender.new_instance("demo.bank.Account", ["o", 1]))
        print("  %-10s  bytes=%6d  code downloads=%d  rejected=%d" % (
            label,
            network.stats.bytes_sent,
            receiver.transport_stats.assemblies_fetched,
            receiver.transport_stats.objects_rejected,
        ))
    print()
    print("The optimistic protocol pays 2 round trips once per new type and"
          " then sends bare envelopes; eager pays the full bundle forever"
          " and ships code even for objects the receiver rejects.")

    # Show the Figure-1 message sequence for two objects of one new type.
    from repro.net.trace import chart_for

    network, sender, receiver = build_world(InteropPeer)
    for i in range(2):
        sender.send("receiver", sender.new_instance("demo.a.Person", ["p%d" % i]))
    print()
    print("Figure 1, as traced on the wire (2 objects of a new type):")
    print(chart_for(network))


if __name__ == "__main__":
    main()
