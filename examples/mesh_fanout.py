#!/usr/bin/env python3
"""Mesh fan-out — sharded, batched type-based publish/subscribe.

The seed :class:`TpsBroker` pushes one synchronous network message per
matching subscription per event.  The :class:`BrokerMesh` shards the
broker, gossips subscription summaries so a publish crosses only the
shard boundaries it must, and drains deliveries as per-peer batch frames
(one ``RBS2B`` payload, one intern table, one message — however many
events are queued for that peer).

This demo builds a 4-shard mesh with 30 subscriber peers, publishes a
burst of events, and prints the message/byte economy against the seed
single-broker path.

Run:  PYTHONPATH=src python examples/mesh_fanout.py
"""

from repro.apps.tps import BrokerMesh, TpsBroker, TpsPeer
from repro.cts.assembly import Assembly
from repro.fixtures import account_csharp, person_assembly_pair, person_java
from repro.net.network import SimulatedNetwork

N_SUBSCRIBERS = 30
N_EVENTS = 6


def build_subscribers(network, subscribe_target):
    deliveries = {}
    for index in range(N_SUBSCRIBERS):
        peer = TpsPeer("sub%02d" % index, network)
        deliveries[peer.peer_id] = []
        subscribe_target(peer, deliveries[peer.peer_id].append)
    return deliveries


def run_seed():
    network = SimulatedNetwork()
    TpsBroker("broker", network)
    publisher = TpsPeer("publisher", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    deliveries = build_subscribers(
        network,
        lambda peer, handler: peer.subscribe_remote("broker", person_java(), handler),
    )
    network.reset_accounting()
    for index in range(N_EVENTS):
        publisher.publish("broker",
                          publisher.new_instance("demo.a.Person", ["e%d" % index]))
    return network, deliveries


def run_mesh():
    network = SimulatedNetwork()
    mesh = BrokerMesh(network, shard_count=4)
    publisher = TpsPeer("publisher", network)
    asm_a, _ = person_assembly_pair()
    publisher.host_assembly(asm_a)
    deliveries = build_subscribers(
        network,
        lambda peer, handler: peer.subscribe_remote(
            mesh.shard_for(peer.peer_id), person_java(), handler),
    )
    network.reset_accounting()
    home = mesh.shard_for("publisher")
    for index in range(N_EVENTS):
        publisher.publish_async(
            home, publisher.new_instance("demo.a.Person", ["e%d" % index]))
    mesh.run_until_idle()
    return network, mesh, publisher, deliveries


def main():
    seed_net, seed_deliveries = run_seed()
    mesh_net, mesh, publisher, mesh_deliveries = run_mesh()

    print("%d events -> %d subscribers" % (N_EVENTS, N_SUBSCRIBERS))
    print("\n%-28s %10s %12s" % ("", "messages", "bytes"))
    print("%-28s %10d %12s" % ("seed single broker",
                               seed_net.stats.messages,
                               format(seed_net.stats.bytes_sent, ",")))
    print("%-28s %10d %12s" % ("4-shard mesh (batched)",
                               mesh_net.stats.messages,
                               format(mesh_net.stats.bytes_sent, ",")))
    print("%-28s %9.1fx %11.1fx" % (
        "reduction",
        seed_net.stats.messages / mesh_net.stats.messages,
        seed_net.stats.bytes_sent / mesh_net.stats.bytes_sent))

    print("\nMesh traffic by kind:")
    for kind, count in sorted(mesh_net.stats.by_kind_messages.items()):
        print("  %-16s %5d msgs %10s bytes" % (
            kind, count, format(mesh_net.stats.by_kind_bytes[kind], ",")))

    assert all(len(v) == N_EVENTS for v in mesh_deliveries.values())
    assert all(len(v) == N_EVENTS for v in seed_deliveries.values())
    first = next(iter(mesh_deliveries.values()))
    print("\nEvery subscriber saw: %s"
          % [event.getPersonName() for event in first])

    # Summary gossip at work: an event type nobody subscribed to is
    # forwarded to ZERO other shards (and delivered to nobody).
    publisher.host_assembly(Assembly("bank", [account_csharp()]))
    mesh_net.reset_accounting()
    publisher.publish_async(mesh.shard_for("publisher"),
                            publisher.new_instance("demo.bank.Account", ["o", 1]))
    mesh.run_until_idle()
    print("\nNo-match publish: %d shard forwards, %d deliveries"
          % (mesh_net.stats.by_kind_messages.get("mesh_forward", 0),
             mesh_net.stats.by_kind_messages.get("object_batch", 0)))

    print("\nHome shard snapshot:",
          {key: value
           for key, value in mesh.stats()["shards"][mesh.shard_for("publisher")].items()
           if key in ("events_routed", "forwards_sent", "summary_types",
                      "batch_events")})


if __name__ == "__main__":
    main()
