#!/usr/bin/env python3
"""Compound types (related work §2.2) on top of implicit conformance.

Büchi & Weck's ``[TypeA, TypeB]`` denotes everything satisfying all
components.  Reproduced over our checker, a compound becomes a multi-facet
query: "give me anything that is both a Named and a Priced", and the same
object is then driven through each facet via its own (possibly translating)
proxy.

Run:  python examples/compound_facets.py
"""

from repro import Runtime
from repro.core import (
    CompoundType,
    ConformanceChecker,
    ConformanceOptions,
    compound_view,
    conforms_to_compound,
)
from repro.cts.builder import interface_builder
from repro.langs.csharp import compile_source

PRODUCT_SOURCE = """
class Product {
    private string name;
    private int price;
    public Product(string n, int p) { this.name = n; this.price = p; }
    public string GetName() { return this.name; }
    public int GetPrice() { return this.price; }
    public void SetPrice(int p) { this.price = p; }
}
"""

SERVICE_SOURCE = """
class Service {
    private string name;
    public Service(string n) { this.name = n; }
    public string GetName() { return this.name; }
}
"""


def main():
    named = interface_builder("facets.Named").method("GetName", [], "string").build()
    priced = interface_builder("facets.Priced").method("GetPrice", [], "int").build()
    sellable = CompoundType([named, priced])

    product_type = compile_source(PRODUCT_SOURCE, namespace="shop")[0]
    service_type = compile_source(SERVICE_SOURCE, namespace="shop")[0]

    # Facet interfaces have different names than the classes; disable the
    # type-name aspect (facets are roles, not modules).
    checker = ConformanceChecker(options=ConformanceOptions(check_name=False))

    print("Query:", sellable.display_name)
    for info in (product_type, service_type):
        result = conforms_to_compound(info, sellable, checker)
        print("\n" + result.explain())

    runtime = Runtime()
    runtime.load_type(product_type)
    widget = runtime.instantiate(product_type, ["widget", 19])

    views = compound_view(widget, sellable, checker)
    print("\nDriving one object through both facets:")
    print("  as Named :", views["facets.Named"].GetName())
    print("  as Priced:", views["facets.Priced"].GetPrice())


if __name__ == "__main__":
    main()
