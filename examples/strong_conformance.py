#!/usr/bin/env python3
"""Strong implicit conformance: structural AND behavioral (paper §4.1).

The paper classifies conformance into structural and behavioral and calls
their combination "strong" implicit type conformance — noting behavioral
checking "should be feasible for types dealing only with primitive types".
This example implements that feasible fragment: two Stack modules by
different teams pass the structural check, then a sampling harness drives
both implementations with identical inputs. A third, subtly buggy module
passes structurally but is caught behaviorally.

Run:  python examples/strong_conformance.py
"""

from repro import Runtime
from repro.core import (
    BehavioralChecker,
    BehavioralOptions,
    ConformanceChecker,
    ConformanceOptions,
)
from repro.langs.csharp import compile_source as compile_csharp
from repro.langs.vb import compile_source as compile_vb

TEAM_A_STACK = """
class IntStack {
    private string items;
    private int depth;
    private int top;
    public IntStack() { this.items = ""; this.depth = 0; this.top = 0; }
    public void Push(int v) { this.top = v; this.depth = this.depth + 1; }
    public int Peek() { return this.top; }
    public int Size() { return this.depth; }
}
"""

TEAM_B_STACK = """
Class IntStack
    Private count As Integer
    Private last As Integer
    Public Sub New()
        Me.count = 0
        Me.last = 0
    End Sub
    Public Sub Push(v As Integer)
        Me.last = v
        Me.count = Me.count + 1
    End Sub
    Public Function Peek() As Integer
        Return Me.last
    End Function
    Public Function Size() As Integer
        Return Me.count
    End Function
End Class
"""

BUGGY_STACK = """
class IntStack {
    private int depth;
    private int top;
    public IntStack() { this.depth = 0; this.top = 0; }
    public void Push(int v) { this.top = v; this.depth = this.depth + 2; }
    public int Peek() { return this.top; }
    public int Size() { return this.depth; }
}
"""


def main():
    team_a = compile_csharp(TEAM_A_STACK, namespace="team.a")[0]
    team_b = compile_vb(TEAM_B_STACK, namespace="team.b")[0]
    buggy = compile_csharp(BUGGY_STACK, namespace="team.c")[0]

    runtime = Runtime()
    for info in (team_a, team_b, buggy):
        runtime.load_type(info)

    structural = ConformanceChecker(options=ConformanceOptions.pragmatic())
    behavioral = BehavioralChecker(
        runtime, structural=structural,
        options=BehavioralOptions(rounds=15, calls_per_round=10, seed=7),
    )

    print("Structural verdicts (all three share the IntStack surface):")
    for provider, label in ((team_a, "team.a (C#)"), (buggy, "team.c (buggy C#)")):
        verdict = structural.conforms(provider, team_b).verdict
        print("  %-18s vs team.b (VB): %s" % (label, verdict))

    print("\nBehavioral comparison — team.a vs team.b:")
    result = behavioral.check(team_a, team_b)
    print(result.explain())
    print("strong conformance:", behavioral.strong_conforms(team_a, team_b))

    print("\nBehavioral comparison — team.c (buggy) vs team.b:")
    result = behavioral.check(buggy, team_b)
    print(result.explain())
    print("strong conformance:", behavioral.strong_conforms(buggy, team_b))

    print("\nThe bug (Size counts by 2) is invisible to every structural"
          " rule — only execution reveals it, exactly the distinction the"
          " paper draws in Section 4.1.")


if __name__ == "__main__":
    main()
