#!/usr/bin/env python3
"""Quickstart — the paper's Section 3.1 scenario.

Two programmers implement the same ``Person`` module independently:

* programmer A (C#-like):   ``GetName()`` / ``SetName()``
* programmer B (Java-like): ``getPersonName()`` / ``setPersonName()``

Implicit structural conformance unifies the two types, and a dynamic proxy
lets an instance of A's type be used exactly as if it were B's.

Run:  python examples/quickstart.py
"""

from repro import ConformanceChecker, ConformanceOptions, Runtime, fixtures, wrap


def main():
    provider = fixtures.person_csharp()   # programmer A's type
    expected = fixtures.person_java()     # programmer B's type

    print("Provider type:", provider.full_name, "(%s)" % provider.language)
    for method in provider.public_methods():
        print("   ", method.signature())
    print("Expected type:", expected.full_name, "(%s)" % expected.language)
    for method in expected.public_methods():
        print("   ", method.signature())

    # 1. The paper's strict rules (LD = 0) cannot unify the renamed
    #    accessors...
    strict = ConformanceChecker()
    print("\nStrict (paper Section 4) verdict:",
          strict.conforms(provider, expected).verdict)

    # 2. ...the pragmatic token-subset relaxation can.
    checker = ConformanceChecker(options=ConformanceOptions.pragmatic())
    result = checker.conforms(provider, expected)
    print("Pragmatic verdict:", result.verdict)
    print(result.explain())

    # 3. Instantiate A's type and use it through B's surface.
    runtime = Runtime()
    runtime.load_type(provider)
    someone = runtime.instantiate(provider, ["Ada"])
    view = wrap(someone, expected, checker)

    print("\nview.getPersonName() ->", view.getPersonName())
    view.setPersonName("Grace")
    print("after view.setPersonName('Grace'):")
    print("  view.getPersonName() ->", view.getPersonName())
    print("  underlying object    ->", someone)

    # 4. The witness mapping the proxy uses:
    print("\nWitness mapping:")
    for match in result.mapping.methods:
        print("  %s -> %s (permutation %s)" % (
            match.expected.name, match.provider.name, list(match.permutation)))


if __name__ == "__main__":
    main()
