"""Serialization error hierarchy."""

from __future__ import annotations

from typing import Optional


class SerializationError(Exception):
    """Base class for serializer failures."""


class UnsupportedValueError(SerializationError, TypeError):
    """A value outside the serializable universe was encountered."""


class WireFormatError(SerializationError, ValueError):
    """Malformed bytes / XML on the decode path."""


class UnknownTypeError(SerializationError):
    """Deserialization hit a type the local runtime does not know.

    This is the trigger of the optimistic protocol: the transport layer
    catches it, fetches the description (and, after a successful conformance
    check, the assembly) and retries.
    """

    def __init__(self, type_name: str, guid_text: Optional[str] = None):
        super().__init__(
            "unknown type %r%s" % (type_name, " (guid %s)" % guid_text if guid_text else "")
        )
        self.type_name = type_name
        self.guid_text = guid_text
