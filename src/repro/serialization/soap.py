"""SOAP-style XML object serializer.

The verbose payload format of the hybrid scheme: a self-describing XML
envelope encoding the whole object graph, shared references included
(``id``/``href`` in the SOAP-section-5 tradition).  Deliberately more costly
to produce than to parse — the asymmetry the paper measures in §7.3
("creating a SOAP structure from an object is more complex than the
opposite").
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Dict, List, Optional

from ..cts.identity import Guid
from ..runtime.loader import Runtime
from ..runtime.objects import CtsInstance
from .errors import UnknownTypeError, UnsupportedValueError, WireFormatError


class SoapSerializer:
    """Object graph ↔ SOAP-like XML."""

    format_name = "soap"

    def __init__(self, runtime: Optional[Runtime] = None):
        self.runtime = runtime

    # -- encode ------------------------------------------------------------

    def serialize(self, value: Any) -> bytes:
        envelope = ET.Element("Envelope")
        body = ET.SubElement(envelope, "Body")
        body.append(self._encode(value, {}))
        # Pretty-printing (indentation) is part of what makes SOAP encoding
        # heavier than decoding, as in the paper's measurements.
        self._indent(envelope, 0)
        return ET.tostring(envelope, encoding="utf-8")

    def serialize_element(self, value: Any) -> ET.Element:
        """Encode to an element (used inline by the hybrid envelope)."""
        return self._encode(value, {})

    def _encode(self, value: Any, seen: Dict[int, str]) -> ET.Element:
        if value is None:
            return ET.Element("null")
        if value is True or value is False:
            element = ET.Element("boolean")
            element.text = "true" if value else "false"
            return element
        if isinstance(value, int):
            element = ET.Element("int")
            element.text = str(value)
            return element
        if isinstance(value, float):
            element = ET.Element("double")
            element.text = repr(value)
            return element
        if isinstance(value, str):
            element = ET.Element("string")
            element.text = value
            return element
        if isinstance(value, list):
            element = ET.Element("list")
            for item in value:
                wrapper = ET.SubElement(element, "item")
                wrapper.append(self._encode(item, seen))
            return element
        if isinstance(value, dict):
            element = ET.Element("dict")
            for key, item in value.items():
                if not isinstance(key, str):
                    raise UnsupportedValueError("dict keys must be strings")
                entry = ET.SubElement(element, "entry", {"key": key})
                entry.append(self._encode(item, seen))
            return element
        if isinstance(value, CtsInstance):
            marker = id(value)
            if marker in seen:
                return ET.Element("ref", {"href": "#" + seen[marker]})
            ref_id = "id-%d" % (len(seen) + 1)
            seen[marker] = ref_id
            element = ET.Element(
                "Object",
                {
                    "id": ref_id,
                    "type": value.type_info.full_name,
                    "guid": str(value.type_info.guid),
                },
            )
            for name, item in value.fields.items():
                field = ET.SubElement(element, "Field", {"name": name})
                field.append(self._encode(item, seen))
            return element
        raise UnsupportedValueError(
            "cannot SOAP-serialize value of type %s" % type(value).__name__
        )

    def _indent(self, element: ET.Element, depth: int) -> None:
        pad = "\n" + "  " * (depth + 1)
        if len(element):
            if not element.text or not element.text.strip():
                element.text = pad
            for child in element:
                self._indent(child, depth + 1)
                if not child.tail or not child.tail.strip():
                    child.tail = pad
            last = element[-1]
            last.tail = "\n" + "  " * depth
        # leaf elements keep their text content untouched

    # -- decode ------------------------------------------------------------

    def deserialize(self, data) -> Any:
        try:
            root = ET.fromstring(data)
        except ET.ParseError as exc:
            raise WireFormatError("invalid SOAP XML: %s" % exc)
        if root.tag != "Envelope":
            raise WireFormatError("expected <Envelope>, found <%s>" % root.tag)
        body = root.find("Body")
        if body is None or len(body) != 1:
            raise WireFormatError("<Body> must contain exactly one value")
        return self.deserialize_element(body[0])

    def deserialize_element(self, element: ET.Element) -> Any:
        objects: Dict[str, CtsInstance] = {}
        pending: List = []
        value = self._decode(element, objects, pending)
        for instance, field_name, href in pending:
            target = objects.get(href)
            if target is None:
                raise WireFormatError("dangling href %r" % href)
            instance.fields[field_name] = target
        return value

    def _decode(self, element: ET.Element, objects: Dict[str, CtsInstance], pending: List) -> Any:
        tag = element.tag
        if tag == "null":
            return None
        if tag == "boolean":
            return (element.text or "").strip() == "true"
        if tag == "int":
            try:
                return int((element.text or "").strip())
            except ValueError:
                raise WireFormatError("bad int %r" % element.text)
        if tag == "double":
            try:
                return float((element.text or "").strip())
            except ValueError:
                raise WireFormatError("bad double %r" % element.text)
        if tag == "string":
            return element.text or ""
        if tag == "list":
            out = []
            for item in element.findall("item"):
                if len(item) != 1:
                    raise WireFormatError("<item> must hold exactly one value")
                out.append(self._decode(item[0], objects, pending))
            return out
        if tag == "dict":
            mapping: Dict[str, Any] = {}
            for entry in element.findall("entry"):
                key = entry.get("key")
                if key is None or len(entry) != 1:
                    raise WireFormatError("malformed <entry>")
                mapping[key] = self._decode(entry[0], objects, pending)
            return mapping
        if tag == "Object":
            return self._decode_object(element, objects, pending)
        if tag == "ref":
            href = (element.get("href") or "").lstrip("#")
            target = objects.get(href)
            if target is not None:
                return target
            raise WireFormatError("forward href %r outside an object field" % href)
        raise WireFormatError("unknown element <%s>" % tag)

    def _decode_object(self, element: ET.Element, objects: Dict[str, CtsInstance], pending: List) -> CtsInstance:
        if self.runtime is None:
            raise WireFormatError("payload contains objects but no runtime was provided")
        type_name = element.get("type")
        guid_text = element.get("guid")
        if not type_name:
            raise WireFormatError("<Object> missing type attribute")
        info = None
        guid = Guid.parse(guid_text) if guid_text else None
        if guid is not None:
            info = self.runtime.registry.get_by_guid(guid)
        if info is None:
            candidate = self.runtime.registry.get(type_name)
            if candidate is not None and (guid is None or candidate.guid == guid):
                info = candidate
        if info is None:
            raise UnknownTypeError(type_name, guid_text)
        instance = self.runtime.raw_instance(info, {})
        ref_id = element.get("id")
        if ref_id:
            objects[ref_id] = instance
        for field in element.findall("Field"):
            name = field.get("name")
            if name is None or len(field) != 1:
                raise WireFormatError("malformed <Field>")
            child = field[0]
            if child.tag == "ref":
                href = (child.get("href") or "").lstrip("#")
                if href in objects:
                    instance.fields[name] = objects[href]
                else:
                    pending.append((instance, name, href))
                    instance.fields[name] = None
            else:
                instance.fields[name] = self._decode(child, objects, pending)
        return instance
