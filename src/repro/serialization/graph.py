"""Object-graph utilities shared by the serializers.

The serializable universe is: ``None``, bool, int, float, str, lists,
string-keyed dicts, and :class:`~repro.runtime.objects.CtsInstance` — closed
under nesting, with shared references and cycles permitted.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set

from ..cts.types import TypeInfo
from ..runtime.objects import CtsInstance
from .errors import UnsupportedValueError


def check_serializable(value: Any) -> None:
    """Raise :class:`UnsupportedValueError` for out-of-universe values."""
    seen: Set[int] = set()

    def walk(node: Any) -> None:
        if node is None or isinstance(node, (bool, int, float, str)):
            return
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, list):
            for item in node:
                walk(item)
            return
        if isinstance(node, dict):
            for key, item in node.items():
                if not isinstance(key, str):
                    raise UnsupportedValueError(
                        "dict keys must be strings, got %r" % (key,)
                    )
                walk(item)
            return
        if isinstance(node, CtsInstance):
            for item in node.fields.values():
                walk(item)
            return
        raise UnsupportedValueError(
            "value of type %s is not serializable" % type(node).__name__
        )

    walk(value)


def collect_types(value: Any) -> List[TypeInfo]:
    """All distinct CTS types reachable in an object graph, in first-seen
    order.  The envelope uses this to list type information + download
    paths (Figure 3)."""
    seen_objects: Set[int] = set()
    seen_types: Set[str] = set()
    types: List[TypeInfo] = []

    def walk(node: Any) -> None:
        if node is None or isinstance(node, (bool, int, float, str)):
            return
        if id(node) in seen_objects:
            return
        seen_objects.add(id(node))
        if isinstance(node, list):
            for item in node:
                walk(item)
        elif isinstance(node, dict):
            for item in node.values():
                walk(item)
        elif isinstance(node, CtsInstance):
            info = node.type_info
            if info.full_name not in seen_types:
                seen_types.add(info.full_name)
                types.append(info)
            for item in node.fields.values():
                walk(item)
        else:
            raise UnsupportedValueError(
                "value of type %s is not serializable" % type(node).__name__
            )

    walk(value)
    return types


def graph_size(value: Any) -> Dict[str, int]:
    """Counts of nodes by category — handy in tests and benchmarks."""
    counts = {"objects": 0, "primitives": 0, "containers": 0}
    seen: Set[int] = set()

    def walk(node: Any) -> None:
        if node is None or isinstance(node, (bool, int, float, str)):
            counts["primitives"] += 1
            return
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, list):
            counts["containers"] += 1
            for item in node:
                walk(item)
        elif isinstance(node, dict):
            counts["containers"] += 1
            for item in node.values():
                walk(item)
        elif isinstance(node, CtsInstance):
            counts["objects"] += 1
            for item in node.fields.values():
                walk(item)

    walk(value)
    return counts
