"""The hybrid XML message (paper Section 6.2, Figure 3).

"An XML message encompassing the object is sent instead of only the object
itself.  This XML message consists of information about the types of the
object (type names and download paths of their implementations) and includes
the SOAP or binary serialized object."

The envelope is the unit the optimistic transport protocol actually puts on
the wire.  Note what it does *not* contain: no type descriptions and no
code — those travel only on demand.
"""

from __future__ import annotations

import base64
import xml.etree.ElementTree as ET
from typing import Any, List, Optional

from ..cts.types import TypeInfo
from .binary import BinarySerializer
from .errors import WireFormatError
from .graph import collect_types
from .soap import SoapSerializer


class TypeEntry:
    """One ``<Type>`` line of the envelope's type-information section."""

    __slots__ = ("name", "guid_text", "assembly", "download_path")

    def __init__(self, name: str, guid_text: str, assembly: str,
                 download_path: Optional[str]):
        self.name = name
        self.guid_text = guid_text
        self.assembly = assembly
        self.download_path = download_path

    @classmethod
    def for_type(cls, info: TypeInfo) -> "TypeEntry":
        return cls(info.full_name, str(info.guid), info.assembly_name, info.download_path)

    def __repr__(self) -> str:
        return "TypeEntry(%s @ %s)" % (self.name, self.download_path)


class ObjectEnvelope:
    """A parsed (or to-be-sent) hybrid message."""

    def __init__(self, type_entries: List[TypeEntry], encoding: str, payload: bytes):
        self.type_entries = type_entries
        self.encoding = encoding  # "binary" | "soap"
        self.payload = payload

    def type_names(self) -> List[str]:
        return [entry.name for entry in self.type_entries]

    def root_entry(self) -> TypeEntry:
        if not self.type_entries:
            raise WireFormatError("envelope has no type information")
        return self.type_entries[0]

    def __repr__(self) -> str:
        return "ObjectEnvelope(%s, %d types, %d payload bytes)" % (
            self.encoding, len(self.type_entries), len(self.payload),
        )


class EnvelopeCodec:
    """Builds and parses hybrid envelopes.

    ``encoding`` selects the payload serializer: ``"binary"`` (compact) or
    ``"soap"`` (verbose XML) — both available exactly as in the paper.
    """

    def __init__(self, runtime=None, encoding: str = "binary"):
        if encoding not in ("binary", "soap"):
            raise ValueError("encoding must be 'binary' or 'soap'")
        self.encoding = encoding
        self._binary = BinarySerializer(runtime)
        self._soap = SoapSerializer(runtime)

    def _payload_serializer(self, encoding: str):
        return self._binary if encoding == "binary" else self._soap

    # -- build ------------------------------------------------------------

    def wrap(self, value: Any) -> ObjectEnvelope:
        """Object graph → envelope (types section + serialized payload)."""
        entries = [TypeEntry.for_type(t) for t in collect_types(value)]
        payload = self._payload_serializer(self.encoding).serialize(value)
        return ObjectEnvelope(entries, self.encoding, payload)

    def encode(self, value: Any) -> bytes:
        """Object graph → wire bytes of the full XML message."""
        return self.envelope_to_bytes(self.wrap(value))

    def envelope_to_bytes(self, envelope: ObjectEnvelope) -> bytes:
        root = ET.Element("XmlMessage")
        type_info = ET.SubElement(root, "TypeInformation")
        for entry in envelope.type_entries:
            attrs = {
                "name": entry.name,
                "guid": entry.guid_text,
                "assembly": entry.assembly,
            }
            if entry.download_path:
                attrs["path"] = entry.download_path
            ET.SubElement(type_info, "Type", attrs)
        payload = ET.SubElement(root, "Payload", {"encoding": envelope.encoding})
        payload.text = base64.b64encode(envelope.payload).decode("ascii")
        return ET.tostring(root, encoding="utf-8")

    # -- parse ------------------------------------------------------------

    def parse(self, data: bytes) -> ObjectEnvelope:
        """Wire bytes → envelope (payload NOT yet deserialized)."""
        try:
            root = ET.fromstring(data)
        except ET.ParseError as exc:
            raise WireFormatError("invalid envelope XML: %s" % exc)
        if root.tag != "XmlMessage":
            raise WireFormatError("expected <XmlMessage>, found <%s>" % root.tag)
        type_info = root.find("TypeInformation")
        entries: List[TypeEntry] = []
        if type_info is not None:
            for element in type_info.findall("Type"):
                name = element.get("name")
                guid_text = element.get("guid")
                if not name or not guid_text:
                    raise WireFormatError("<Type> missing name/guid")
                entries.append(
                    TypeEntry(name, guid_text, element.get("assembly", "default"),
                              element.get("path"))
                )
        payload_el = root.find("Payload")
        if payload_el is None:
            raise WireFormatError("envelope missing <Payload>")
        encoding = payload_el.get("encoding", "binary")
        if encoding not in ("binary", "soap"):
            raise WireFormatError("unknown payload encoding %r" % encoding)
        try:
            payload = base64.b64decode(payload_el.text or "", validate=True)
        except (ValueError, TypeError):
            raise WireFormatError("payload is not valid base64")
        return ObjectEnvelope(entries, encoding, payload)

    def unwrap(self, envelope: ObjectEnvelope) -> Any:
        """Envelope → object graph.

        Raises :class:`~repro.serialization.errors.UnknownTypeError` when a
        payload type is not locally known — the optimistic protocol's cue.
        """
        return self._payload_serializer(envelope.encoding).deserialize(envelope.payload)

    def decode(self, data: bytes) -> Any:
        """Wire bytes → object graph in one step."""
        return self.unwrap(self.parse(data))
