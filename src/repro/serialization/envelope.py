"""The hybrid XML message (paper Section 6.2, Figure 3).

"An XML message encompassing the object is sent instead of only the object
itself.  This XML message consists of information about the types of the
object (type names and download paths of their implementations) and includes
the SOAP or binary serialized object."

The envelope is the unit the optimistic transport protocol actually puts on
the wire.  Note what it does *not* contain: no type descriptions and no
code — those travel only on demand.

Batch envelopes extend the same message for queue-driven fan-out: one
``<XmlMessage>`` whose type-information section is the *union* of every
batched value's types and whose payload is a single ``RBS2B`` frame (all
values share one intern table).  The ``<Payload>`` element carries
``batch`` (value count), ``roots`` (per-value index into the type
section) and optionally ``origin`` (the peer the events were first
published by, for broker meshes that must not echo events back).

Frame layout (``XME2``, the current wire format)::

    "XME2"  varint(header length)  header XML  payload bytes

The header is the ``<XmlMessage>`` element *without* the payload text —
a self-delimiting prefix carrying every routing decision input (type
entries, batch roots, per-value compaction keys, origin/ack/home
attributes).  Routing, replication, forwarding and log compaction read
only this prefix; the payload after it is the raw serialized bytes,
exposed by :meth:`EnvelopeCodec.parse` as a zero-copy ``memoryview``.
The legacy all-XML frame (``<XmlMessage>`` with a base64 payload text,
wire v1) is still parsed for old logs and old peers.
"""

from __future__ import annotations

import base64
import hashlib
import xml.etree.ElementTree as ET
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from urllib.parse import quote, unquote

from ..cts.identity import Guid
from ..cts.types import TypeInfo
from .binary import BatchDecoder, BinarySerializer, _write_varint
from .errors import WireFormatError
from .graph import collect_types
from .soap import SoapSerializer

#: Field names that designate a value's entity identity, in preference
#: order; a type declaring none of them keys on its first declared field.
_KEY_FIELD_NAMES = ("key", "id", "name", "owner")

#: Magic of the framed envelope: header-prefix + raw payload bytes.
_MAGIC_FRAME = b"XME2"

#: Magic of a multi-frame container: several envelope frames, each
#: varint-length-prefixed, travelling as one network message.
_MAGIC_MULTI = b"XMEB"

try:
    # The splice path must produce the exact bytes ET.tostring would, so
    # attribute values are escaped with ET's own escaper when available.
    from xml.etree.ElementTree import _escape_attrib
except ImportError:  # pragma: no cover - stdlib reshuffle guard
    def _escape_attrib(text: str) -> str:
        text = text.replace("&", "&amp;")
        text = text.replace("<", "&lt;")
        text = text.replace(">", "&gt;")
        text = text.replace('"', "&quot;")
        text = text.replace("\r", "&#13;")
        text = text.replace("\n", "&#10;")
        text = text.replace("\t", "&#09;")
        return text

#: ``<Payload>`` attributes in the exact order :meth:`_render_header`
#: emits them — a spliced-in attribute lands where a re-render would put
#: it, keeping the two paths byte-identical on codec-built frames.
_PAYLOAD_ATTR_ORDER = ("encoding", "batch", "roots", "origin", "ack",
                       "publish_ack", "keys", "home", "trace")

#: Attributes :meth:`EnvelopeCodec.reframe` may stamp by splicing header
#: bytes: single string values with no cross-attribute invariants (keys
#: and batch shape are validated at parse time, so changing them must go
#: through the full parse + re-render path).
_SPLICE_ATTRS = frozenset(("origin", "ack", "publish_ack", "home", "trace"))

Buffer = Union[bytes, bytearray, memoryview]


def _type_digest(info: TypeInfo) -> str:
    """A short stable digest of the type's structural fingerprint.

    Keyed on the *fingerprint* (not the GUID): two structurally identical
    types — the same logical entity type authored twice — compact against
    each other, exactly as they conform to each other.  Memoised on the
    TypeInfo, which is immutable once its identity is derived.
    """
    digest = getattr(info, "_entity_key_digest", None)
    if digest is None:
        digest = hashlib.blake2b(info.fingerprint().encode("utf-8"),
                                 digest_size=8).hexdigest()
        info._entity_key_digest = digest
    return digest


def entity_key(value: Any) -> Optional[str]:
    """The compaction key of one value: ``<type digest>:<key field value>``.

    ``None`` — the value is not keyed and compaction must retain it —
    when the value is not a CTS instance, has no fields, or its key field
    holds a non-scalar.  The key field is the first of
    ``key``/``id``/``name``/``owner`` (case-insensitive) the type
    declares, falling back to the first declared field: latest-state
    semantics need *a* deterministic identity, not a perfect one, and a
    workload with richer identity passes explicit keys to
    :meth:`EnvelopeCodec.wrap_batch`.
    """
    info = getattr(value, "type_info", None)
    fields = getattr(value, "fields", None)
    if info is None or not fields:
        return None
    field_name = None
    lowered = {name.lower(): name for name in reversed(list(fields))}
    for candidate in _KEY_FIELD_NAMES:
        if candidate in lowered:
            field_name = lowered[candidate]
            break
    if field_name is None:
        field_name = next(iter(fields))
    field_value = fields.get(field_name)
    if field_value is not None and not isinstance(field_value,
                                                  (str, int, float, bool)):
        return None
    return "%s:%s=%r" % (_type_digest(info), field_name, field_value)


def _encode_keys(keys: Sequence[Optional[str]]) -> str:
    """Per-value keys -> one XML attribute (``-`` marks an unkeyed value;
    present keys are percent-encoded behind a ``_`` sigil so any key —
    spaces, empty string — survives the space-joined encoding)."""
    return " ".join("-" if key is None else "_" + quote(key, safe="")
                    for key in keys)


def _check_keys_text(text: str, count: int) -> None:
    """Validate the *shape* of a ``keys`` attribute without decoding it.

    Token count and sigils are checked at parse time (so malformed
    headers fail exactly where they always did); the per-key
    percent-decoding — the expensive part — is deferred until something
    actually reads the keys (compaction, mostly).  Routing, forwarding
    and replication never do."""
    tokens = text.split(" ") if text else []
    if len(tokens) != count:
        raise WireFormatError(
            "keys attribute holds %d entries, envelope declares %d values"
            % (len(tokens), count))
    for token in tokens:
        if token != "-" and not token.startswith("_"):
            raise WireFormatError("malformed keys token %r" % token)


def _decode_keys(text: str, count: int) -> Optional[List[Optional[str]]]:
    _check_keys_text(text, count)
    return [None if token == "-" else unquote(token[1:])
            for token in (text.split(" ") if text else [])]


def encode_home(shard_id: str, offsets: Sequence[Optional[int]]) -> str:
    """Build the ``home`` attribute: the shard a batch's values were first
    durably appended at, plus one record offset (or ``-``) per value."""
    return "%s|%s" % (shard_id, ",".join(
        "-" if offset is None else str(offset) for offset in offsets))


def decode_home(text: str) -> Optional[Tuple[str, List[Optional[int]]]]:
    """Parse a ``home`` attribute; ``None`` for malformed input (a record
    whose provenance cannot be read is simply treated as unattributed)."""
    shard_id, separator, tail = text.partition("|")
    if not separator or not shard_id:
        return None
    offsets: List[Optional[int]] = []
    for token in tail.split(","):
        if token == "-":
            offsets.append(None)
        else:
            try:
                offsets.append(int(token))
            except ValueError:
                return None
    return shard_id, offsets


class CodecStats:
    """Observability counters of one :class:`EnvelopeCodec`.

    ``decodes`` counts *value-level* decodes — the expensive operation the
    zero-copy hot path exists to avoid; ``header_parses`` counts
    header-only envelope parses (the cheap operation that replaces them);
    ``header_parse_errors`` counts malformed headers swallowed by the
    lenient readers (:func:`parse_frame_header` and friends);
    ``buffer_pool_hits`` counts encode buffers served from the reuse pool
    instead of freshly allocated; ``header_renders`` counts full XML
    header builds (every ``envelope_to_bytes``); ``header_splices``
    counts single-attribute re-stamps served by patching the header
    bytes in place instead of a parse + re-render (see
    :meth:`EnvelopeCodec.reframe`).
    """

    _COUNTERS = ("decodes", "header_parses", "header_parse_errors",
                 "buffer_pool_hits", "header_renders", "header_splices")

    __slots__ = _COUNTERS

    def __init__(self):
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._COUNTERS}

    def __repr__(self) -> str:
        return "CodecStats(%s)" % ", ".join(
            "%s=%d" % (name, getattr(self, name)) for name in self._COUNTERS)


class _BufferPool:
    """A tiny free-list of reusable byte buffers.

    Encode side: ``envelope_to_bytes``/``reframe`` borrow a ``bytearray``,
    build the frame in it and return an immutable ``bytes`` copy; the
    scratch buffer goes back to the pool so steady-state encoding reuses a
    warm buffer (and its grown capacity) instead of allocating one per
    record.

    Receive side (the socket transport): each link borrows one buffer for
    its lifetime and parses inbound frames out of it as memoryviews, so a
    drain cycle allocates O(links), not O(records) — connection churn
    recycles warm buffers through the same free list.  ``max_free`` sizes
    the list for that usage (one retained buffer per expected concurrent
    link instead of the encode path's small scratch set).
    """

    _MAX_FREE = 4

    __slots__ = ("_free", "_stats", "_max_free")

    def __init__(self, stats: Optional[CodecStats] = None,
                 max_free: Optional[int] = None):
        self._free: List[bytearray] = []
        self._stats = stats
        self._max_free = self._MAX_FREE if max_free is None else max_free

    def acquire(self) -> bytearray:
        if self._free:
            if self._stats is not None:
                self._stats.buffer_pool_hits += 1
            return self._free.pop()
        return bytearray()

    def release(self, buf: bytearray) -> None:
        if len(self._free) < self._max_free:
            try:
                del buf[:]
            except BufferError:
                # A consumer kept a memoryview into the buffer alive: the
                # view holders own it now; pool a fresh one instead.
                return
            self._free.append(buf)


def _read_varint_at(data: Buffer, pos: int) -> Tuple[int, int]:
    """Read one varint out of a buffer; returns ``(value, next position)``."""
    shift = 0
    value = 0
    size = len(data)
    while True:
        if pos >= size:
            raise WireFormatError("truncated frame header length")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise WireFormatError("frame header length varint too long")


def split_frames(data: Buffer) -> List[Buffer]:
    """Split a multi-frame container into its envelope frames.

    A message that is not a container (a plain ``XME2`` or legacy frame)
    passes through unchanged as a one-element list — senders only pay
    the container prefix when they actually coalesce several records
    into one message (see :meth:`EnvelopeCodec.join_frames`).
    """
    if bytes(data[:4]) != _MAGIC_MULTI:
        return [data]
    view = data if isinstance(data, memoryview) else memoryview(data)
    frames: List[Buffer] = []
    pos = len(_MAGIC_MULTI)
    total = len(view)
    while pos < total:
        length, pos = _read_varint_at(view, pos)
        end = pos + length
        if end > total:
            raise WireFormatError("truncated frame container")
        frames.append(view[pos:end])
        pos = end
    if not frames:
        raise WireFormatError("empty frame container")
    return frames


class FrameHeader:
    """The routing-relevant prefix of one encoded envelope.

    Everything a shard needs to route, forward, replicate, compact or
    classify a record — without touching the payload.  ``payload_offset``
    is the byte position the raw payload starts at for ``XME2`` frames,
    or ``None`` for legacy all-XML frames (whose payload is base64 text
    and has no zero-copy representation).
    """

    __slots__ = ("type_entries", "encoding", "batch_roots", "origin", "ack",
                 "publish_ack", "_keys", "_keys_text", "home", "trace",
                 "payload_offset")

    def __init__(self, type_entries, encoding, batch_roots, origin, ack,
                 publish_ack, keys_text, home, payload_offset, trace=None):
        self.type_entries = type_entries
        self.encoding = encoding
        self.batch_roots = batch_roots
        self.origin = origin
        self.ack = ack
        self.publish_ack = publish_ack
        self._keys: Optional[List[Optional[str]]] = None
        self._keys_text = keys_text
        self.home = home
        self.trace = trace
        self.payload_offset = payload_offset

    @property
    def batch_count(self) -> int:
        return len(self.batch_roots) if self.batch_roots is not None else 1

    @property
    def keys(self) -> Optional[List[Optional[str]]]:
        """Per-value record keys, percent-decoded on first access."""
        if self._keys is None and self._keys_text is not None:
            self._keys = _decode_keys(self._keys_text, self.batch_count)
        return self._keys


def _split_frame(data: Buffer) -> Tuple[bytes, Optional[memoryview]]:
    """Split an encoded envelope into (header XML bytes, payload view).

    The payload view is ``None`` for legacy all-XML frames.  Raises
    :class:`WireFormatError` for anything else.
    """
    prefix = bytes(data[:4]) if isinstance(data, memoryview) else bytes(data[:4])
    if prefix == _MAGIC_FRAME:
        view = data if isinstance(data, memoryview) else memoryview(data)
        header_len, pos = _read_varint_at(view, len(_MAGIC_FRAME))
        end = pos + header_len
        if end > len(view):
            raise WireFormatError("truncated frame header")
        return bytes(view[pos:end]), view[end:]
    if prefix[:1] == b"<":
        return bytes(data), None
    raise WireFormatError("not an envelope frame")


def _parse_header_strict(data: Buffer) -> FrameHeader:
    header_bytes, payload = _split_frame(data)
    try:
        root = ET.fromstring(header_bytes)
    except ET.ParseError as exc:
        raise WireFormatError("invalid envelope header XML: %s" % exc)
    if root.tag != "XmlMessage":
        raise WireFormatError("expected <XmlMessage>, found <%s>" % root.tag)
    type_info = root.find("TypeInformation")
    entries: List[TypeEntry] = []
    if type_info is not None:
        for element in type_info.findall("Type"):
            name = element.get("name")
            guid_text = element.get("guid")
            if not name or not guid_text:
                raise WireFormatError("<Type> missing name/guid")
            entries.append(
                TypeEntry(name, guid_text, element.get("assembly", "default"),
                          element.get("path"))
            )
    payload_el = root.find("Payload")
    if payload_el is None:
        raise WireFormatError("envelope missing <Payload>")
    encoding = payload_el.get("encoding", "binary")
    if encoding not in ("binary", "soap"):
        raise WireFormatError("unknown payload encoding %r" % encoding)
    batch_roots: Optional[List[int]] = None
    batch_attr = payload_el.get("batch")
    if batch_attr is not None:
        try:
            count = int(batch_attr)
            batch_roots = [int(part) for part in
                           (payload_el.get("roots") or "").split()]
        except ValueError:
            raise WireFormatError("malformed batch attributes")
        if count != len(batch_roots):
            raise WireFormatError(
                "batch count %d does not match %d roots"
                % (count, len(batch_roots))
            )
        for index in batch_roots:
            if not 0 <= index < len(entries):
                raise WireFormatError("batch root %d out of range" % index)
    keys_text = payload_el.get("keys")
    if keys_text is not None:
        _check_keys_text(keys_text,
                         len(batch_roots) if batch_roots is not None else 1)
    payload_offset = None
    if payload is not None:
        payload_offset = len(data) - len(payload)
    return FrameHeader(entries, encoding, batch_roots,
                       payload_el.get("origin"), payload_el.get("ack"),
                       payload_el.get("publish_ack"), keys_text,
                       payload_el.get("home"), payload_offset,
                       trace=payload_el.get("trace"))


def parse_frame_header(data: Buffer,
                       stats: Optional[CodecStats] = None) -> Optional[FrameHeader]:
    """Read just the header prefix of one encoded envelope.

    The uniform lenient entry point for mid-pipeline header reads: *any*
    malformed input — truncated frame, legacy XML that does not parse,
    corrupt attributes — returns ``None`` (counting one
    ``header_parse_errors`` on ``stats``) and never raises.  Both the
    ``XME2`` frame and the legacy all-XML envelope are accepted.
    """
    try:
        header = _parse_header_strict(data)
    except (WireFormatError, ValueError, TypeError):
        if stats is not None:
            stats.header_parse_errors += 1
        return None
    if stats is not None:
        stats.header_parses += 1
    return header


def envelope_record_keys(data: Buffer,
                         stats: Optional[CodecStats] = None,
                         ) -> Optional[List[Optional[str]]]:
    """The per-value compaction keys of one encoded envelope, or ``None``
    when the message carries no ``keys`` attribute (records written
    before key extraction existed, or batches of unkeyed values).

    Reads only the header prefix — no payload decode, no runtime, no type
    knowledge — so offline tools (``repro log compact``) can key-compact
    a log they cannot materialize.  Unparseable data is reported as
    unkeyed rather than raised: compaction must retain what it cannot
    read.
    """
    header = parse_frame_header(data, stats=stats)
    if header is None:
        return None
    return header.keys


def envelope_home(data: Buffer,
                  stats: Optional[CodecStats] = None,
                  ) -> Optional[Tuple[str, List[Optional[int]]]]:
    """The home-record provenance of one encoded envelope: the shard id
    the content was first durably appended at and the per-value record
    offsets there, or ``None`` when the message carries no ``home``
    attribute (a record the storing shard itself is the home of).

    Like :func:`envelope_record_keys`, this reads only the header prefix
    — no payload decode, no runtime — so a shard can classify its stored
    records (own vs forwarded-in) without materializing them.
    """
    header = parse_frame_header(data, stats=stats)
    if header is None or header.home is None:
        return None
    return decode_home(header.home)


class TypeEntry:
    """One ``<Type>`` line of the envelope's type-information section."""

    __slots__ = ("name", "guid_text", "assembly", "download_path")

    def __init__(self, name: str, guid_text: str, assembly: str,
                 download_path: Optional[str]):
        self.name = name
        self.guid_text = guid_text
        self.assembly = assembly
        self.download_path = download_path

    @classmethod
    def for_type(cls, info: TypeInfo) -> "TypeEntry":
        return cls(info.full_name, str(info.guid), info.assembly_name, info.download_path)

    def __repr__(self) -> str:
        return "TypeEntry(%s @ %s)" % (self.name, self.download_path)


class ObjectEnvelope:
    """A parsed (or to-be-sent) hybrid message.

    ``payload`` holds the serialized value bytes — a ``memoryview`` into
    the received frame when parsed from an ``XME2`` message (zero-copy),
    plain ``bytes`` otherwise.  ``batch_roots`` is ``None`` for a classic
    single-object envelope; for a batch it lists, per batched value, the
    index of that value's root type in :attr:`type_entries`.  ``origin``
    optionally names the peer the content was first published by (meshes
    forward on its behalf).  ``ack`` optionally carries an opaque
    acknowledgement token: a receiver that processes the message echoes
    the token back to the sender, which uses it to advance durable replay
    cursors.  ``publish_ack`` is the publisher-side counterpart: a broker
    that durably appends the batch echoes the token back to the
    publisher.  ``keys`` optionally carries, per batched value, its
    compaction key (see :func:`entity_key`) — stored with the record so
    key-aware log compaction can decide latest-state without
    materializing (or even knowing) the types.  ``home`` optionally
    identifies, per batched value, the log record the value was first
    durably appended in — ``"<shard id>|o1,o2,..."`` with one home-shard
    offset (or ``-``) per value — so a mesh shard storing a forwarded-in
    copy can later recognise the same record arriving again by
    replication or backlog fetch and not deliver it twice.  ``trace``
    optionally carries the record's trace id (stamped once at origin
    publish, see :mod:`repro.obs.tracing`): it travels inside the frame
    bytes, so forwarding/replicating/replaying a record propagates the
    id with zero extra work on the zero-copy path.
    """

    def __init__(self, type_entries: List[TypeEntry], encoding: str,
                 payload: Buffer,
                 batch_roots: Optional[List[int]] = None,
                 origin: Optional[str] = None,
                 ack: Optional[str] = None,
                 publish_ack: Optional[str] = None,
                 keys: Optional[List[Optional[str]]] = None,
                 home: Optional[str] = None,
                 keys_text: Optional[str] = None,
                 trace: Optional[str] = None):
        self.type_entries = type_entries
        self.encoding = encoding  # "binary" | "soap"
        self.payload = payload
        self.batch_roots = batch_roots
        self.origin = origin
        self.ack = ack
        self.publish_ack = publish_ack
        self._keys = keys
        self._keys_text = keys_text if keys is None else None
        self.home = home
        self.trace = trace

    @property
    def is_batch(self) -> bool:
        return self.batch_roots is not None

    @property
    def batch_count(self) -> int:
        return len(self.batch_roots) if self.batch_roots is not None else 1

    @property
    def keys(self) -> Optional[List[Optional[str]]]:
        """Per-value record keys, percent-decoded on first access (a
        parsed envelope keeps the raw attribute text until then)."""
        if self._keys is None and self._keys_text is not None:
            self._keys = _decode_keys(self._keys_text, self.batch_count)
        return self._keys

    @keys.setter
    def keys(self, value: Optional[List[Optional[str]]]) -> None:
        self._keys = value
        self._keys_text = None

    def keys_attr(self) -> Optional[str]:
        """The ``keys`` attribute text to render: the raw parse text
        verbatim when nothing rewrote the keys (no decode + re-encode
        round trip on the re-frame hot path), freshly encoded otherwise."""
        if self._keys_text is not None:
            return self._keys_text
        if self._keys is not None:
            return _encode_keys(self._keys)
        return None

    def payload_bytes(self) -> bytes:
        """The payload as immutable ``bytes`` (copying a memoryview)."""
        payload = self.payload
        if isinstance(payload, bytes):
            return payload
        return bytes(payload)

    def type_names(self) -> List[str]:
        return [entry.name for entry in self.type_entries]

    def root_entry(self) -> TypeEntry:
        if not self.type_entries:
            raise WireFormatError("envelope has no type information")
        return self.type_entries[0]

    def batch_root_entry(self, index: int) -> TypeEntry:
        """The root type entry of the ``index``-th batched value."""
        if self.batch_roots is None:
            if index != 0:
                raise WireFormatError("not a batch envelope")
            return self.root_entry()
        try:
            return self.type_entries[self.batch_roots[index]]
        except IndexError:
            raise WireFormatError("batch root %d out of range" % index)

    def __repr__(self) -> str:
        extra = ", batch=%d" % self.batch_count if self.is_batch else ""
        return "ObjectEnvelope(%s, %d types, %d payload bytes%s)" % (
            self.encoding, len(self.type_entries), len(self.payload), extra,
        )


class LazyBatch:
    """A batch admitted by header only; values decode on first access.

    Exposes count, per-value root types (resolved against the local
    registry from the header's type entries) and per-value compaction
    keys without touching the payload.  :meth:`value` decodes the batch
    prefix incrementally — per value, not whole-batch — so a record that
    is only logged, replicated or forwarded crosses the shard with zero
    value-level decodes, and a record with one matching local subscriber
    decodes exactly the values dispatched to it (plus their prefix, which
    the shared intern table requires).
    """

    _UNRESOLVED = object()

    __slots__ = ("envelope", "_codec", "_registry", "_types", "_decoder",
                 "_counted")

    def __init__(self, codec: "EnvelopeCodec", envelope: ObjectEnvelope,
                 registry=None):
        self.envelope = envelope
        self._codec = codec
        self._registry = registry
        self._types: List[Any] = [self._UNRESOLVED] * envelope.batch_count
        self._decoder: Optional[BatchDecoder] = None
        self._counted = 0

    def __len__(self) -> int:
        return self.envelope.batch_count

    def _resolve(self, entry: TypeEntry) -> Optional[TypeInfo]:
        if self._registry is None:
            return None
        memo = self._codec._resolve_memo
        info = memo.get(entry.guid_text)
        if info is not None:
            return info
        try:
            guid = Guid.parse(entry.guid_text)
        except ValueError:
            return None
        info = self._registry.get_by_guid(guid)
        if info is None:
            candidate = self._registry.get(entry.name)
            if candidate is not None and candidate.guid == guid:
                info = candidate
        if info is not None:
            memo[entry.guid_text] = info
        return info

    def root_type(self, index: int) -> Optional[TypeInfo]:
        """The locally-resolved root type of value ``index`` (or ``None``)."""
        cached = self._types[index]
        if cached is not self._UNRESOLVED:
            return cached
        info = self._resolve(self.envelope.batch_root_entry(index))
        self._types[index] = info
        return info

    def key(self, index: int) -> Optional[str]:
        keys = self.envelope.keys
        return keys[index] if keys is not None else None

    def types_known(self) -> bool:
        """True when *every* header type entry resolves locally.

        The type section is the union of all reachable types, so full
        resolvability guarantees :meth:`value` cannot hit
        :class:`~repro.serialization.errors.UnknownTypeError` — the
        admission gate for the lazy path (anything else falls back to the
        eager, code-fetching path).
        """
        if self.envelope.encoding != "binary":
            return False
        entries = self.envelope.type_entries
        if not entries:
            return False
        return all(self._resolve(entry) is not None for entry in entries)

    def value(self, index: int) -> Any:
        """Decode (and cache) value ``index`` — the one paid decode."""
        decoder = self._decoder
        if decoder is None:
            decoder = BatchDecoder(self._codec._binary, self.envelope.payload)
            if len(decoder) != len(self):
                raise WireFormatError(
                    "batch payload holds %d values, envelope declares %d"
                    % (len(decoder), len(self)))
            self._decoder = decoder
        value = decoder.value(index)
        decoded = decoder.decoded_count
        if decoded > self._counted:
            self._codec.stats.decodes += decoded - self._counted
            self._counted = decoded
        return value

    def values(self) -> List[Any]:
        return [self.value(index) for index in range(len(self))]

    def __repr__(self) -> str:
        return "LazyBatch(%d values, %d decoded)" % (
            len(self), self._decoder.decoded_count if self._decoder else 0)


_UNSET = object()


class EnvelopeCodec:
    """Builds and parses hybrid envelopes.

    ``encoding`` selects the payload serializer: ``"binary"`` (compact) or
    ``"soap"`` (verbose XML) — both available exactly as in the paper.
    Encoded frames use the ``XME2`` layout (header prefix + raw payload);
    the legacy all-XML frame remains parseable.  :attr:`stats` counts
    value decodes, header parses and buffer-pool reuse.
    """

    def __init__(self, runtime=None, encoding: str = "binary"):
        if encoding not in ("binary", "soap"):
            raise ValueError("encoding must be 'binary' or 'soap'")
        self.encoding = encoding
        self.stats = CodecStats()
        # Single-attribute re-stamps (ack/home/trace/origin) patch the
        # header bytes in place instead of re-rendering the XML; False
        # forces the full parse + re-render path (benchmark baseline).
        self.splice_enabled = True
        self._pool = _BufferPool(self.stats)
        self._binary = BinarySerializer(runtime)
        self._soap = SoapSerializer(runtime)
        # guid text -> locally resolved TypeInfo.  Positive entries only:
        # the registry is add-only, so a hit can never go stale, while a
        # miss may succeed later (after a code fetch) and must be retried.
        self._resolve_memo: Dict[str, TypeInfo] = {}

    def _payload_serializer(self, encoding: str):
        return self._binary if encoding == "binary" else self._soap

    @property
    def registry(self):
        runtime = self._binary.runtime
        return runtime.registry if runtime is not None else None

    # -- build ------------------------------------------------------------

    def wrap(self, value: Any) -> ObjectEnvelope:
        """Object graph → envelope (types section + serialized payload).

        The value's compaction key rides along (``keys`` attribute) so a
        broker can log and compact the frame without materializing it.
        """
        entries = [TypeEntry.for_type(t) for t in collect_types(value)]
        payload = self._payload_serializer(self.encoding).serialize(value)
        key = entity_key(value)
        return ObjectEnvelope(entries, self.encoding, payload,
                              keys=None if key is None else [key])

    def encode(self, value: Any) -> bytes:
        """Object graph → wire bytes of the full framed message."""
        return self.envelope_to_bytes(self.wrap(value))

    def wrap_batch(self, values: List[Any],
                   origin: Optional[str] = None,
                   ack: Optional[str] = None,
                   publish_ack: Optional[str] = None,
                   keys: Optional[List[Optional[str]]] = None) -> ObjectEnvelope:
        """Many object graphs → one batch envelope.

        The type section is the union of every value's reachable types
        (first-seen order, deduplicated by identity) and the payload is a
        single ``RBS2B`` frame — one header and one intern table for the
        whole batch.  Batches always use the binary payload encoding.
        Per-value compaction keys are extracted automatically (see
        :func:`entity_key`) unless the caller passes explicit ``keys``;
        an all-``None`` key list is omitted from the wire entirely.
        """
        if not values:
            raise ValueError("cannot build an empty batch envelope")
        entries: List[TypeEntry] = []
        index_of = {}
        roots: List[int] = []
        for value in values:
            types = collect_types(value)
            if not types:
                raise WireFormatError(
                    "batched value %r has no root CTS type" % (value,)
                )
            for position, info in enumerate(types):
                key = (info.full_name, str(info.guid))
                if key not in index_of:
                    index_of[key] = len(entries)
                    entries.append(TypeEntry.for_type(info))
                if position == 0:
                    roots.append(index_of[key])
        if keys is None:
            keys = [entity_key(value) for value in values]
        elif len(keys) != len(values):
            raise ValueError("got %d keys for %d values"
                             % (len(keys), len(values)))
        if all(key is None for key in keys):
            keys = None
        payload = self._binary.serialize_batch(values)
        return ObjectEnvelope(entries, "binary", payload,
                              batch_roots=roots, origin=origin, ack=ack,
                              publish_ack=publish_ack, keys=keys)

    def encode_batch(self, values: List[Any],
                     origin: Optional[str] = None,
                     ack: Optional[str] = None,
                     publish_ack: Optional[str] = None,
                     keys: Optional[List[Optional[str]]] = None) -> bytes:
        """Many object graphs → wire bytes of one batch message."""
        return self.envelope_to_bytes(
            self.wrap_batch(values, origin=origin, ack=ack,
                            publish_ack=publish_ack, keys=keys))

    def _render_header(self, envelope: ObjectEnvelope) -> bytes:
        root = ET.Element("XmlMessage")
        type_info = ET.SubElement(root, "TypeInformation")
        for entry in envelope.type_entries:
            attrs = {
                "name": entry.name,
                "guid": entry.guid_text,
                "assembly": entry.assembly,
            }
            if entry.download_path:
                attrs["path"] = entry.download_path
            ET.SubElement(type_info, "Type", attrs)
        payload_attrs = {"encoding": envelope.encoding}
        if envelope.is_batch:
            payload_attrs["batch"] = str(envelope.batch_count)
            payload_attrs["roots"] = " ".join(
                str(index) for index in envelope.batch_roots
            )
        if envelope.origin is not None:
            payload_attrs["origin"] = envelope.origin
        if envelope.ack is not None:
            payload_attrs["ack"] = envelope.ack
        if envelope.publish_ack is not None:
            payload_attrs["publish_ack"] = envelope.publish_ack
        keys_attr = envelope.keys_attr()
        if keys_attr is not None:
            payload_attrs["keys"] = keys_attr
        if envelope.home is not None:
            payload_attrs["home"] = envelope.home
        if envelope.trace is not None:
            payload_attrs["trace"] = envelope.trace
        ET.SubElement(root, "Payload", payload_attrs)
        self.stats.header_renders += 1
        return ET.tostring(root, encoding="utf-8")

    def envelope_to_bytes(self, envelope: ObjectEnvelope) -> bytes:
        """Envelope → ``XME2`` frame bytes.

        The payload bytes (possibly a zero-copy ``memoryview`` from a
        parsed frame) are appended verbatim after the rendered header —
        re-framing a parsed envelope never touches, let alone decodes,
        the payload.  The scratch buffer comes from the codec's pool; the
        returned frame is an immutable ``bytes`` snapshot, safe to hand
        across any flush boundary.
        """
        header = self._render_header(envelope)
        buf = self._pool.acquire()
        try:
            buf += _MAGIC_FRAME
            _write_varint(buf, len(header))
            buf += header
            buf += envelope.payload
            return bytes(buf)
        finally:
            self._pool.release(buf)

    def join_frames(self, frames: Sequence[Buffer]) -> bytes:
        """Coalesce several envelope frames into one network message.

        A single frame travels as-is (byte-identical to sending it
        alone); two or more become an ``XMEB`` container of
        varint-length-prefixed frames that :func:`split_frames` undoes.
        Frames are copied, never decoded — this is how a flush keeps the
        one-message-per-destination economy without touching payloads.
        """
        if not frames:
            raise ValueError("join_frames needs at least one frame")
        if len(frames) == 1:
            frame = frames[0]
            return frame if isinstance(frame, bytes) else bytes(frame)
        buf = self._pool.acquire()
        try:
            buf += _MAGIC_MULTI
            for frame in frames:
                _write_varint(buf, len(frame))
                buf += frame
            return bytes(buf)
        finally:
            self._pool.release(buf)

    def envelope_to_legacy_bytes(self, envelope: ObjectEnvelope) -> bytes:
        """Envelope → legacy all-XML frame (wire v1: base64 payload text).

        Kept for compatibility fixtures and old-peer interop tests; the
        live pipeline always emits :meth:`envelope_to_bytes`.
        """
        root = ET.fromstring(self._render_header(envelope))
        payload_el = root.find("Payload")
        payload_el.text = base64.b64encode(
            envelope.payload_bytes()).decode("ascii")
        return ET.tostring(root, encoding="utf-8")

    def reframe(self, data: Buffer,
                origin: Any = _UNSET,
                ack: Any = _UNSET,
                publish_ack: Any = _UNSET,
                home: Any = _UNSET,
                keys: Any = _UNSET,
                trace: Any = _UNSET) -> bytes:
        """Re-render a frame's header with changed attributes.

        The payload bytes are reused verbatim (zero value-level decodes);
        only the header XML is rebuilt, in a pooled buffer.  This is how
        the pipeline stamps ``origin`` at admission, ``home`` on
        forwarded copies and ``ack`` tokens on per-subscriber deliveries
        without re-encoding the values.

        When exactly one string-valued attribute changes (the hot
        per-subscriber ack / per-forward home stamp), the header bytes
        are spliced in place — no XML parse, no re-render — producing
        output byte-identical to the full path on codec-built frames.
        Anything else (several attributes, removals, ``keys``, legacy
        frames, hand-built headers) falls back to parse + re-render.
        """
        changes = {}
        if origin is not _UNSET:
            changes["origin"] = origin
        if ack is not _UNSET:
            changes["ack"] = ack
        if publish_ack is not _UNSET:
            changes["publish_ack"] = publish_ack
        if home is not _UNSET:
            changes["home"] = home
        if keys is not _UNSET:
            changes["keys"] = keys
        if trace is not _UNSET:
            changes["trace"] = trace
        if self.splice_enabled and len(changes) == 1:
            (name, value), = changes.items()
            if name in _SPLICE_ATTRS and isinstance(value, str):
                patched = self._splice_attr(data, name, value)
                if patched is not None:
                    return patched
        envelope = self.parse(data)
        for name, value in changes.items():
            setattr(envelope, name, value)
        return self.envelope_to_bytes(envelope)

    def _splice_attr(self, data: Buffer, name: str,
                     value: str) -> Optional[bytes]:
        """Stamp one ``<Payload>`` attribute by patching header bytes.

        Replaces the attribute's value bytes when it is already present,
        or inserts the whole ``name="value"`` pair at its canonical
        render position otherwise.  ET escapes ``<``/``>``/``"`` inside
        attribute values, so the markup needles below can only match at
        genuine element/attribute boundaries.  Returns ``None`` when the
        frame's shape defeats the splice (not ``XME2``, no ``<Payload``
        element, unterminated attribute) — the caller falls back to the
        full parse + re-render path.
        """
        view = memoryview(data)
        if bytes(view[:4]) != _MAGIC_FRAME:
            return None
        try:
            header_len, pos = _read_varint_at(view, len(_MAGIC_FRAME))
        except WireFormatError:
            return None
        end = pos + header_len
        if end > len(view):
            return None
        header = bytes(view[pos:end])
        elem = header.find(b"<Payload ")
        if elem < 0:
            return None
        close = header.find(b"/>", elem)
        if close < 0:
            return None
        encoded = _escape_attrib(value).encode("utf-8")
        needle = b' %s="' % name.encode("ascii")
        at = header.find(needle, elem, close)
        if at >= 0:
            start = at + len(needle)
            stop = header.find(b'"', start, close)
            if stop < 0:
                return None
            insert = encoded
        else:
            rank = _PAYLOAD_ATTR_ORDER.index(name)
            for later in _PAYLOAD_ATTR_ORDER[rank + 1:]:
                later_at = header.find(b' %s="' % later.encode("ascii"),
                                       elem, close)
                if later_at >= 0:
                    start = stop = later_at
                    break
            else:
                # ET renders a childless element as `<Payload ... />`:
                # slot the new attribute in before that trailing space.
                start = stop = close - 1 if header[close - 1:close] == b" " \
                    else close
            insert = b' %s="%s"' % (name.encode("ascii"), encoded)
        buf = self._pool.acquire()
        try:
            buf += _MAGIC_FRAME
            _write_varint(buf, header_len - (stop - start) + len(insert))
            buf += header[:start]
            buf += insert
            buf += header[stop:]
            buf += view[end:]
            self.stats.header_splices += 1
            return bytes(buf)
        finally:
            self._pool.release(buf)

    # -- parse ------------------------------------------------------------

    def parse(self, data: Buffer) -> ObjectEnvelope:
        """Wire bytes → envelope (payload NOT yet deserialized).

        For ``XME2`` frames this is a header-only parse: the returned
        envelope's payload is a ``memoryview`` into ``data`` — no copy,
        no base64, no value decode.  Legacy all-XML frames are still
        accepted (their base64 payload text must be decoded to bytes).
        """
        header_bytes, payload = _split_frame(data)
        try:
            root = ET.fromstring(header_bytes)
        except ET.ParseError as exc:
            raise WireFormatError("invalid envelope XML: %s" % exc)
        envelope = self._envelope_from_root(root, payload)
        self.stats.header_parses += 1
        return envelope

    def _envelope_from_root(self, root: ET.Element,
                            payload: Optional[Buffer]) -> ObjectEnvelope:
        if root.tag != "XmlMessage":
            raise WireFormatError("expected <XmlMessage>, found <%s>" % root.tag)
        type_info = root.find("TypeInformation")
        entries: List[TypeEntry] = []
        if type_info is not None:
            for element in type_info.findall("Type"):
                name = element.get("name")
                guid_text = element.get("guid")
                if not name or not guid_text:
                    raise WireFormatError("<Type> missing name/guid")
                entries.append(
                    TypeEntry(name, guid_text, element.get("assembly", "default"),
                              element.get("path"))
                )
        payload_el = root.find("Payload")
        if payload_el is None:
            raise WireFormatError("envelope missing <Payload>")
        encoding = payload_el.get("encoding", "binary")
        if encoding not in ("binary", "soap"):
            raise WireFormatError("unknown payload encoding %r" % encoding)
        if payload is None:
            try:
                payload = base64.b64decode(payload_el.text or "", validate=True)
            except (ValueError, TypeError):
                raise WireFormatError("payload is not valid base64")
        batch_roots: Optional[List[int]] = None
        batch_attr = payload_el.get("batch")
        if batch_attr is not None:
            try:
                count = int(batch_attr)
                batch_roots = [int(part) for part in
                               (payload_el.get("roots") or "").split()]
            except ValueError:
                raise WireFormatError("malformed batch attributes")
            if count != len(batch_roots):
                raise WireFormatError(
                    "batch count %d does not match %d roots"
                    % (count, len(batch_roots))
                )
            for index in batch_roots:
                if not 0 <= index < len(entries):
                    raise WireFormatError("batch root %d out of range" % index)
        keys_text = payload_el.get("keys")
        if keys_text is not None:
            _check_keys_text(keys_text,
                             len(batch_roots) if batch_roots is not None else 1)
        return ObjectEnvelope(entries, encoding, payload,
                              batch_roots=batch_roots,
                              origin=payload_el.get("origin"),
                              ack=payload_el.get("ack"),
                              publish_ack=payload_el.get("publish_ack"),
                              keys_text=keys_text,
                              home=payload_el.get("home"),
                              trace=payload_el.get("trace"))

    def lazy_batch(self, envelope: ObjectEnvelope) -> LazyBatch:
        """Wrap a parsed envelope for header-driven, decode-on-dispatch use."""
        return LazyBatch(self, envelope, self.registry)

    def unwrap(self, envelope: ObjectEnvelope) -> Any:
        """Envelope → object graph.

        Raises :class:`~repro.serialization.errors.UnknownTypeError` when a
        payload type is not locally known — the optimistic protocol's cue.
        """
        if envelope.is_batch:
            raise WireFormatError("batch envelope: use unwrap_batch")
        value = self._payload_serializer(envelope.encoding).deserialize(
            envelope.payload_bytes())
        self.stats.decodes += 1
        return value

    def unwrap_batch(self, envelope: ObjectEnvelope) -> List[Any]:
        """Batch envelope → list of object graphs (single → one-element).

        Raises :class:`~repro.serialization.errors.UnknownTypeError` when a
        payload type is not locally known, exactly like :meth:`unwrap`.
        """
        if not envelope.is_batch:
            return [self.unwrap(envelope)]
        values = self._binary.deserialize_batch(envelope.payload_bytes())
        if len(values) != envelope.batch_count:
            raise WireFormatError(
                "batch payload holds %d values, envelope declares %d"
                % (len(values), envelope.batch_count)
            )
        self.stats.decodes += len(values)
        return values

    def decode(self, data: Buffer) -> Any:
        """Wire bytes → object graph in one step."""
        return self.unwrap(self.parse(data))
