"""The hybrid XML message (paper Section 6.2, Figure 3).

"An XML message encompassing the object is sent instead of only the object
itself.  This XML message consists of information about the types of the
object (type names and download paths of their implementations) and includes
the SOAP or binary serialized object."

The envelope is the unit the optimistic transport protocol actually puts on
the wire.  Note what it does *not* contain: no type descriptions and no
code — those travel only on demand.

Batch envelopes extend the same message for queue-driven fan-out: one
``<XmlMessage>`` whose type-information section is the *union* of every
batched value's types and whose payload is a single ``RBS2B`` frame (all
values share one intern table).  The ``<Payload>`` element carries
``batch`` (value count), ``roots`` (per-value index into the type
section) and optionally ``origin`` (the peer the events were first
published by, for broker meshes that must not echo events back).
"""

from __future__ import annotations

import base64
import hashlib
import xml.etree.ElementTree as ET
from typing import Any, List, Optional, Sequence, Tuple
from urllib.parse import quote, unquote

from ..cts.types import TypeInfo
from .binary import BinarySerializer
from .errors import WireFormatError
from .graph import collect_types
from .soap import SoapSerializer

#: Field names that designate a value's entity identity, in preference
#: order; a type declaring none of them keys on its first declared field.
_KEY_FIELD_NAMES = ("key", "id", "name", "owner")


def _type_digest(info: TypeInfo) -> str:
    """A short stable digest of the type's structural fingerprint.

    Keyed on the *fingerprint* (not the GUID): two structurally identical
    types — the same logical entity type authored twice — compact against
    each other, exactly as they conform to each other.  Memoised on the
    TypeInfo, which is immutable once its identity is derived.
    """
    digest = getattr(info, "_entity_key_digest", None)
    if digest is None:
        digest = hashlib.blake2b(info.fingerprint().encode("utf-8"),
                                 digest_size=8).hexdigest()
        info._entity_key_digest = digest
    return digest


def entity_key(value: Any) -> Optional[str]:
    """The compaction key of one value: ``<type digest>:<key field value>``.

    ``None`` — the value is not keyed and compaction must retain it —
    when the value is not a CTS instance, has no fields, or its key field
    holds a non-scalar.  The key field is the first of
    ``key``/``id``/``name``/``owner`` (case-insensitive) the type
    declares, falling back to the first declared field: latest-state
    semantics need *a* deterministic identity, not a perfect one, and a
    workload with richer identity passes explicit keys to
    :meth:`EnvelopeCodec.wrap_batch`.
    """
    info = getattr(value, "type_info", None)
    fields = getattr(value, "fields", None)
    if info is None or not fields:
        return None
    field_name = None
    lowered = {name.lower(): name for name in reversed(list(fields))}
    for candidate in _KEY_FIELD_NAMES:
        if candidate in lowered:
            field_name = lowered[candidate]
            break
    if field_name is None:
        field_name = next(iter(fields))
    field_value = fields.get(field_name)
    if field_value is not None and not isinstance(field_value,
                                                  (str, int, float, bool)):
        return None
    return "%s:%s=%r" % (_type_digest(info), field_name, field_value)


def _encode_keys(keys: Sequence[Optional[str]]) -> str:
    """Per-value keys -> one XML attribute (``-`` marks an unkeyed value;
    present keys are percent-encoded behind a ``_`` sigil so any key —
    spaces, empty string — survives the space-joined encoding)."""
    return " ".join("-" if key is None else "_" + quote(key, safe="")
                    for key in keys)


def _decode_keys(text: str, count: int) -> Optional[List[Optional[str]]]:
    tokens = text.split(" ") if text else []
    if len(tokens) != count:
        raise WireFormatError(
            "keys attribute holds %d entries, envelope declares %d values"
            % (len(tokens), count))
    keys: List[Optional[str]] = []
    for token in tokens:
        if token == "-":
            keys.append(None)
        elif token.startswith("_"):
            keys.append(unquote(token[1:]))
        else:
            raise WireFormatError("malformed keys token %r" % token)
    return keys


def envelope_record_keys(data: bytes) -> Optional[List[Optional[str]]]:
    """The per-value compaction keys of one encoded envelope, or ``None``
    when the message carries no ``keys`` attribute (records written
    before key extraction existed, or batches of unkeyed values).

    Reads only the ``<Payload>`` attributes — no payload decode, no
    runtime, no type knowledge — so offline tools (``repro log compact``)
    can key-compact a log they cannot materialize.  Unparseable data is
    reported as unkeyed rather than raised: compaction must retain what
    it cannot read.
    """
    try:
        root = ET.fromstring(data)
    except ET.ParseError:
        return None
    payload_el = root.find("Payload")
    if payload_el is None:
        return None
    keys_attr = payload_el.get("keys")
    if keys_attr is None:
        return None
    batch_attr = payload_el.get("batch")
    try:
        count = int(batch_attr) if batch_attr is not None else 1
        return _decode_keys(keys_attr, count)
    except (ValueError, WireFormatError):
        return None


def encode_home(shard_id: str, offsets: Sequence[Optional[int]]) -> str:
    """Build the ``home`` attribute: the shard a batch's values were first
    durably appended at, plus one record offset (or ``-``) per value."""
    return "%s|%s" % (shard_id, ",".join(
        "-" if offset is None else str(offset) for offset in offsets))


def decode_home(text: str) -> Optional[Tuple[str, List[Optional[int]]]]:
    """Parse a ``home`` attribute; ``None`` for malformed input (a record
    whose provenance cannot be read is simply treated as unattributed)."""
    shard_id, separator, tail = text.partition("|")
    if not separator or not shard_id:
        return None
    offsets: List[Optional[int]] = []
    for token in tail.split(","):
        if token == "-":
            offsets.append(None)
        else:
            try:
                offsets.append(int(token))
            except ValueError:
                return None
    return shard_id, offsets


def envelope_home(data: bytes) -> Optional[Tuple[str, List[Optional[int]]]]:
    """The home-record provenance of one encoded envelope: the shard id
    the content was first durably appended at and the per-value record
    offsets there, or ``None`` when the message carries no ``home``
    attribute (a record the storing shard itself is the home of).

    Like :func:`envelope_record_keys`, this reads only the ``<Payload>``
    attributes — no payload decode, no runtime — so a shard can classify
    its stored records (own vs forwarded-in) without materializing them.
    """
    try:
        root = ET.fromstring(data)
    except ET.ParseError:
        return None
    payload_el = root.find("Payload")
    if payload_el is None:
        return None
    home_attr = payload_el.get("home")
    if home_attr is None:
        return None
    return decode_home(home_attr)


class TypeEntry:
    """One ``<Type>`` line of the envelope's type-information section."""

    __slots__ = ("name", "guid_text", "assembly", "download_path")

    def __init__(self, name: str, guid_text: str, assembly: str,
                 download_path: Optional[str]):
        self.name = name
        self.guid_text = guid_text
        self.assembly = assembly
        self.download_path = download_path

    @classmethod
    def for_type(cls, info: TypeInfo) -> "TypeEntry":
        return cls(info.full_name, str(info.guid), info.assembly_name, info.download_path)

    def __repr__(self) -> str:
        return "TypeEntry(%s @ %s)" % (self.name, self.download_path)


class ObjectEnvelope:
    """A parsed (or to-be-sent) hybrid message.

    ``batch_roots`` is ``None`` for a classic single-object envelope; for
    a batch it lists, per batched value, the index of that value's root
    type in :attr:`type_entries`.  ``origin`` optionally names the peer
    the content was first published by (meshes forward on its behalf).
    ``ack`` optionally carries an opaque acknowledgement token: a receiver
    that processes the message echoes the token back to the sender, which
    uses it to advance durable replay cursors.  ``publish_ack`` is the
    publisher-side counterpart: a broker that durably appends the batch
    echoes the token back to the publisher.  ``keys`` optionally carries,
    per batched value, its compaction key (see :func:`entity_key`) —
    stored with the record so key-aware log compaction can decide
    latest-state without materializing (or even knowing) the types.
    ``home`` optionally identifies, per batched value, the log record the
    value was first durably appended in — ``"<shard id>|o1,o2,..."`` with
    one home-shard offset (or ``-``) per value — so a mesh shard storing
    a forwarded-in copy can later recognise the same record arriving
    again by replication or backlog fetch and not deliver it twice.
    """

    def __init__(self, type_entries: List[TypeEntry], encoding: str, payload: bytes,
                 batch_roots: Optional[List[int]] = None,
                 origin: Optional[str] = None,
                 ack: Optional[str] = None,
                 publish_ack: Optional[str] = None,
                 keys: Optional[List[Optional[str]]] = None,
                 home: Optional[str] = None):
        self.type_entries = type_entries
        self.encoding = encoding  # "binary" | "soap"
        self.payload = payload
        self.batch_roots = batch_roots
        self.origin = origin
        self.ack = ack
        self.publish_ack = publish_ack
        self.keys = keys
        self.home = home

    @property
    def is_batch(self) -> bool:
        return self.batch_roots is not None

    @property
    def batch_count(self) -> int:
        return len(self.batch_roots) if self.batch_roots is not None else 1

    def type_names(self) -> List[str]:
        return [entry.name for entry in self.type_entries]

    def root_entry(self) -> TypeEntry:
        if not self.type_entries:
            raise WireFormatError("envelope has no type information")
        return self.type_entries[0]

    def batch_root_entry(self, index: int) -> TypeEntry:
        """The root type entry of the ``index``-th batched value."""
        if self.batch_roots is None:
            if index != 0:
                raise WireFormatError("not a batch envelope")
            return self.root_entry()
        try:
            return self.type_entries[self.batch_roots[index]]
        except IndexError:
            raise WireFormatError("batch root %d out of range" % index)

    def __repr__(self) -> str:
        extra = ", batch=%d" % self.batch_count if self.is_batch else ""
        return "ObjectEnvelope(%s, %d types, %d payload bytes%s)" % (
            self.encoding, len(self.type_entries), len(self.payload), extra,
        )


class EnvelopeCodec:
    """Builds and parses hybrid envelopes.

    ``encoding`` selects the payload serializer: ``"binary"`` (compact) or
    ``"soap"`` (verbose XML) — both available exactly as in the paper.
    """

    def __init__(self, runtime=None, encoding: str = "binary"):
        if encoding not in ("binary", "soap"):
            raise ValueError("encoding must be 'binary' or 'soap'")
        self.encoding = encoding
        self._binary = BinarySerializer(runtime)
        self._soap = SoapSerializer(runtime)

    def _payload_serializer(self, encoding: str):
        return self._binary if encoding == "binary" else self._soap

    # -- build ------------------------------------------------------------

    def wrap(self, value: Any) -> ObjectEnvelope:
        """Object graph → envelope (types section + serialized payload)."""
        entries = [TypeEntry.for_type(t) for t in collect_types(value)]
        payload = self._payload_serializer(self.encoding).serialize(value)
        return ObjectEnvelope(entries, self.encoding, payload)

    def encode(self, value: Any) -> bytes:
        """Object graph → wire bytes of the full XML message."""
        return self.envelope_to_bytes(self.wrap(value))

    def wrap_batch(self, values: List[Any],
                   origin: Optional[str] = None,
                   ack: Optional[str] = None,
                   publish_ack: Optional[str] = None,
                   keys: Optional[List[Optional[str]]] = None) -> ObjectEnvelope:
        """Many object graphs → one batch envelope.

        The type section is the union of every value's reachable types
        (first-seen order, deduplicated by identity) and the payload is a
        single ``RBS2B`` frame — one header and one intern table for the
        whole batch.  Batches always use the binary payload encoding.
        Per-value compaction keys are extracted automatically (see
        :func:`entity_key`) unless the caller passes explicit ``keys``;
        an all-``None`` key list is omitted from the wire entirely.
        """
        if not values:
            raise ValueError("cannot build an empty batch envelope")
        entries: List[TypeEntry] = []
        index_of = {}
        roots: List[int] = []
        for value in values:
            types = collect_types(value)
            if not types:
                raise WireFormatError(
                    "batched value %r has no root CTS type" % (value,)
                )
            for position, info in enumerate(types):
                key = (info.full_name, str(info.guid))
                if key not in index_of:
                    index_of[key] = len(entries)
                    entries.append(TypeEntry.for_type(info))
                if position == 0:
                    roots.append(index_of[key])
        if keys is None:
            keys = [entity_key(value) for value in values]
        elif len(keys) != len(values):
            raise ValueError("got %d keys for %d values"
                             % (len(keys), len(values)))
        if all(key is None for key in keys):
            keys = None
        payload = self._binary.serialize_batch(values)
        return ObjectEnvelope(entries, "binary", payload,
                              batch_roots=roots, origin=origin, ack=ack,
                              publish_ack=publish_ack, keys=keys)

    def encode_batch(self, values: List[Any],
                     origin: Optional[str] = None,
                     ack: Optional[str] = None,
                     publish_ack: Optional[str] = None,
                     keys: Optional[List[Optional[str]]] = None) -> bytes:
        """Many object graphs → wire bytes of one batch XML message."""
        return self.envelope_to_bytes(
            self.wrap_batch(values, origin=origin, ack=ack,
                            publish_ack=publish_ack, keys=keys))

    def envelope_to_bytes(self, envelope: ObjectEnvelope) -> bytes:
        root = ET.Element("XmlMessage")
        type_info = ET.SubElement(root, "TypeInformation")
        for entry in envelope.type_entries:
            attrs = {
                "name": entry.name,
                "guid": entry.guid_text,
                "assembly": entry.assembly,
            }
            if entry.download_path:
                attrs["path"] = entry.download_path
            ET.SubElement(type_info, "Type", attrs)
        payload_attrs = {"encoding": envelope.encoding}
        if envelope.is_batch:
            payload_attrs["batch"] = str(envelope.batch_count)
            payload_attrs["roots"] = " ".join(
                str(index) for index in envelope.batch_roots
            )
        if envelope.origin is not None:
            payload_attrs["origin"] = envelope.origin
        if envelope.ack is not None:
            payload_attrs["ack"] = envelope.ack
        if envelope.publish_ack is not None:
            payload_attrs["publish_ack"] = envelope.publish_ack
        if envelope.keys is not None:
            payload_attrs["keys"] = _encode_keys(envelope.keys)
        if envelope.home is not None:
            payload_attrs["home"] = envelope.home
        payload = ET.SubElement(root, "Payload", payload_attrs)
        payload.text = base64.b64encode(envelope.payload).decode("ascii")
        return ET.tostring(root, encoding="utf-8")

    # -- parse ------------------------------------------------------------

    def parse(self, data: bytes) -> ObjectEnvelope:
        """Wire bytes → envelope (payload NOT yet deserialized)."""
        try:
            root = ET.fromstring(data)
        except ET.ParseError as exc:
            raise WireFormatError("invalid envelope XML: %s" % exc)
        if root.tag != "XmlMessage":
            raise WireFormatError("expected <XmlMessage>, found <%s>" % root.tag)
        type_info = root.find("TypeInformation")
        entries: List[TypeEntry] = []
        if type_info is not None:
            for element in type_info.findall("Type"):
                name = element.get("name")
                guid_text = element.get("guid")
                if not name or not guid_text:
                    raise WireFormatError("<Type> missing name/guid")
                entries.append(
                    TypeEntry(name, guid_text, element.get("assembly", "default"),
                              element.get("path"))
                )
        payload_el = root.find("Payload")
        if payload_el is None:
            raise WireFormatError("envelope missing <Payload>")
        encoding = payload_el.get("encoding", "binary")
        if encoding not in ("binary", "soap"):
            raise WireFormatError("unknown payload encoding %r" % encoding)
        try:
            payload = base64.b64decode(payload_el.text or "", validate=True)
        except (ValueError, TypeError):
            raise WireFormatError("payload is not valid base64")
        batch_roots: Optional[List[int]] = None
        batch_attr = payload_el.get("batch")
        if batch_attr is not None:
            try:
                count = int(batch_attr)
                batch_roots = [int(part) for part in
                               (payload_el.get("roots") or "").split()]
            except ValueError:
                raise WireFormatError("malformed batch attributes")
            if count != len(batch_roots):
                raise WireFormatError(
                    "batch count %d does not match %d roots"
                    % (count, len(batch_roots))
                )
            for index in batch_roots:
                if not 0 <= index < len(entries):
                    raise WireFormatError("batch root %d out of range" % index)
        keys: Optional[List[Optional[str]]] = None
        keys_attr = payload_el.get("keys")
        if keys_attr is not None:
            keys = _decode_keys(
                keys_attr,
                len(batch_roots) if batch_roots is not None else 1)
        return ObjectEnvelope(entries, encoding, payload,
                              batch_roots=batch_roots,
                              origin=payload_el.get("origin"),
                              ack=payload_el.get("ack"),
                              publish_ack=payload_el.get("publish_ack"),
                              keys=keys,
                              home=payload_el.get("home"))

    def unwrap(self, envelope: ObjectEnvelope) -> Any:
        """Envelope → object graph.

        Raises :class:`~repro.serialization.errors.UnknownTypeError` when a
        payload type is not locally known — the optimistic protocol's cue.
        """
        if envelope.is_batch:
            raise WireFormatError("batch envelope: use unwrap_batch")
        return self._payload_serializer(envelope.encoding).deserialize(envelope.payload)

    def unwrap_batch(self, envelope: ObjectEnvelope) -> List[Any]:
        """Batch envelope → list of object graphs (single → one-element).

        Raises :class:`~repro.serialization.errors.UnknownTypeError` when a
        payload type is not locally known, exactly like :meth:`unwrap`.
        """
        if not envelope.is_batch:
            return [self.unwrap(envelope)]
        values = self._binary.deserialize_batch(envelope.payload)
        if len(values) != envelope.batch_count:
            raise WireFormatError(
                "batch payload holds %d values, envelope declares %d"
                % (len(values), envelope.batch_count)
            )
        return values

    def decode(self, data: bytes) -> Any:
        """Wire bytes → object graph in one step."""
        return self.unwrap(self.parse(data))
