"""Object serialization (paper Section 6): binary, SOAP-like and the hybrid
XML envelope of Figure 3."""

from .binary import BinarySerializer
from .envelope import EnvelopeCodec, ObjectEnvelope, TypeEntry
from .errors import (
    SerializationError,
    UnknownTypeError,
    UnsupportedValueError,
    WireFormatError,
)
from .graph import check_serializable, collect_types, graph_size
from .soap import SoapSerializer

__all__ = [
    "BinarySerializer",
    "EnvelopeCodec",
    "ObjectEnvelope",
    "SerializationError",
    "SoapSerializer",
    "TypeEntry",
    "UnknownTypeError",
    "UnsupportedValueError",
    "WireFormatError",
    "check_serializable",
    "collect_types",
    "graph_size",
]
