"""Compact binary object serializer (wire formats v1 and v2).

One of the two payload formats of the hybrid scheme (Section 6.2: "The SOAP
or binary serializations are used to serialize efficiently the whole object
(including the private fields)").  The format is tag-prefixed with varint
lengths, and supports shared references and cycles via back-references.

v1 layout (magic ``RBS1``, one value)::

    NULL | TRUE | FALSE
    INT     zigzag varint
    FLOAT   8-byte IEEE-754 big-endian
    STR     varint byte-length + UTF-8
    LIST    varint count + values
    DICT    varint count + (STR key, value) pairs
    OBJ     16-byte type GUID + STR type name + varint field count
            + (STR name, value) pairs
    REF     varint back-reference index (objects only, in OBJ-emission order)

v2 layout (magic ``RBS2``) is the same tag stream with two interning
tables, built identically by encoder and decoder as the payload streams:

- **strings** — every string position (STR values, dict keys, field names,
  type names) is a varint ``code``: low bit 0 means a literal of byte
  length ``code >> 1`` follows (and joins the table), low bit 1 means a
  back-reference to string ``code >> 1``.
- **types** — an OBJ starts with a varint ``code``: ``0`` means a literal
  type follows (16-byte GUID + interned name, and the type joins the
  table), low bit 1 means a back-reference to type ``code >> 1``.

Repeated type names, field names and dict keys are therefore transmitted
once; a homogeneous object list pays its 16-byte GUID and its field-name
strings exactly once.  Decoding accepts both magics, so v1 payloads
produced by older peers keep deserializing.

The **batch frame** (magic ``RBS2B``) extends v2 for fan-out: many values
in one frame sharing a *single* intern table and back-reference space::

    RBS2B  varint count  value*

N events to one peer therefore cost one header and one string/type table
— and a value repeated inside a batch (one event matching several
subscriptions at the same peer) collapses to a ``REF`` of a few bytes.
Batch frames are produced by :meth:`BinarySerializer.serialize_batch` and
read by :meth:`BinarySerializer.deserialize_batch`; a plain v2 (or v1)
single-value frame remains decodable unchanged, and is accepted by
``deserialize_batch`` as a one-element batch.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from ..cts.identity import Guid
from ..cts.types import TypeInfo
from ..runtime.loader import Runtime
from ..runtime.objects import CtsInstance
from .errors import UnknownTypeError, UnsupportedValueError, WireFormatError

_T_NULL = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_LIST = 0x06
_T_DICT = 0x07
_T_OBJ = 0x08
_T_REF = 0x09
_T_BYTES = 0x0A

_MAGIC_V1 = b"RBS1"  # "Repro Binary Serialization v1"
_MAGIC_V2 = b"RBS2"  # v2: interned strings and types
_MAGIC_BATCH = b"RBS2B"  # v2 batch frame: many values, one intern table
_MAGIC = _MAGIC_V1  # historical alias (seed name)


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    # Width-independent zigzag: Python ints are arbitrary precision.
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def read(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise WireFormatError("truncated binary payload")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def read_byte(self) -> int:
        return self.read(1)[0]

    def read_varint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.read_byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 2048:  # generous: arbitrary-precision ints allowed
                raise WireFormatError("varint too long")

    def read_str(self) -> str:
        length = self.read_varint()
        try:
            return self.read(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError("invalid UTF-8 in string: %s" % exc)


class _InternTables:
    """Per-payload v2 interning state (encode side uses dicts, decode lists)."""

    __slots__ = ("strings", "types")

    def __init__(self):
        self.strings: Dict[str, int] = {}
        self.types: Dict[Guid, int] = {}


class _DecodeTables:
    __slots__ = ("strings", "types")

    def __init__(self):
        self.strings: List[str] = []
        self.types: List[TypeInfo] = []


class BinarySerializer:
    """Serializes object graphs to bytes and back.

    Emits wire format ``version`` (2 by default; pass ``version=1`` to
    produce payloads older peers can read) and decodes both versions by
    magic.  The output buffer is reused across :meth:`serialize` calls, so
    a long-lived serializer — one per peer — allocates no fresh buffer per
    send.

    Deserialization needs a :class:`~repro.runtime.loader.Runtime` to
    materialise instances; hitting a type the runtime does not know raises
    :class:`UnknownTypeError` — the signal the optimistic transport protocol
    reacts to.  Fields present on the wire but absent from the local type
    (schema drift) are kept on the instance and recorded in
    :attr:`last_schema_drift` as ``(type name, field name)`` pairs.
    """

    format_name = "binary"

    def __init__(self, runtime: Optional[Runtime] = None, version: int = 2):
        if version not in (1, 2):
            raise ValueError("unsupported wire version %r" % (version,))
        self.runtime = runtime
        self.version = version
        self.last_schema_drift: List[Tuple[str, str]] = []
        self._buf: Optional[bytearray] = bytearray()

    # -- encode ------------------------------------------------------------

    def serialize(self, value: Any) -> bytes:
        buf = self._buf
        if buf is None:
            buf = bytearray()  # reentrant call: fall back to a one-off buffer
        else:
            self._buf = None  # claim the shared buffer
            del buf[:]
        try:
            if self.version == 1:
                buf += _MAGIC_V1
                self._encode(buf, value, {}, None)
            else:
                buf += _MAGIC_V2
                self._encode(buf, value, {}, _InternTables())
            return bytes(buf)
        finally:
            self._buf = buf

    def serialize_batch(self, values: List[Any]) -> bytes:
        """Encode many values into one ``RBS2B`` frame.

        All values share one string/type intern table and one object
        back-reference space, so a batch of same-type events pays the type
        GUID and field names once, and a value appearing twice costs a
        ``REF``.  Batch frames are inherently v2: a ``version=1``
        serializer refuses to emit them.
        """
        if self.version != 2:
            raise ValueError("batch frames (RBS2B) require wire version 2")
        buf = self._buf
        if buf is None:
            buf = bytearray()  # reentrant call: fall back to a one-off buffer
        else:
            self._buf = None  # claim the shared buffer
            del buf[:]
        try:
            buf += _MAGIC_BATCH
            _write_varint(buf, len(values))
            seen: Dict[int, int] = {}
            tables = _InternTables()
            for value in values:
                self._encode(buf, value, seen, tables)
            return bytes(buf)
        finally:
            self._buf = buf

    def _encode(self, out: bytearray, value: Any, seen: Dict[int, int],
                tables: Optional[_InternTables]) -> None:
        if value is None:
            out.append(_T_NULL)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif isinstance(value, int):
            out.append(_T_INT)
            _write_varint(out, _zigzag(value))
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out.extend(struct.pack(">d", value))
        elif isinstance(value, str):
            out.append(_T_STR)
            self._encode_str(out, value, tables)
        elif isinstance(value, (bytes, bytearray)):
            out.append(_T_BYTES)
            _write_varint(out, len(value))
            out.extend(value)
        elif isinstance(value, list):
            out.append(_T_LIST)
            _write_varint(out, len(value))
            for item in value:
                self._encode(out, item, seen, tables)
        elif isinstance(value, dict):
            out.append(_T_DICT)
            _write_varint(out, len(value))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise UnsupportedValueError("dict keys must be strings")
                self._encode_str(out, key, tables)
                self._encode(out, item, seen, tables)
        elif isinstance(value, CtsInstance):
            marker = id(value)
            if marker in seen:
                out.append(_T_REF)
                _write_varint(out, seen[marker])
                return
            seen[marker] = len(seen)
            out.append(_T_OBJ)
            info = value.type_info
            if tables is None:
                out.extend(info.guid.bytes)
                self._encode_str(out, info.full_name, None)
            else:
                type_id = tables.types.get(info.guid)
                if type_id is not None:
                    _write_varint(out, (type_id << 1) | 1)
                else:
                    tables.types[info.guid] = len(tables.types)
                    out.append(0x00)  # literal-type marker
                    out.extend(info.guid.bytes)
                    self._encode_str(out, info.full_name, tables)
            fields = value.fields
            _write_varint(out, len(fields))
            for name, item in fields.items():
                self._encode_str(out, name, tables)
                self._encode(out, item, seen, tables)
        else:
            raise UnsupportedValueError(
                "cannot binary-serialize value of type %s" % type(value).__name__
            )

    @staticmethod
    def _encode_str(out: bytearray, text: str,
                    tables: Optional[_InternTables]) -> None:
        if tables is not None:
            index = tables.strings.get(text)
            if index is not None:
                _write_varint(out, (index << 1) | 1)
                return
            tables.strings[text] = len(tables.strings)
            data = text.encode("utf-8")
            _write_varint(out, len(data) << 1)
            out.extend(data)
            return
        data = text.encode("utf-8")
        _write_varint(out, len(data))
        out.extend(data)

    # -- decode ------------------------------------------------------------

    def deserialize(self, data: bytes) -> Any:
        if data.startswith(_MAGIC_BATCH):
            # "RBS2B" shares the "RBS2" prefix: check the longer magic
            # first and point the caller at the batch API.
            raise WireFormatError(
                "payload is a batch frame (RBS2B): use deserialize_batch"
            )
        if data.startswith(_MAGIC_V2):
            tables: Optional[_DecodeTables] = _DecodeTables()
        elif data.startswith(_MAGIC_V1):
            tables = None
        else:
            raise WireFormatError("bad magic: not a binary payload")
        self.last_schema_drift = []
        reader = _Reader(data)
        reader.pos = len(_MAGIC_V1)
        objects: List[CtsInstance] = []
        value = self._decode(reader, objects, tables)
        if reader.pos != len(data):
            raise WireFormatError("trailing bytes after payload")
        return value

    def deserialize_batch(self, data: bytes) -> List[Any]:
        """Decode an ``RBS2B`` frame into its list of values.

        A plain single-value frame (``RBS2`` or ``RBS1``) is accepted too
        and returned as a one-element list, so receivers can treat every
        delivery uniformly.
        """
        if not data.startswith(_MAGIC_BATCH):
            return [self.deserialize(data)]
        self.last_schema_drift = []
        reader = _Reader(data)
        reader.pos = len(_MAGIC_BATCH)
        count = reader.read_varint()
        tables = _DecodeTables()
        objects: List[CtsInstance] = []
        values = [self._decode(reader, objects, tables) for _ in range(count)]
        if reader.pos != len(data):
            raise WireFormatError("trailing bytes after batch payload")
        return values

    def _decode(self, reader: _Reader, objects: List[CtsInstance],
                tables: Optional[_DecodeTables]) -> Any:
        tag = reader.read_byte()
        if tag == _T_NULL:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return _unzigzag(reader.read_varint())
        if tag == _T_FLOAT:
            return struct.unpack(">d", reader.read(8))[0]
        if tag == _T_STR:
            return self._read_str(reader, tables)
        if tag == _T_BYTES:
            return reader.read(reader.read_varint())
        if tag == _T_LIST:
            count = reader.read_varint()
            return [self._decode(reader, objects, tables) for _ in range(count)]
        if tag == _T_DICT:
            count = reader.read_varint()
            out: Dict[str, Any] = {}
            for _ in range(count):
                key = self._read_str(reader, tables)
                out[key] = self._decode(reader, objects, tables)
            return out
        if tag == _T_OBJ:
            return self._decode_object(reader, objects, tables)
        if tag == _T_REF:
            index = reader.read_varint()
            if index >= len(objects):
                raise WireFormatError("dangling back-reference %d" % index)
            return objects[index]
        raise WireFormatError("unknown tag 0x%02x" % tag)

    @staticmethod
    def _read_str(reader: _Reader, tables: Optional[_DecodeTables]) -> str:
        if tables is None:
            return reader.read_str()
        code = reader.read_varint()
        if code & 1:
            index = code >> 1
            if index >= len(tables.strings):
                raise WireFormatError("dangling string reference %d" % index)
            return tables.strings[index]
        try:
            text = reader.read(code >> 1).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError("invalid UTF-8 in string: %s" % exc)
        tables.strings.append(text)
        return text

    def _decode_object(self, reader: _Reader, objects: List[CtsInstance],
                       tables: Optional[_DecodeTables]) -> CtsInstance:
        if self.runtime is None:
            raise WireFormatError(
                "payload contains objects but no runtime was provided"
            )
        if tables is None:
            guid = Guid(reader.read(16))
            type_name = reader.read_str()
            info = self._lookup_type(guid, type_name)
        else:
            code = reader.read_varint()
            if code & 1:
                index = code >> 1
                if index >= len(tables.types):
                    raise WireFormatError("dangling type reference %d" % index)
                info = tables.types[index]
            elif code == 0:
                guid = Guid(reader.read(16))
                type_name = self._read_str(reader, tables)
                info = self._lookup_type(guid, type_name)
                tables.types.append(info)
            else:
                raise WireFormatError("malformed type literal marker %d" % code)
        # Allocate first so cyclic back-references resolve.
        instance = self.runtime.raw_instance(info, {})
        objects.append(instance)
        fields = instance.fields
        count = reader.read_varint()
        for _ in range(count):
            name = self._read_str(reader, tables)
            value = self._decode(reader, objects, tables)
            if name not in fields:
                # Field present on the wire but absent locally: keep it
                # (conformance mapping may still address it) and record the
                # drift so callers can observe it.
                self.last_schema_drift.append((info.full_name, name))
            fields[name] = value
        return instance

    def _lookup_type(self, guid: Guid, type_name: str) -> TypeInfo:
        info = self.runtime.registry.get_by_guid(guid)
        if info is None:
            # Name fallback only when identities agree — a same-named type
            # of a *different version* must not be silently substituted.
            candidate = self.runtime.registry.get(type_name)
            if candidate is not None and candidate.guid == guid:
                info = candidate
        if info is None:
            raise UnknownTypeError(type_name, str(guid))
        return info


class BatchDecoder:
    """Incremental, per-value reader over one ``RBS2B`` frame.

    The batch frame shares a single intern table and one back-reference
    space across all values, so random access is impossible — but *prefix*
    access is cheap: decoding value ``i`` requires decoding values
    ``0..i`` exactly once, and every decoded value is cached.  A consumer
    that dispatches only value 0 of a 64-value batch pays one decode, not
    sixty-four; a consumer that touches nothing pays zero.

    A plain single-value frame (``RBS2``/``RBS1``) is accepted as a
    one-value batch, so lazy admission handles every payload uniformly.

    Each value decode snapshots the reader position and table lengths
    first: an :class:`UnknownTypeError` raised mid-value (the optimistic
    protocol's fetch-code cue) rolls the decoder back, so the same value
    can be retried cleanly after the type arrives.
    """

    __slots__ = ("count", "_serializer", "_reader", "_tables", "_objects",
                 "_values", "_single")

    def __init__(self, serializer: BinarySerializer, data: Any):
        if not isinstance(data, (bytes, bytearray)):
            # memoryview payloads (zero-copy frame slices) are snapshotted
            # once here: value decode is the paid path by definition.
            data = bytes(data)
        self._serializer = serializer
        self._values: List[Any] = []
        if data.startswith(_MAGIC_BATCH):
            self._single = False
            self._reader = _Reader(bytes(data))
            self._reader.pos = len(_MAGIC_BATCH)
            self.count = self._reader.read_varint()
            self._tables = _DecodeTables()
            self._objects: List[CtsInstance] = []
        elif data.startswith(_MAGIC_V2) or data.startswith(_MAGIC_V1):
            self._single = True
            self._reader = _Reader(bytes(data))
            self.count = 1
            self._tables = None
            self._objects = []
        else:
            raise WireFormatError("bad magic: not a binary payload")

    def __len__(self) -> int:
        return self.count

    @property
    def decoded_count(self) -> int:
        return len(self._values)

    def value(self, index: int) -> Any:
        """Decode (and cache) the batch prefix up to value ``index``."""
        if not 0 <= index < self.count:
            raise IndexError("batch value %d out of range (%d values)"
                             % (index, self.count))
        while len(self._values) <= index:
            self._decode_next()
        return self._values[index]

    def values(self) -> List[Any]:
        return [self.value(index) for index in range(self.count)]

    def _decode_next(self) -> None:
        if self._single:
            self._values.append(self._serializer.deserialize(
                bytes(self._reader.data)))
            return
        reader = self._reader
        tables = self._tables
        # Snapshot so an UnknownTypeError mid-value leaves the decoder
        # exactly where this value started.
        pos = reader.pos
        n_strings = len(tables.strings)
        n_types = len(tables.types)
        n_objects = len(self._objects)
        try:
            value = self._serializer._decode(reader, self._objects, tables)
        except UnknownTypeError:
            reader.pos = pos
            del tables.strings[n_strings:]
            del tables.types[n_types:]
            del self._objects[n_objects:]
            raise
        if (len(self._values) + 1 == self.count
                and reader.pos != len(reader.data)):
            raise WireFormatError("trailing bytes after batch payload")
        self._values.append(value)
