"""Compact binary object serializer.

One of the two payload formats of the hybrid scheme (Section 6.2: "The SOAP
or binary serializations are used to serialize efficiently the whole object
(including the private fields)").  The format is tag-prefixed with varint
lengths, and supports shared references and cycles via back-references.

Layout (one value)::

    NULL | TRUE | FALSE
    INT     zigzag varint
    FLOAT   8-byte IEEE-754 big-endian
    STR     varint byte-length + UTF-8
    LIST    varint count + values
    DICT    varint count + (STR key, value) pairs
    OBJ     16-byte type GUID + STR type name + varint field count
            + (STR name, value) pairs
    REF     varint back-reference index (objects only, in OBJ-emission order)
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional

from ..cts.identity import Guid
from ..runtime.loader import Runtime
from ..runtime.objects import CtsInstance
from .errors import UnknownTypeError, UnsupportedValueError, WireFormatError

_T_NULL = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_LIST = 0x06
_T_DICT = 0x07
_T_OBJ = 0x08
_T_REF = 0x09
_T_BYTES = 0x0A

_MAGIC = b"RBS1"  # "Repro Binary Serialization v1"


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    # Width-independent zigzag: Python ints are arbitrary precision.
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def read(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise WireFormatError("truncated binary payload")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def read_byte(self) -> int:
        return self.read(1)[0]

    def read_varint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.read_byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 2048:  # generous: arbitrary-precision ints allowed
                raise WireFormatError("varint too long")

    def read_str(self) -> str:
        length = self.read_varint()
        try:
            return self.read(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError("invalid UTF-8 in string: %s" % exc)


class BinarySerializer:
    """Serializes object graphs to bytes and back.

    Deserialization needs a :class:`~repro.runtime.loader.Runtime` to
    materialise instances; hitting a type the runtime does not know raises
    :class:`UnknownTypeError` — the signal the optimistic transport protocol
    reacts to.
    """

    format_name = "binary"

    def __init__(self, runtime: Optional[Runtime] = None):
        self.runtime = runtime

    # -- encode ------------------------------------------------------------

    def serialize(self, value: Any) -> bytes:
        out = bytearray(_MAGIC)
        self._encode(out, value, {})
        return bytes(out)

    def _encode(self, out: bytearray, value: Any, seen: Dict[int, int]) -> None:
        if value is None:
            out.append(_T_NULL)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif isinstance(value, int):
            out.append(_T_INT)
            _write_varint(out, _zigzag(value))
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out.extend(struct.pack(">d", value))
        elif isinstance(value, str):
            out.append(_T_STR)
            self._encode_str(out, value)
        elif isinstance(value, (bytes, bytearray)):
            out.append(_T_BYTES)
            _write_varint(out, len(value))
            out.extend(value)
        elif isinstance(value, list):
            out.append(_T_LIST)
            _write_varint(out, len(value))
            for item in value:
                self._encode(out, item, seen)
        elif isinstance(value, dict):
            out.append(_T_DICT)
            _write_varint(out, len(value))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise UnsupportedValueError("dict keys must be strings")
                self._encode_str(out, key)
                self._encode(out, item, seen)
        elif isinstance(value, CtsInstance):
            marker = id(value)
            if marker in seen:
                out.append(_T_REF)
                _write_varint(out, seen[marker])
                return
            seen[marker] = len(seen)
            out.append(_T_OBJ)
            out.extend(value.type_info.guid.bytes)
            self._encode_str(out, value.type_info.full_name)
            fields = value.fields
            _write_varint(out, len(fields))
            for name, item in fields.items():
                self._encode_str(out, name)
                self._encode(out, item, seen)
        else:
            raise UnsupportedValueError(
                "cannot binary-serialize value of type %s" % type(value).__name__
            )

    @staticmethod
    def _encode_str(out: bytearray, text: str) -> None:
        data = text.encode("utf-8")
        _write_varint(out, len(data))
        out.extend(data)

    # -- decode ------------------------------------------------------------

    def deserialize(self, data: bytes) -> Any:
        if not data.startswith(_MAGIC):
            raise WireFormatError("bad magic: not a binary payload")
        reader = _Reader(data)
        reader.pos = len(_MAGIC)
        objects: List[CtsInstance] = []
        value = self._decode(reader, objects)
        if reader.pos != len(data):
            raise WireFormatError("trailing bytes after payload")
        return value

    def _decode(self, reader: _Reader, objects: List[CtsInstance]) -> Any:
        tag = reader.read_byte()
        if tag == _T_NULL:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return _unzigzag(reader.read_varint())
        if tag == _T_FLOAT:
            return struct.unpack(">d", reader.read(8))[0]
        if tag == _T_STR:
            return reader.read_str()
        if tag == _T_BYTES:
            return reader.read(reader.read_varint())
        if tag == _T_LIST:
            count = reader.read_varint()
            return [self._decode(reader, objects) for _ in range(count)]
        if tag == _T_DICT:
            count = reader.read_varint()
            out: Dict[str, Any] = {}
            for _ in range(count):
                key = reader.read_str()
                out[key] = self._decode(reader, objects)
            return out
        if tag == _T_OBJ:
            return self._decode_object(reader, objects)
        if tag == _T_REF:
            index = reader.read_varint()
            if index >= len(objects):
                raise WireFormatError("dangling back-reference %d" % index)
            return objects[index]
        raise WireFormatError("unknown tag 0x%02x" % tag)

    def _decode_object(self, reader: _Reader, objects: List[CtsInstance]) -> CtsInstance:
        if self.runtime is None:
            raise WireFormatError(
                "payload contains objects but no runtime was provided"
            )
        guid = Guid(reader.read(16))
        type_name = reader.read_str()
        info = self.runtime.registry.get_by_guid(guid)
        if info is None:
            # Name fallback only when identities agree — a same-named type
            # of a *different version* must not be silently substituted.
            candidate = self.runtime.registry.get(type_name)
            if candidate is not None and candidate.guid == guid:
                info = candidate
        if info is None:
            raise UnknownTypeError(type_name, str(guid))
        # Allocate first so cyclic back-references resolve.
        instance = self.runtime.raw_instance(info, {})
        objects.append(instance)
        count = reader.read_varint()
        for _ in range(count):
            name = reader.read_str()
            value = self._decode(reader, objects)
            if name in instance.fields:
                instance.fields[name] = value
            else:
                # Field present on the wire but absent locally (schema drift):
                # keep it anyway; conformance mapping may still address it.
                instance.fields[name] = value
        return instance
