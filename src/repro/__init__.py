"""repro — a reproduction of "Pragmatic Type Interoperability"
(Baehni, Eugster, Guerraoui, Altherr, ICDCS 2003).

The library makes types that "aim at representing the same software module"
interchangeable across programmers, languages and peers:

- :mod:`repro.core` — implicit structural conformance rules (the
  contribution);
- :mod:`repro.cts` / :mod:`repro.il` / :mod:`repro.langs` /
  :mod:`repro.runtime` — the managed-platform substrate (common type
  system, intermediate language, C#/Java/VB-like frontends, loader);
- :mod:`repro.describe` — XML type descriptions;
- :mod:`repro.serialization` — binary / SOAP payloads and the hybrid
  envelope;
- :mod:`repro.net` / :mod:`repro.transport` — simulated network and the
  optimistic protocol;
- :mod:`repro.remoting` — dynamic proxies and pass-by-reference stubs;
- :mod:`repro.apps` — type-based publish/subscribe and borrow/lend.

Quickstart::

    from repro import ConformanceChecker, fixtures, Runtime, wrap

    provider = fixtures.person_csharp()   # GetName/SetName
    expected = fixtures.person_java()     # getPersonName/setPersonName

    checker = ConformanceChecker()
    result = checker.conforms(provider, expected)
    assert result.ok

    runtime = Runtime()
    runtime.load_type(provider)
    someone = runtime.instantiate(provider, ["Ada"])
    as_expected = wrap(someone, expected, checker)
    assert as_expected.getPersonName() == "Ada"
"""

from . import fixtures
from .core import (
    ConformanceChecker,
    ConformanceOptions,
    ConformanceResult,
    NamePolicy,
    Verdict,
    conforms,
)
from .cts import (
    Assembly,
    Guid,
    TypeBuilder,
    TypeInfo,
    TypeRegistry,
    bridge_class,
    interface_builder,
)
from .describe import TypeDescription, describe
from .net import CodeRepository, SimulatedNetwork
from .remoting import DynamicProxy, RemotingPeer, unwrap, wrap
from .runtime import CtsInstance, Runtime
from .serialization import BinarySerializer, EnvelopeCodec, SoapSerializer
from .transport import EagerPeer, InteropPeer

__version__ = "1.0.0"

__all__ = [
    "Assembly",
    "BinarySerializer",
    "CodeRepository",
    "ConformanceChecker",
    "ConformanceOptions",
    "ConformanceResult",
    "CtsInstance",
    "DynamicProxy",
    "EagerPeer",
    "EnvelopeCodec",
    "Guid",
    "InteropPeer",
    "NamePolicy",
    "RemotingPeer",
    "Runtime",
    "SimulatedNetwork",
    "SoapSerializer",
    "TypeBuilder",
    "TypeDescription",
    "TypeInfo",
    "TypeRegistry",
    "Verdict",
    "bridge_class",
    "conforms",
    "describe",
    "fixtures",
    "interface_builder",
    "unwrap",
    "wrap",
    "__version__",
]
