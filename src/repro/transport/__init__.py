"""Transport protocols: the paper's optimistic scheme and an eager baseline."""

from .eager import EagerPeer, KIND_OBJECT_EAGER
from .protocol import (
    InteropPeer,
    KIND_OBJECT,
    KIND_OBJECT_BATCH,
    ProtocolError,
    ReceivedObject,
    TransportStats,
)

__all__ = [
    "EagerPeer",
    "InteropPeer",
    "KIND_OBJECT",
    "KIND_OBJECT_BATCH",
    "KIND_OBJECT_EAGER",
    "ProtocolError",
    "ReceivedObject",
    "TransportStats",
]
