"""Eager transport baseline: ship description + code with every object.

This is the strawman the optimistic protocol is measured against — the
behaviour of a middleware without on-demand type/code transfer: every send
bundles the envelope, the XML descriptions of every type in the object
graph, and the full assemblies implementing them.  Correct, zero round
trips, but pays the full price per message even when the receiver already
knows everything.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..cts.assembly import Assembly
from ..describe.description import TypeDescription
from ..describe.xml_codec import serialize_description_bytes
from ..serialization.graph import collect_types
from .protocol import InteropPeer, ReceivedObject

KIND_OBJECT_EAGER = "object_eager"


class EagerPeer(InteropPeer):
    """An :class:`InteropPeer` that sends everything up front.

    Receiving still runs the conformance check against declared interests
    (type safety is not the axis being ablated) — but the description and
    code arrive whether or not they are needed.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.on(KIND_OBJECT_EAGER, self._handle_eager_object)

    # -- sending ------------------------------------------------------------

    def send(self, dst: str, value: Any) -> None:
        envelope_bytes = self.codec.encode(value)
        descriptions: List[bytes] = []
        assemblies: List[Dict] = []
        seen_assemblies = set()
        for info in collect_types(value):
            descriptions.append(
                serialize_description_bytes(TypeDescription.from_type_info(info))
            )
            hosting = self._find_hosting_assembly(info.full_name)
            if hosting is not None and hosting.download_path not in seen_assemblies:
                seen_assemblies.add(hosting.download_path)
                assemblies.append(hosting.to_wire())
        bundle = self._wire_codec.serialize(
            {
                "envelope": envelope_bytes,
                "descriptions": descriptions,
                "assemblies": assemblies,
            }
        )
        self.transport_stats.objects_sent += 1
        self.post(dst, KIND_OBJECT_EAGER, bundle)

    def _find_hosting_assembly(self, type_name: str) -> Optional[Assembly]:
        for assembly in self._hosted.values():
            if assembly.find_type(type_name) is not None:
                return assembly
        return None

    # -- receiving ------------------------------------------------------------

    def _handle_eager_object(self, payload: bytes, src: str) -> bytes:
        bundle = self._wire_codec.deserialize(payload)
        # Everything arrived inline: load it all, no protocol round trips.
        for wire in bundle.get("assemblies", []):
            assembly = Assembly.from_wire(wire)
            if not self.runtime.has_assembly(assembly.name):
                self.runtime.load_assembly(assembly)
        envelope = self.codec.parse(bundle["envelope"])
        received = self.receive_envelope(envelope, src)
        self.inbox.append(received)
        for callback in self._receive_callbacks:
            callback(received)
        return b"OK"
