"""The optimistic transport protocol (paper Section 3, Figure 1).

    Peer A                                   Peer B
    ------ 1. object (envelope only) ------->
    <----- 2. ask type information ---------
    ------ 3. type description ------------->   rules check
    <----- 4. types conform, ask the code --
    ------ 5. assembly (code) -------------->   object usable

The protocol is optimistic because steps 2-5 happen only when needed: a
known type skips everything, a cached description skips 2-3, and a failed
conformance check *saves* the code transfer entirely.

:class:`InteropPeer` is the full middleware endpoint: runtime + registry,
description cache and resolver, conformance checker, envelope codec, and
the request handlers that let every peer also serve descriptions and
assemblies for the types it hosts.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..cts.assembly import Assembly
from ..cts.identity import Guid
from ..cts.types import TypeInfo
from ..core.context import ConformanceOptions
from ..core.result import ConformanceResult
from ..core.rules import ConformanceChecker
from ..describe.cache import DescriptionCache
from ..describe.description import TypeDescription
from ..describe.resolver import DescriptionResolver
from ..describe.xml_codec import deserialize_description, serialize_description_bytes
from ..net.codeserver import KIND_GET_ASSEMBLY, KIND_GET_DESCRIPTION
from ..net.network import (
    MessageDropped,
    NetworkError,
    SimulatedNetwork,
    UnknownPeerError,
)
from ..net.peer import Peer, error_response
from ..remoting.dynamic import wrap_with_result
from ..runtime.loader import Runtime
from ..serialization.binary import BinarySerializer
from ..serialization.envelope import (
    EnvelopeCodec,
    LazyBatch,
    ObjectEnvelope,
    split_frames,
)
from ..serialization.errors import UnknownTypeError

KIND_OBJECT = "object"
KIND_OBJECT_BATCH = "object_batch"
#: One-way acknowledgement for a delivery that carried an ``ack`` token:
#: the receiver echoes the token to the sender, which advances whatever
#: durable replay cursors the token covers.
KIND_DELIVERY_ACK = "delivery_ack"
#: One-way acknowledgement for a *publish* that carried a ``publish_ack``
#: token: a broker echoes the token to the publisher only after the batch
#: was appended to its durable log, extending at-least-once back to the
#: publisher (see ``TpsSubscriberMixin.publish_durable``).
KIND_PUBLISH_ACK = "publish_ack"
#: One-way cross-shard log replication: an origin shard streams batches
#: of its durably appended records to rendezvous-chosen follower shards,
#: which store them in per-origin replica logs at the origin's offsets.
KIND_REPLICATE = "replicate"
#: The follower's one-way answer: its per-origin high-water offset, which
#: the origin uses both as the replication watermark and as the trigger to
#: re-send a range the follower reports missing (a dropped batch).
KIND_REPLICATE_ACK = "replicate_ack"
#: Round-trip backlog fetch: a shard replaying a durable subscription asks
#: a sibling for the sibling's own records (conformance-filtered server
#: side) that the local log and replica set are missing.
KIND_BACKLOG_FETCH = "backlog_fetch"
#: Round-trip recovery catch-up: a restarted shard whose log was lost asks
#: its followers for the replicated copy of its own records.
KIND_REPLICA_PULL = "replica_pull"

#: Safety bound on the materialisation loop (one fetch per unknown type).
_MAX_CODE_FETCHES = 64


class ProtocolError(Exception):
    pass


class TransportStats:
    """Per-peer protocol counters (reported by the Figure-1 benchmarks)."""

    __slots__ = (
        "objects_sent",
        "objects_received",
        "objects_rejected",
        "descriptions_fetched",
        "assemblies_fetched",
        "unknown_type_retries",
        "batches_sent",
        "batches_received",
        "publish_acks_sent",
        "publishes_acked",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return "TransportStats(%s)" % ", ".join(
            "%s=%d" % item for item in self.as_dict().items()
        )


class ReceivedObject:
    """What lands in a receiver's inbox after the protocol completes."""

    __slots__ = ("sender", "type_name", "value", "view", "interest", "result")

    def __init__(
        self,
        sender: str,
        type_name: str,
        value: Any,
        view: Any,
        interest: Optional[TypeInfo],
        result: Optional[ConformanceResult],
    ):
        self.sender = sender
        self.type_name = type_name
        self.value = value          # raw deserialized object (None if rejected)
        self.view = view            # object as the interest type (proxied if needed)
        self.interest = interest    # the matching declared interest, if any
        self.result = result        # conformance result against that interest

    @property
    def accepted(self) -> bool:
        return self.view is not None

    def __repr__(self) -> str:
        state = "accepted" if self.accepted else "rejected"
        return "ReceivedObject(%s from %s, %s)" % (self.type_name, self.sender, state)


class _FetchScope:
    """Scoped rebind of a peer's resolver fetch hook to one sending peer
    (nested member types of rule recursion fetch from the sender)."""

    __slots__ = ("_peer", "_src", "_saved")

    def __init__(self, peer: "InteropPeer", src: str):
        self._peer = peer
        self._src = src

    def __enter__(self) -> "_FetchScope":
        peer, src = self._peer, self._src
        self._saved = peer.resolver.fetch
        peer.resolver.fetch = (
            lambda name, path: peer._obtain_description(src, name, path)
        )
        return self

    def __exit__(self, *exc) -> bool:
        self._peer.resolver.fetch = self._saved
        return False


class InteropPeer(Peer):
    """A middleware endpoint implementing the optimistic protocol."""

    def __init__(
        self,
        peer_id: str,
        network: SimulatedNetwork,
        encoding: str = "binary",
        options: Optional[ConformanceOptions] = None,
        code_source: Optional[str] = None,
        max_retries: int = 0,
    ):
        super().__init__(peer_id, network)
        self.max_retries = max_retries
        self.runtime = Runtime()
        self.cache = DescriptionCache()
        self.resolver = DescriptionResolver(self.runtime.registry, self.cache)
        self.checker = ConformanceChecker(self.resolver, options)
        self.codec = EnvelopeCodec(self.runtime, encoding)
        self.interests: List[TypeInfo] = []
        self.inbox: List[ReceivedObject] = []
        self.transport_stats = TransportStats()
        self.code_source = code_source  # fallback repository peer id
        self._hosted: Dict[str, Assembly] = {}
        self._receive_callbacks: List[Callable[[ReceivedObject], None]] = []
        #: Shared wire serializer for assembly transfer and control
        #: messages (e.g. TPS subscribe/unsubscribe).  Long-lived and
        #: buffer-reusing: no request path allocates a fresh serializer.
        self._wire_codec = BinarySerializer()
        self.on(KIND_OBJECT, self._handle_object)
        self.on(KIND_OBJECT_BATCH, self._handle_object_batch)
        self.on(KIND_GET_DESCRIPTION, self._serve_description)
        self.on(KIND_GET_ASSEMBLY, self._serve_assembly)

    # ------------------------------------------------------------------
    # local knowledge
    # ------------------------------------------------------------------

    def host_assembly(self, assembly: Assembly) -> None:
        """Load an assembly locally and serve it to other peers."""
        self.runtime.load_assembly(assembly)
        self._hosted[assembly.download_path] = assembly
        self._hosted[assembly.name] = assembly

    def declare_interest(self, info: TypeInfo) -> None:
        """Register a type of interest — received objects whose types
        conform to it are delivered as that type."""
        self.runtime.registry.register(info)
        self.interests.append(info)

    def on_receive(self, callback: Callable[[ReceivedObject], None]) -> None:
        self._receive_callbacks.append(callback)

    def new_instance(self, type_name: str, args: Optional[List[Any]] = None):
        return self.runtime.new_instance(type_name, args)

    # ------------------------------------------------------------------
    # sending (step 1)
    # ------------------------------------------------------------------

    def send(self, dst: str, value: Any) -> None:
        """Optimistic send: the envelope carries only type names + download
        paths + the serialized object; no description, no code."""
        self.send_payload(dst, self.codec.encode(value))

    def send_payload(self, dst: str, payload: bytes) -> None:
        """Send an already-encoded envelope — the fan-out fast path: a
        broker forwarding one event to many subscribers encodes once and
        posts the same payload to each."""
        self.transport_stats.objects_sent += 1
        self.post(dst, KIND_OBJECT, payload, retries=self.max_retries)

    def send_async(self, dst: str, value: Any) -> None:
        """Optimistic send via the network's queue: nothing executes in
        this call stack; the receiver runs when the scheduler drains."""
        self.transport_stats.objects_sent += 1
        self.post_async(dst, KIND_OBJECT, self.codec.encode(value))

    def send_batch(self, dst: str, values: List[Any]) -> None:
        """Send many values to one peer as a single batch message."""
        self.send_payload_batch(dst, self.codec.encode_batch(values), len(values))

    def send_payload_batch(self, dst: str, payload: bytes, count: int) -> None:
        """Enqueue an already-encoded batch envelope — the mesh fan-out
        fast path: a broker with queued events for a peer encodes the
        batch once and sends ONE network message, however many
        subscriptions it covers.  Delivery is queue-driven: the message
        travels when the network scheduler drains."""
        self.post_async(dst, KIND_OBJECT_BATCH, payload)
        # Count only after the enqueue succeeded (post_async raises for an
        # unknown peer): sent counters stay reconcilable with the network's.
        self.transport_stats.objects_sent += count
        self.transport_stats.batches_sent += 1

    # ------------------------------------------------------------------
    # receiving (steps 2-5)
    # ------------------------------------------------------------------

    def _handle_object(self, payload: bytes, src: str) -> bytes:
        envelope = self.codec.parse(payload)
        received = self.receive_envelope(envelope, src)
        self._deliver(received)
        return b"OK"

    def _handle_object_batch(self, payload: bytes, src: str) -> bytes:
        """Receive one batch message — possibly a multi-frame container
        (several records a mesh flush coalesced into one message), each
        frame admitted independently."""
        for frame in split_frames(payload):
            self._receive_batch_frame(frame, src)
        return b"OK"

    def _receive_batch_frame(self, frame, src: str) -> None:
        """Admit one batch frame.

        When every type in the frame's header section is already known
        locally, admission is *lazy*: the interest check runs against the
        header's per-value root type and only accepted values are ever
        deserialized — a rejected value costs zero decode work.  A frame
        naming unknown types falls back to the eager path: materialize
        the shared frame once (fetching missing code), then admit each
        value.  The senders that batch (brokers) only batch events that
        already passed a conformance check, so in practice no code is
        fetched for doomed values.
        """
        envelope = self.codec.parse(frame)
        self.transport_stats.batches_received += 1
        if not self._admit_batch_lazy(envelope, src):
            values = self._materialize_batch(envelope, src)
            for value in values:
                self._deliver(self._admit_value(value, src))
        if envelope.ack is not None:
            # The batch carried a durable-delivery token: acknowledge it on
            # the queued one-way path, so cursor advancement flows through
            # the same deterministic scheduler as the delivery itself.
            try:
                self.post_async(src, KIND_DELIVERY_ACK,
                                envelope.ack.encode("utf-8"))
            except UnknownPeerError:
                self.network.stats.record_drop()  # sender left the fabric

    def _admit_batch_lazy(self, envelope: ObjectEnvelope, src: str) -> bool:
        """Header-only batch admission; ``False`` defers to the eager path
        (some type in the frame is not resolvable locally yet)."""
        batch = self.codec.lazy_batch(envelope)
        if not batch.types_known():
            return False
        for index in range(len(batch)):
            self._deliver(self._admit_lazy_value(batch, index, src))
        return True

    def _admit_lazy_value(self, batch: LazyBatch, index: int,
                          src: str) -> ReceivedObject:
        """Interest check on the header's root type BEFORE any decode —
        the lazy twin of :meth:`_admit_value`."""
        self.transport_stats.objects_received += 1
        provider_info = batch.root_type(index)
        interest: Optional[TypeInfo] = None
        result: Optional[ConformanceResult] = None
        if self.interests:
            with self._fetching_from(src):
                for candidate in self.interests:
                    verdict = self.checker.conforms(provider_info, candidate)
                    if verdict.ok:
                        interest = candidate
                        result = verdict
                        break
            if interest is None:
                self.transport_stats.objects_rejected += 1
                return ReceivedObject(
                    src, provider_info.full_name, None, None, None, result
                )
        value = batch.value(index)
        view: Any = value
        if interest is not None and result is not None:
            view = wrap_with_result(value, interest, result, self.checker)
        return ReceivedObject(
            src, provider_info.full_name, value, view, interest, result
        )

    def _deliver(self, received: ReceivedObject) -> None:
        self.inbox.append(received)
        for callback in self._receive_callbacks:
            callback(received)

    def receive_envelope(self, envelope: ObjectEnvelope, src: str) -> ReceivedObject:
        self.transport_stats.objects_received += 1
        root = envelope.root_entry()

        provider_info = self._known_type(root.name, root.guid_text)
        description: Optional[TypeDescription] = None
        if provider_info is None:
            # Step 2-3: ask for the type information (description only).
            description = self._obtain_description(src, root.name, root.download_path)
            if description is None:
                raise ProtocolError(
                    "peer %s cannot describe type %s" % (src, root.name)
                )
            provider_info = description.to_type_info()

        # Rules check against declared interests, on the *description* —
        # before any code is transferred.
        interest: Optional[TypeInfo] = None
        result: Optional[ConformanceResult] = None
        if self.interests:
            with self._fetching_from(src):
                for candidate in self.interests:
                    verdict = self.checker.conforms(provider_info, candidate)
                    if verdict.ok:
                        interest = candidate
                        result = verdict
                        break
            if interest is None:
                # Optimistic win: non-conformant objects never cost a code
                # download.
                self.transport_stats.objects_rejected += 1
                return ReceivedObject(src, root.name, None, None, None, result)

        # Step 4-5: types conform (or no interest filter) — fetch the code
        # and deserialize.
        value = self._materialize(envelope, src)

        view: Any = value
        if interest is not None and result is not None:
            view = wrap_with_result(value, interest, result, self.checker)
        return ReceivedObject(src, root.name, value, view, interest, result)

    def _admit_value(self, value: Any, src: str) -> ReceivedObject:
        """Interest check + view construction for an already-materialized
        value (the per-item tail of :meth:`receive_envelope`, used by the
        batch path where the whole frame decodes up front)."""
        self.transport_stats.objects_received += 1
        provider_info = value.type_info
        interest: Optional[TypeInfo] = None
        result: Optional[ConformanceResult] = None
        if self.interests:
            with self._fetching_from(src):
                for candidate in self.interests:
                    verdict = self.checker.conforms(provider_info, candidate)
                    if verdict.ok:
                        interest = candidate
                        result = verdict
                        break
            if interest is None:
                self.transport_stats.objects_rejected += 1
                return ReceivedObject(
                    src, provider_info.full_name, None, None, None, result
                )
        view: Any = value
        if interest is not None and result is not None:
            view = wrap_with_result(value, interest, result, self.checker)
        return ReceivedObject(
            src, provider_info.full_name, value, view, interest, result
        )

    # -- step 2-3 helpers ---------------------------------------------------

    def _known_type(self, name: str, guid_text: str) -> Optional[TypeInfo]:
        info = self.runtime.registry.get_by_guid(Guid.parse(guid_text))
        if info is not None:
            return info
        info = self.runtime.registry.get(name)
        if info is not None and str(info.guid) == guid_text:
            return info
        return None

    def _obtain_description(
        self, src: str, type_name: str, download_path: Optional[str]
    ) -> Optional[TypeDescription]:
        if self.cache.contains_name(type_name):
            return self.cache.get_by_name(type_name)
        description = self.fetch_description(src, type_name)
        if description is None:
            for source in self._code_fallback_sources(src):
                description = self.fetch_description(source, type_name)
                if description is not None:
                    break
        if description is not None:
            self.cache.put(description)
        return description

    def _code_fallback_sources(self, src: str) -> List[str]:
        """Peers to ask for code/descriptions after ``src`` failed.  The
        base peer knows at most one fallback repository; mesh shards
        extend this with their live siblings — peers re-serve every
        assembly they download, so any shard that admitted the type can
        stand in for an unreachable publisher."""
        if self.code_source is not None and self.code_source != src:
            return [self.code_source]
        return []

    def fetch_description(self, source: str, type_name: str) -> Optional[TypeDescription]:
        try:
            data = self.request(source, KIND_GET_DESCRIPTION,
                                type_name.encode("utf-8"), retries=self.max_retries)
        except MessageDropped:
            raise  # loss is not "unknown type"; let the caller retry/report
        except NetworkError:
            return None
        self.transport_stats.descriptions_fetched += 1
        return deserialize_description(data)

    def _fetching_from(self, src: str):
        """Context manager: route the resolver's description fetches to the
        sending peer (nested member types of rule recursion, Section 5.2)."""
        return _FetchScope(self, src)

    # -- step 4-5 helpers ---------------------------------------------------

    def fetch_assembly(self, source: str, path_or_type: str) -> Optional[Assembly]:
        try:
            data = self.request(source, KIND_GET_ASSEMBLY,
                                path_or_type.encode("utf-8"), retries=self.max_retries)
        except MessageDropped:
            raise
        except NetworkError:
            return None
        self.transport_stats.assemblies_fetched += 1
        return Assembly.from_wire(self._wire_codec.deserialize(data))

    def _materialize(self, envelope: ObjectEnvelope, src: str) -> Any:
        """Deserialize, downloading assemblies for unknown types on demand."""
        return self._materialize_with(envelope, src, self.codec.unwrap)

    def _materialize_batch(self, envelope: ObjectEnvelope, src: str) -> List[Any]:
        """Batch variant: one fetch loop covers every value in the frame
        (a single unknown type is downloaded once for the whole batch)."""
        return self._materialize_with(envelope, src, self.codec.unwrap_batch)

    def _materialize_with(self, envelope: ObjectEnvelope, src: str,
                          unwrap: Callable[[ObjectEnvelope], Any]) -> Any:
        paths = {entry.name: entry.download_path for entry in envelope.type_entries}
        for _ in range(_MAX_CODE_FETCHES):
            try:
                return unwrap(envelope)
            except UnknownTypeError as missing:
                self.transport_stats.unknown_type_retries += 1
                target = paths.get(missing.type_name) or missing.type_name
                assembly = self.fetch_assembly(src, target)
                if assembly is None:
                    for source in self._code_fallback_sources(src):
                        assembly = self.fetch_assembly(source, target)
                        if assembly is not None:
                            break
                if assembly is None:
                    raise ProtocolError(
                        "cannot obtain code for type %s (asked %s)"
                        % (missing.type_name, src)
                    )
                # shadow=True: a different *version* of an already-known
                # name coexists under its own identity.
                self.runtime.load_assembly(assembly, shadow=True)
                # Peers propagate code: once downloaded, an assembly is
                # re-served to other peers (needed e.g. by pub/sub brokers).
                self._hosted[assembly.download_path] = assembly
                self._hosted[assembly.name] = assembly
        raise ProtocolError("too many unknown-type retries; giving up")

    # ------------------------------------------------------------------
    # serving (the sender side of steps 2-5)
    # ------------------------------------------------------------------

    def _serve_description(self, payload: bytes, src: str) -> bytes:
        type_name = payload.decode("utf-8")
        info = self.runtime.registry.get(type_name)
        if info is None:
            return error_response("no description for %s" % type_name)
        return serialize_description_bytes(TypeDescription.from_type_info(info))

    def _serve_assembly(self, payload: bytes, src: str) -> bytes:
        key = payload.decode("utf-8")
        assembly = self._hosted.get(key)
        if assembly is None:
            # The key may be a type name: find the hosting assembly.
            for hosted in self._hosted.values():
                if hosted.find_type(key) is not None:
                    assembly = hosted
                    break
        if assembly is None:
            return error_response("no assembly for %s" % key)
        return self._wire_codec.serialize(assembly.to_wire())
