"""Runtime object model: instances of CTS types.

A :class:`CtsInstance` is what a loaded type produces: a bag of fields plus a
link back to the runtime for method dispatch.  Instances implement the small
``_repro_invoke`` protocol shared with dynamic proxies, so IL code can call
methods on either without knowing which it holds.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cts.types import TypeInfo
    from .loader import Runtime


class CtsError(Exception):
    """Base class for runtime object errors."""


class UnknownFieldError(CtsError, AttributeError):
    pass


class UnknownMethodError(CtsError, AttributeError):
    pass


class CtsInstance:
    """An instance of a CTS type, executed by a :class:`Runtime`.

    Fields live in a plain dict; methods dispatch through the owning runtime
    so that IL bodies, native Python bodies and inherited members all work.
    Python-level attribute syntax is supported for ergonomics: reading an
    attribute returns the field value, and calling ``instance.m(...)`` runs
    method ``m``.
    """

    __slots__ = ("type_info", "fields", "_runtime")

    def __init__(self, type_info: "TypeInfo", runtime: "Runtime", fields: Dict[str, Any]):
        object.__setattr__(self, "type_info", type_info)
        object.__setattr__(self, "_runtime", runtime)
        object.__setattr__(self, "fields", fields)

    # -- explicit protocol --------------------------------------------------

    def get_field(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise UnknownFieldError(
                "%s has no field %r" % (self.type_info.full_name, name)
            )

    def set_field(self, name: str, value: Any) -> None:
        if name not in self.fields:
            raise UnknownFieldError(
                "%s has no field %r" % (self.type_info.full_name, name)
            )
        self.fields[name] = value

    def invoke(self, method_name: str, *args: Any) -> Any:
        return self._runtime.invoke(self, method_name, list(args))

    def _repro_invoke(self, method_name: str, args: Sequence[Any]) -> Any:
        return self._runtime.invoke(self, method_name, list(args))

    def _repro_type(self) -> "TypeInfo":
        return self.type_info

    # -- pythonic sugar --------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        if name in self.fields:
            return self.fields[name]
        if self._runtime.has_method(self.type_info, name):
            def bound(*args: Any) -> Any:
                return self._runtime.invoke(self, name, list(args))

            bound.__name__ = name
            return bound
        raise UnknownMethodError(
            "%s has no field or method %r" % (self.type_info.full_name, name)
        )

    def __setattr__(self, name: str, value: Any) -> None:
        if name in CtsInstance.__slots__:
            object.__setattr__(self, name, value)
        else:
            self.set_field(name, value)

    def __repr__(self) -> str:
        inner = ", ".join("%s=%r" % kv for kv in sorted(self.fields.items()))
        return "<%s {%s}>" % (self.type_info.full_name, inner)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CtsInstance):
            return NotImplemented
        return (
            self.type_info.guid == other.type_info.guid
            and self.fields == other.fields
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)


def is_invokable(value: Any) -> bool:
    """True when ``value`` speaks the ``_repro_invoke`` protocol."""
    return hasattr(value, "_repro_invoke")
