"""The runtime: loads assemblies and executes loaded types.

This plays the role of the CLR in the paper's stack.  "Downloading the code"
over the optimistic protocol ends with :meth:`Runtime.load_assembly`; from
then on the peer can deserialize and invoke instances of the new types.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..cts.assembly import Assembly
from ..cts.members import TypeRef, Visibility
from ..cts.registry import TypeNotFoundError, TypeRegistry
from ..cts.types import BOOL, DOUBLE, FLOAT, INT, LONG, STRING, TypeInfo
from ..il.instructions import MethodBody
from ..il.interp import ExecutionEnvironment, Interpreter
from .objects import CtsInstance, UnknownFieldError, UnknownMethodError, is_invokable


class AbstractMethodError(Exception):
    """Raised when invoking a method that has a signature but no body."""


class ConstructorNotFoundError(Exception):
    pass


class _RuntimeEnvironment(ExecutionEnvironment):
    """Bridges the IL interpreter to the runtime's object model."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime

    def get_field(self, receiver: Any, name: str) -> Any:
        if isinstance(receiver, CtsInstance):
            return receiver.get_field(name)
        if receiver is None:
            raise UnknownFieldError("null reference: cannot read field %r" % name)
        if isinstance(receiver, (list, str, dict)) and name in ("Length", "Count"):
            return len(receiver)
        return getattr(receiver, name)

    def set_field(self, receiver: Any, name: str, value: Any) -> None:
        if isinstance(receiver, CtsInstance):
            receiver.set_field(name, value)
            return
        if receiver is None:
            raise UnknownFieldError("null reference: cannot write field %r" % name)
        setattr(receiver, name, value)

    def call_method(self, receiver: Any, name: str, args: Sequence[Any]) -> Any:
        if is_invokable(receiver):
            return receiver._repro_invoke(name, args)
        if receiver is None:
            raise UnknownMethodError("null reference: cannot call %r" % name)
        return getattr(receiver, name)(*args)

    def new_instance(self, type_name: str, args: Sequence[Any]) -> Any:
        return self.runtime.new_instance(type_name, list(args))


#: Default values of primitive-typed fields (CLR semantics: numeric fields
#: start at zero, booleans at false; reference fields at null).
_FIELD_DEFAULTS = {
    INT.full_name: 0,
    LONG.full_name: 0,
    FLOAT.full_name: 0.0,
    DOUBLE.full_name: 0.0,
    BOOL.full_name: False,
}


def default_field_value(type_ref: Optional[TypeRef]) -> Any:
    if type_ref is None:
        return None
    return _FIELD_DEFAULTS.get(type_ref.full_name)


class Runtime:
    """Owns a type registry and executes IL or native method bodies."""

    def __init__(self, registry: Optional[TypeRegistry] = None, max_steps: int = 1_000_000):
        self.registry = registry if registry is not None else TypeRegistry()
        self._interpreter = Interpreter(_RuntimeEnvironment(self), max_steps=max_steps)
        self._loaded_assemblies: Dict[str, Assembly] = {}

    # -- loading ------------------------------------------------------------

    def load_type(self, info: TypeInfo, replace: bool = False,
                  shadow: bool = False) -> TypeInfo:
        return self.registry.register(info, replace=replace, shadow=shadow)

    def load_assembly(self, assembly: Assembly, replace: bool = False,
                      shadow: bool = False) -> None:
        for info in assembly.types:
            self.load_type(info, replace=replace, shadow=shadow)
        self._loaded_assemblies[assembly.name] = assembly

    def has_assembly(self, name: str) -> bool:
        return name in self._loaded_assemblies

    def loaded_assemblies(self) -> List[str]:
        return sorted(self._loaded_assemblies)

    # -- type walking ------------------------------------------------------------

    def _type_chain(self, info: TypeInfo) -> List[TypeInfo]:
        """The type followed by its resolvable superclass chain."""
        chain = [info]
        current = info
        seen = {info.full_name}
        while current.superclass is not None:
            parent = self.registry.try_resolve(current.superclass)
            if parent is None or parent.full_name in seen:
                break
            chain.append(parent)
            seen.add(parent.full_name)
            current = parent
        return chain

    def find_method(self, info: TypeInfo, name: str, arity: Optional[int] = None):
        for holder in self._type_chain(info):
            method = holder.find_method(name, arity)
            if method is not None:
                return method
        return None

    def has_method(self, info: TypeInfo, name: str) -> bool:
        return self.find_method(info, name) is not None

    def all_fields(self, info: TypeInfo):
        fields = []
        seen = set()
        for holder in self._type_chain(info):
            for field in holder.fields:
                if field.name not in seen:
                    seen.add(field.name)
                    fields.append(field)
        return fields

    # -- instantiation ------------------------------------------------------------

    def new_instance(self, type_name: str, args: Optional[List[Any]] = None) -> CtsInstance:
        args = args if args is not None else []
        info = self.registry.require(type_name)
        return self.instantiate(info, args)

    def instantiate(self, info: TypeInfo, args: Optional[List[Any]] = None) -> CtsInstance:
        args = args if args is not None else []
        fields = {f.name: default_field_value(f.type_ref) for f in self.all_fields(info)}
        instance = CtsInstance(info, self, fields)
        ctor = None
        for holder in self._type_chain(info):
            ctor = holder.find_constructor(len(args))
            if ctor is not None:
                break
        if ctor is None:
            if args:
                raise ConstructorNotFoundError(
                    "%s has no constructor of arity %d" % (info.full_name, len(args))
                )
            return instance  # implicit default constructor
        self._run_body(ctor.body, instance, args, "%s..ctor" % info.full_name)
        return instance

    def raw_instance(self, info: TypeInfo, fields: Dict[str, Any]) -> CtsInstance:
        """Create an instance without running a constructor (deserialization)."""
        base = {f.name: default_field_value(f.type_ref) for f in self.all_fields(info)}
        base.update(fields)
        return CtsInstance(info, self, base)

    # -- invocation ------------------------------------------------------------

    def invoke(self, receiver: CtsInstance, method_name: str, args: Optional[List[Any]] = None) -> Any:
        args = args if args is not None else []
        info = receiver.type_info
        method = self.find_method(info, method_name, arity=len(args))
        if method is None:
            method = self.find_method(info, method_name)
        if method is None:
            raise UnknownMethodError(
                "%s has no method %r" % (info.full_name, method_name)
            )
        qualified = "%s.%s" % (info.full_name, method_name)
        return self._run_body(method.body, receiver, args, qualified)

    def _run_body(self, body: Any, self_obj: Any, args: List[Any], what: str) -> Any:
        if body is None:
            raise AbstractMethodError("%s has no body" % what)
        if isinstance(body, MethodBody):
            return self._interpreter.execute(body, self_obj, args)
        if callable(body):
            return body(self_obj, *args)
        raise TypeError("unsupported body kind for %s: %r" % (what, type(body)))
