"""Runtime: assembly loading and execution of CTS types."""

from .loader import (
    AbstractMethodError,
    ConstructorNotFoundError,
    Runtime,
)
from .objects import (
    CtsError,
    CtsInstance,
    UnknownFieldError,
    UnknownMethodError,
    is_invokable,
)

__all__ = [
    "AbstractMethodError",
    "ConstructorNotFoundError",
    "CtsError",
    "CtsInstance",
    "Runtime",
    "UnknownFieldError",
    "UnknownMethodError",
    "is_invokable",
]
