"""Type model of the common type system (CTS).

This is the substrate the paper gets for free from .NET: a single type
system into which every supported language compiles.  :class:`TypeInfo` is
the reflective view of a type — exactly the information the implicit
structural conformance rules of Section 4 quantify over.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence

from .identity import Guid, type_guid
from .members import (
    ConstructorInfo,
    FieldInfo,
    MethodInfo,
    Modifiers,
    TypeRef,
    Visibility,
)


class TypeKind(enum.Enum):
    CLASS = "class"
    INTERFACE = "interface"
    PRIMITIVE = "primitive"
    ARRAY = "array"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TypeInfo:
    """The reflective description of a type.

    Structure means: "the type name, the name of its supertypes, the name and
    the type of its fields and the signature of its methods" (Section 4.1) —
    plus constructors, which rule (v) treats like return-less methods.
    """

    def __init__(
        self,
        full_name: str,
        kind: TypeKind = TypeKind.CLASS,
        superclass: Optional[TypeRef] = None,
        interfaces: Sequence[TypeRef] = (),
        fields: Sequence[FieldInfo] = (),
        methods: Sequence[MethodInfo] = (),
        constructors: Sequence[ConstructorInfo] = (),
        assembly_name: str = "default",
        language: str = "cts",
        download_path: Optional[str] = None,
        guid: Optional[Guid] = None,
        element: Optional[TypeRef] = None,
    ):
        self.full_name = full_name
        self.kind = kind
        self.superclass = superclass
        self.interfaces = list(interfaces)
        self.fields = list(fields)
        self.methods = list(methods)
        self.constructors = list(constructors)
        self.assembly_name = assembly_name
        self.language = language
        self.download_path = download_path
        self.element = element  # set for TypeKind.ARRAY only
        self._fingerprint: Optional[str] = None
        self.guid = guid if guid is not None else type_guid(
            assembly_name, full_name, self.fingerprint()
        )

    # -- naming ----------------------------------------------------------

    @property
    def namespace(self) -> str:
        head, _, __ = self.full_name.rpartition(".")
        return head

    @property
    def simple_name(self) -> str:
        return self.full_name.rpartition(".")[2]

    # -- structure -------------------------------------------------------

    @property
    def is_primitive(self) -> bool:
        return self.kind is TypeKind.PRIMITIVE

    @property
    def is_interface(self) -> bool:
        return self.kind is TypeKind.INTERFACE

    @property
    def is_array(self) -> bool:
        return self.kind is TypeKind.ARRAY

    def public_fields(self) -> List[FieldInfo]:
        return [f for f in self.fields if f.visibility is Visibility.PUBLIC]

    def public_methods(self) -> List[MethodInfo]:
        return [m for m in self.methods if m.visibility is Visibility.PUBLIC]

    def public_constructors(self) -> List[ConstructorInfo]:
        return [c for c in self.constructors if c.visibility is Visibility.PUBLIC]

    def find_field(self, name: str) -> Optional[FieldInfo]:
        for field in self.fields:
            if field.name == name:
                return field
        return None

    def find_methods(self, name: str) -> List[MethodInfo]:
        return [m for m in self.methods if m.name == name]

    def find_method(self, name: str, arity: Optional[int] = None) -> Optional[MethodInfo]:
        for method in self.methods:
            if method.name == name and (arity is None or method.arity == arity):
                return method
        return None

    def find_constructor(self, arity: int) -> Optional[ConstructorInfo]:
        for ctor in self.constructors:
            if ctor.arity == arity:
                return ctor
        return None

    def referenced_type_names(self) -> List[str]:
        """Full names of every type this type's surface mentions.

        Used by type descriptions (which are non-recursive: referenced types
        are named, not embedded) and by the transport protocol to know which
        descriptions a receiver may need to fetch.
        """
        names: List[str] = []
        seen = set()

        def add(ref: Optional[TypeRef]) -> None:
            if ref is not None and ref.full_name not in seen:
                seen.add(ref.full_name)
                names.append(ref.full_name)

        add(self.superclass)
        for iface in self.interfaces:
            add(iface)
        for field in self.fields:
            add(field.type_ref)
        for method in self.methods:
            add(method.return_type)
            for param in method.parameters:
                add(param.type_ref)
        for ctor in self.constructors:
            for param in ctor.parameters:
                add(param.type_ref)
        return names

    def fingerprint(self) -> str:
        """A canonical structural summary used to derive the type identity.

        Case-sensitive and modifier-aware: two types are *equivalent*
        (definition 3) only when they are interchangeable without any
        translation — case-insensitive or renamed matches go through the
        full structural rules instead, producing a witness mapping.

        Memoised: the structure is final once the identity is derived, so
        the summary is computed at most once per type.
        """
        cached = self._fingerprint
        if cached is None:
            cached = self._compute_fingerprint()
            self._fingerprint = cached
        return cached

    def _compute_fingerprint(self) -> str:
        parts: List[str] = [self.kind.value, self.full_name]
        if self.element is not None:
            parts.append("element:%s" % self.element.full_name)
        if self.superclass is not None:
            parts.append("super:%s" % self.superclass.full_name)
        for iface in sorted(i.full_name for i in self.interfaces):
            parts.append("iface:%s" % iface)
        for field in sorted(self.fields, key=lambda f: f.name):
            parts.append(
                "field:%s:%s:%s:%s"
                % (
                    field.name,
                    field.type_ref.full_name,
                    field.visibility.value,
                    ",".join(field.modifiers.tokens()),
                )
            )
        for method in sorted(self.methods, key=lambda m: (m.name, m.arity)):
            parts.append(
                "method:%s:%s:%s:%s:%s"
                % (
                    method.name,
                    ",".join(method.parameter_type_names()),
                    method.return_type.full_name,
                    method.visibility.value,
                    ",".join(method.modifiers.tokens()),
                )
            )
        for ctor in sorted(self.constructors, key=lambda c: c.arity):
            parts.append(
                "ctor:%s:%s"
                % (",".join(ctor.parameter_type_names()), ctor.visibility.value)
            )
        return "|".join(parts)

    # -- explicit conformance (ordinary subtyping) ------------------------

    def explicit_supertype_names(self) -> List[str]:
        """Names of declared supertypes reachable through resolved refs."""
        names: List[str] = []
        stack: List[TypeRef] = []
        if self.superclass is not None:
            stack.append(self.superclass)
        stack.extend(self.interfaces)
        seen = set()
        while stack:
            ref = stack.pop()
            if ref.full_name in seen:
                continue
            seen.add(ref.full_name)
            names.append(ref.full_name)
            resolved = ref.resolved
            if resolved is not None:
                if resolved.superclass is not None:
                    stack.append(resolved.superclass)
                stack.extend(resolved.interfaces)
        return names

    def __repr__(self) -> str:
        return "TypeInfo(%s %s)" % (self.kind, self.full_name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeInfo):
            return NotImplemented
        return self.guid == other.guid

    def __hash__(self) -> int:
        return hash(self.guid)


# ---------------------------------------------------------------------------
# Primitive and root types.  The CTS mirrors .NET's: a single root ``Object``
# plus a fixed set of primitives shared by every language frontend.
# ---------------------------------------------------------------------------


def _primitive(name: str) -> TypeInfo:
    return TypeInfo(name, kind=TypeKind.PRIMITIVE, assembly_name="system")


OBJECT = TypeInfo("System.Object", kind=TypeKind.CLASS, assembly_name="system")
VOID = _primitive("System.Void")
BOOL = _primitive("System.Boolean")
INT = _primitive("System.Int32")
LONG = _primitive("System.Int64")
FLOAT = _primitive("System.Single")
DOUBLE = _primitive("System.Double")
STRING = _primitive("System.String")
CHAR = _primitive("System.Char")

PRIMITIVES: Dict[str, TypeInfo] = {
    t.full_name: t
    for t in (VOID, BOOL, INT, LONG, FLOAT, DOUBLE, STRING, CHAR)
}

BUILTINS: Dict[str, TypeInfo] = dict(PRIMITIVES)
BUILTINS[OBJECT.full_name] = OBJECT

#: Short aliases accepted by language frontends and the type builder.
PRIMITIVE_ALIASES: Dict[str, TypeInfo] = {
    "void": VOID,
    "bool": BOOL,
    "boolean": BOOL,
    "int": INT,
    "integer": INT,
    "long": LONG,
    "float": FLOAT,
    "single": FLOAT,
    "double": DOUBLE,
    "string": STRING,
    "char": CHAR,
    "object": OBJECT,
}


#: Memoised array types keyed by element full name.
_ARRAY_CACHE: Dict[str, TypeInfo] = {}


def array_of(element) -> TypeInfo:
    """The array type over ``element`` (a :class:`TypeInfo` or resolved ref).

    Array types are structural: the same element type always yields the
    same array type object (and identity).  Conformance between arrays is
    covariant in the element (CTS semantics).
    """
    if isinstance(element, TypeRef):
        if element.resolved is None:
            raise ValueError("array_of requires a resolved element")
        element = element.resolved
    cached = _ARRAY_CACHE.get(element.full_name)
    if cached is not None:
        return cached
    info = TypeInfo(
        element.full_name + "[]",
        kind=TypeKind.ARRAY,
        superclass=TypeRef.to(OBJECT),
        assembly_name="system",
        element=TypeRef.to(element),
    )
    _ARRAY_CACHE[element.full_name] = info
    return info


def lookup_builtin(name: str) -> Optional[TypeInfo]:
    """Resolve a builtin by full name or by language-level alias.

    Array spellings (``int[]``, ``System.String[]``, nested ``int[][]``)
    resolve when their element resolves.
    """
    if name.endswith("[]"):
        element = lookup_builtin(name[:-2])
        if element is None:
            return None
        return array_of(element)
    if name in BUILTINS:
        return BUILTINS[name]
    return PRIMITIVE_ALIASES.get(name.lower())


def builtin_ref(name: str) -> TypeRef:
    """A resolved :class:`TypeRef` to a builtin; raises if unknown."""
    info = lookup_builtin(name)
    if info is None:
        raise KeyError("unknown builtin type: %r" % name)
    return TypeRef.to(info)


def python_value_type(value: object) -> TypeInfo:
    """Map a Python runtime value to its CTS primitive type."""
    if value is None:
        return OBJECT
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return STRING
    return OBJECT
