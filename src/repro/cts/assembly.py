"""Assemblies: named, versioned units of deployable code.

An assembly bundles CTS types *with their IL bodies* — it is "the code" that
the optimistic protocol downloads only after a successful conformance check
(step 4-5 of Figure 1).  Assemblies have a canonical wire form (plain dicts
of primitives) so any of our serializers can ship them and so their size can
be accounted by the simulated network.

Native-Python method bodies (from ``python_bridge`` or ``TypeBuilder`` with
callables) are not portable; assemblies containing them refuse to serialize,
mirroring how a real platform cannot ship opaque native code.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..il.instructions import MethodBody
from .identity import Guid
from .members import (
    ConstructorInfo,
    FieldInfo,
    MethodInfo,
    Modifiers,
    ParameterInfo,
    TypeRef,
    Visibility,
)
from .types import TypeInfo, TypeKind


class NotSerializableError(TypeError):
    """An assembly containing native (non-IL) bodies cannot be shipped."""


# ---------------------------------------------------------------------------
# TypeRef / member wire forms
# ---------------------------------------------------------------------------


def ref_to_wire(ref: Optional[TypeRef]) -> Optional[Dict[str, Any]]:
    if ref is None:
        return None
    path = ref.download_path
    if path is None and ref.is_resolved:
        path = ref.resolved.download_path
    return {
        "name": ref.full_name,
        "guid": str(ref.guid) if ref.guid is not None else None,
        "path": path,
    }


def ref_from_wire(data: Optional[Dict[str, Any]]) -> Optional[TypeRef]:
    if data is None:
        return None
    guid = Guid.parse(data["guid"]) if data.get("guid") else None
    return TypeRef(data["name"], guid=guid, download_path=data.get("path"))


def _field_to_wire(field: FieldInfo) -> Dict[str, Any]:
    return {
        "name": field.name,
        "type": ref_to_wire(field.type_ref),
        "visibility": field.visibility.value,
        "modifiers": field.modifiers.tokens(),
    }


def _field_from_wire(data: Dict[str, Any]) -> FieldInfo:
    return FieldInfo(
        data["name"],
        ref_from_wire(data["type"]),
        visibility=Visibility(data["visibility"]),
        modifiers=Modifiers.from_tokens(data.get("modifiers", [])),
    )


def _params_to_wire(params: Sequence[ParameterInfo]) -> List[Dict[str, Any]]:
    return [{"name": p.name, "type": ref_to_wire(p.type_ref)} for p in params]


def _params_from_wire(data: Sequence[Dict[str, Any]]) -> List[ParameterInfo]:
    return [ParameterInfo(d["name"], ref_from_wire(d["type"])) for d in data]


def _body_to_wire(body: Any, where: str, include_bodies: bool) -> Optional[Dict[str, Any]]:
    if body is None or not include_bodies:
        return None
    if isinstance(body, MethodBody):
        return body.to_wire()
    raise NotSerializableError(
        "%s has a native (non-IL) body and cannot be serialized" % where
    )


def _method_to_wire(method: MethodInfo, type_name: str, include_bodies: bool) -> Dict[str, Any]:
    return {
        "name": method.name,
        "params": _params_to_wire(method.parameters),
        "return": ref_to_wire(method.return_type),
        "visibility": method.visibility.value,
        "modifiers": method.modifiers.tokens(),
        "body": _body_to_wire(
            method.body, "%s.%s" % (type_name, method.name), include_bodies
        ),
    }


def _method_from_wire(data: Dict[str, Any]) -> MethodInfo:
    body = MethodBody.from_wire(data["body"]) if data.get("body") else None
    return MethodInfo(
        data["name"],
        _params_from_wire(data.get("params", [])),
        ref_from_wire(data["return"]),
        visibility=Visibility(data["visibility"]),
        modifiers=Modifiers.from_tokens(data.get("modifiers", [])),
        body=body,
    )


def _ctor_to_wire(ctor: ConstructorInfo, type_name: str, include_bodies: bool) -> Dict[str, Any]:
    return {
        "params": _params_to_wire(ctor.parameters),
        "visibility": ctor.visibility.value,
        "body": _body_to_wire(ctor.body, "%s..ctor" % type_name, include_bodies),
    }


def _ctor_from_wire(data: Dict[str, Any]) -> ConstructorInfo:
    body = MethodBody.from_wire(data["body"]) if data.get("body") else None
    return ConstructorInfo(
        _params_from_wire(data.get("params", [])),
        visibility=Visibility(data["visibility"]),
        body=body,
    )


# ---------------------------------------------------------------------------
# TypeInfo wire form
# ---------------------------------------------------------------------------


def type_to_wire(info: TypeInfo, include_bodies: bool = True) -> Dict[str, Any]:
    """Encode a full type (optionally with IL bodies) as plain data."""
    return {
        "full_name": info.full_name,
        "kind": info.kind.value,
        "element": ref_to_wire(info.element),
        "guid": str(info.guid),
        "assembly": info.assembly_name,
        "language": info.language,
        "download_path": info.download_path,
        "superclass": ref_to_wire(info.superclass),
        "interfaces": [ref_to_wire(r) for r in info.interfaces],
        "fields": [_field_to_wire(f) for f in info.fields],
        "methods": [
            _method_to_wire(m, info.full_name, include_bodies) for m in info.methods
        ],
        "constructors": [
            _ctor_to_wire(c, info.full_name, include_bodies) for c in info.constructors
        ],
    }


def type_from_wire(data: Dict[str, Any]) -> TypeInfo:
    """Decode a type, preserving its original identity."""
    return TypeInfo(
        data["full_name"],
        kind=TypeKind(data["kind"]),
        superclass=ref_from_wire(data.get("superclass")),
        interfaces=[ref_from_wire(r) for r in data.get("interfaces", [])],
        fields=[_field_from_wire(f) for f in data.get("fields", [])],
        methods=[_method_from_wire(m) for m in data.get("methods", [])],
        constructors=[_ctor_from_wire(c) for c in data.get("constructors", [])],
        assembly_name=data.get("assembly", "default"),
        language=data.get("language", "cts"),
        download_path=data.get("download_path"),
        guid=Guid.parse(data["guid"]),
        element=ref_from_wire(data.get("element")),
    )


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


class Assembly:
    """A named unit of code: types with executable bodies.

    ``download_path`` is the address a :class:`~repro.net.codeserver.CodeRepository`
    serves the assembly under — the string that travels inside object
    envelopes so receivers know where to fetch code from.
    """

    def __init__(
        self,
        name: str,
        types: Sequence[TypeInfo],
        version: str = "1.0.0",
        download_path: Optional[str] = None,
    ):
        self.name = name
        self.types = list(types)
        self.version = version
        self.download_path = download_path or "repo://%s/%s" % (name, version)
        for info in self.types:
            info.assembly_name = name
            if info.download_path is None:
                info.download_path = self.download_path
        self._link_siblings()

    def _link_siblings(self) -> None:
        """Resolve intra-assembly type references (the "link" step).

        A type's reference to a sibling declared in the same assembly is
        bound eagerly, so descriptions built from these types carry the
        sibling's identity and download path.
        """
        by_name = {info.full_name: info for info in self.types}

        def link(ref: Optional[TypeRef]) -> None:
            if ref is not None and not ref.is_resolved and ref.full_name in by_name:
                ref.resolve_with(by_name[ref.full_name])

        for info in self.types:
            link(info.superclass)
            for iface in info.interfaces:
                link(iface)
            for field in info.fields:
                link(field.type_ref)
            for method in info.methods:
                link(method.return_type)
                for param in method.parameters:
                    link(param.type_ref)
            for ctor in info.constructors:
                for param in ctor.parameters:
                    link(param.type_ref)

    def type_names(self) -> List[str]:
        return [t.full_name for t in self.types]

    def find_type(self, full_name: str) -> Optional[TypeInfo]:
        for info in self.types:
            if info.full_name == full_name:
                return info
        return None

    def to_wire(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "version": self.version,
            "download_path": self.download_path,
            "types": [type_to_wire(t, include_bodies=True) for t in self.types],
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "Assembly":
        return cls(
            data["name"],
            [type_from_wire(t) for t in data.get("types", [])],
            version=data.get("version", "1.0.0"),
            download_path=data.get("download_path"),
        )

    def __repr__(self) -> str:
        return "Assembly(%s v%s, %d types)" % (self.name, self.version, len(self.types))
