"""Type identity: 128-bit globally unique identifiers for types.

The paper relies on "the concept of type identity provided by the underlying
platform. As a matter of example, .NET provides globally unique identifiers
(GUID) of 128 bits long for types" (Section 5, footnote 5).

We reproduce that concept with a :class:`Guid` value type.  Identities are
*deterministic*: a GUID is derived from the assembly name, the full type name
and a structural fingerprint, so the same declaration compiled on two peers
yields the same identity — which is exactly what lets a receiver recognise
"I have already seen this type" without a central authority.
"""

from __future__ import annotations

import hashlib


class Guid:
    """A 128-bit identifier, formatted like a .NET GUID.

    Instances are immutable, hashable and comparable.  Construct with 16 raw
    bytes, or use :meth:`from_name` / :meth:`parse`.
    """

    __slots__ = ("_bytes",)

    def __init__(self, raw: bytes):
        if not isinstance(raw, bytes) or len(raw) != 16:
            raise ValueError("Guid requires exactly 16 bytes, got %r" % (raw,))
        self._bytes = raw

    @classmethod
    def from_name(cls, name: str) -> "Guid":
        """Derive a deterministic GUID from an arbitrary string name."""
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        return cls(digest[:16])

    @classmethod
    def parse(cls, text: str) -> "Guid":
        """Parse the canonical ``8-4-4-4-12`` hex representation."""
        hexdigits = text.replace("-", "").strip().lower()
        if len(hexdigits) != 32:
            raise ValueError("not a GUID: %r" % (text,))
        return cls(bytes.fromhex(hexdigits))

    @property
    def bytes(self) -> bytes:
        return self._bytes

    def __str__(self) -> str:
        h = self._bytes.hex()
        return "-".join((h[0:8], h[8:12], h[12:16], h[16:20], h[20:32]))

    def __repr__(self) -> str:
        return "Guid(%s)" % self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Guid):
            return NotImplemented
        return self._bytes == other._bytes

    def __hash__(self) -> int:
        return hash(self._bytes)

    def __lt__(self, other: "Guid") -> bool:
        if not isinstance(other, Guid):
            return NotImplemented
        return self._bytes < other._bytes


def type_guid(assembly_name: str, full_name: str, fingerprint: str = "") -> Guid:
    """Compute the identity of a type.

    The identity binds the type to its assembly and its structure: two
    declarations with the same name but different members get different
    identities, which forces the conformance machinery (rather than identity
    equality) to reconcile them — the behaviour the paper needs.
    """
    return Guid.from_name("cts-type:%s:%s:%s" % (assembly_name, full_name, fingerprint))
