"""Fluent programmatic construction of CTS types.

Language frontends cover source-level authoring; :class:`TypeBuilder` covers
programmatic authoring — handy in tests, benchmarks and anywhere a type must
be synthesised (e.g. the scaling benchmarks generate families of types with
M methods and F fields).

Bodies may be IL (:class:`~repro.il.instructions.MethodBody`) or native
Python callables of shape ``f(self_instance, *args)``.  Native bodies run
fine locally but make the containing assembly non-serializable.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Union

from ..il.instructions import MethodBody
from .members import (
    ConstructorInfo,
    FieldInfo,
    MethodInfo,
    Modifiers,
    ParameterInfo,
    TypeRef,
    Visibility,
)
from .types import OBJECT, TypeInfo, TypeKind, lookup_builtin

Body = Union[MethodBody, Callable[..., Any], None]


def _as_ref(type_spec: Union[str, TypeInfo, TypeRef]) -> TypeRef:
    if isinstance(type_spec, TypeRef):
        return type_spec
    if isinstance(type_spec, TypeInfo):
        return TypeRef.to(type_spec)
    builtin = lookup_builtin(type_spec)
    if builtin is not None:
        return TypeRef.to(builtin)
    return TypeRef(type_spec)


def _as_params(params: Sequence) -> List[ParameterInfo]:
    out: List[ParameterInfo] = []
    for index, spec in enumerate(params):
        if isinstance(spec, ParameterInfo):
            out.append(spec)
        elif isinstance(spec, tuple):
            name, type_spec = spec
            out.append(ParameterInfo(name, _as_ref(type_spec)))
        else:
            out.append(ParameterInfo("arg%d" % index, _as_ref(spec)))
    return out


class TypeBuilder:
    """Builds a :class:`TypeInfo` step by step.

    Example::

        person = (
            TypeBuilder("demo.Person")
            .field("name", "string", visibility="private")
            .method("GetName", [], "string", body=lambda self: self.get_field("name"))
            .method("SetName", [("n", "string")], "void",
                    body=lambda self, n: self.set_field("name", n))
            .ctor([("n", "string")], body=lambda self, n: self.set_field("name", n))
            .build()
        )
    """

    def __init__(
        self,
        full_name: str,
        kind: TypeKind = TypeKind.CLASS,
        assembly_name: str = "default",
        language: str = "cts",
    ):
        self.full_name = full_name
        self.kind = kind
        self.assembly_name = assembly_name
        self.language = language
        self._superclass: Optional[TypeRef] = None
        self._interfaces: List[TypeRef] = []
        self._fields: List[FieldInfo] = []
        self._methods: List[MethodInfo] = []
        self._ctors: List[ConstructorInfo] = []

    # -- heritage ------------------------------------------------------------

    def extends(self, type_spec: Union[str, TypeInfo, TypeRef]) -> "TypeBuilder":
        self._superclass = _as_ref(type_spec)
        return self

    def implements(self, *type_specs: Union[str, TypeInfo, TypeRef]) -> "TypeBuilder":
        self._interfaces.extend(_as_ref(t) for t in type_specs)
        return self

    # -- members ------------------------------------------------------------

    def field(
        self,
        name: str,
        type_spec: Union[str, TypeInfo, TypeRef],
        visibility: str = "public",
        static: bool = False,
    ) -> "TypeBuilder":
        modifiers = Modifiers.STATIC if static else Modifiers.NONE
        self._fields.append(
            FieldInfo(name, _as_ref(type_spec), Visibility(visibility), modifiers)
        )
        return self

    def method(
        self,
        name: str,
        params: Sequence,
        return_type: Union[str, TypeInfo, TypeRef] = "void",
        body: Body = None,
        visibility: str = "public",
        static: bool = False,
        abstract: bool = False,
    ) -> "TypeBuilder":
        modifiers = Modifiers.NONE
        if static:
            modifiers |= Modifiers.STATIC
        if abstract:
            modifiers |= Modifiers.ABSTRACT
        self._methods.append(
            MethodInfo(
                name,
                _as_params(params),
                _as_ref(return_type),
                visibility=Visibility(visibility),
                modifiers=modifiers,
                body=body,
            )
        )
        return self

    def getter(self, method_name: str, field_name: str,
               type_spec: Union[str, TypeInfo, TypeRef]) -> "TypeBuilder":
        """Shorthand for a field accessor with a native body."""
        return self.method(
            method_name, [], type_spec,
            body=lambda self_obj: self_obj.get_field(field_name),
        )

    def setter(self, method_name: str, field_name: str,
               type_spec: Union[str, TypeInfo, TypeRef]) -> "TypeBuilder":
        """Shorthand for a field mutator with a native body."""
        return self.method(
            method_name, [("value", type_spec)], "void",
            body=lambda self_obj, value: self_obj.set_field(field_name, value),
        )

    def ctor(
        self,
        params: Sequence,
        body: Body = None,
        visibility: str = "public",
    ) -> "TypeBuilder":
        self._ctors.append(
            ConstructorInfo(_as_params(params), Visibility(visibility), body=body)
        )
        return self

    # -- finalisation ------------------------------------------------------------

    def build(self) -> TypeInfo:
        superclass = self._superclass
        if superclass is None and self.kind is TypeKind.CLASS:
            superclass = TypeRef.to(OBJECT)
        return TypeInfo(
            self.full_name,
            kind=self.kind,
            superclass=superclass,
            interfaces=self._interfaces,
            fields=self._fields,
            methods=self._methods,
            constructors=self._ctors,
            assembly_name=self.assembly_name,
            language=self.language,
        )


def interface_builder(full_name: str, assembly_name: str = "default") -> TypeBuilder:
    """A :class:`TypeBuilder` preconfigured for an interface."""
    return TypeBuilder(full_name, kind=TypeKind.INTERFACE, assembly_name=assembly_name)
