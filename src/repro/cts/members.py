"""Member model of the common type system: fields, methods, constructors.

These classes mirror the reflection surface the paper's conformance rules
quantify over (Section 4.2): "the type name, the name of its supertypes, the
name and the type of its fields and the signature of its methods".

Members reference other types through :class:`TypeRef` so a member can be
declared (and serialized as part of a ``TypeDescription``) before the types
it mentions are locally available — the property that makes the optimistic
transport protocol possible.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .identity import Guid
    from .types import TypeInfo


class Visibility(enum.Enum):
    """Access modifier of a member."""

    PUBLIC = "public"
    PROTECTED = "protected"
    PRIVATE = "private"
    INTERNAL = "internal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Modifiers(enum.Flag):
    """Non-access modifiers; the conformance rules require method modifiers
    "to be the same" (rule iv), so we model them explicitly."""

    NONE = 0
    STATIC = enum.auto()
    ABSTRACT = enum.auto()
    FINAL = enum.auto()
    VIRTUAL = enum.auto()

    def tokens(self) -> List[str]:
        names = []
        for flag in (Modifiers.STATIC, Modifiers.ABSTRACT, Modifiers.FINAL, Modifiers.VIRTUAL):
            if self & flag:
                names.append(flag.name.lower())
        return names

    @classmethod
    def from_tokens(cls, tokens: Sequence[str]) -> "Modifiers":
        value = cls.NONE
        for token in tokens:
            value |= cls[token.upper()]
        return value


class TypeRef:
    """A by-name (and optionally by-identity) reference to a type.

    A ``TypeRef`` may be *unresolved*: it then carries only a full name, an
    optional GUID and an optional download path.  Resolution goes through a
    resolver (local registry, description cache or the network) — see
    ``repro.describe.resolver``.
    """

    __slots__ = ("full_name", "guid", "download_path", "_resolved")

    def __init__(
        self,
        full_name: str,
        guid: Optional["Guid"] = None,
        download_path: Optional[str] = None,
        resolved: Optional["TypeInfo"] = None,
    ):
        self.full_name = full_name
        self.guid = guid
        self.download_path = download_path
        self._resolved = resolved

    @classmethod
    def to(cls, type_info: "TypeInfo") -> "TypeRef":
        """Build a resolved reference to an in-memory type."""
        return cls(
            type_info.full_name,
            guid=type_info.guid,
            download_path=type_info.download_path,
            resolved=type_info,
        )

    @property
    def is_resolved(self) -> bool:
        return self._resolved is not None

    @property
    def resolved(self) -> Optional["TypeInfo"]:
        return self._resolved

    def resolve_with(self, type_info: "TypeInfo") -> None:
        self._resolved = type_info
        if self.guid is None:
            self.guid = type_info.guid

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeRef):
            return NotImplemented
        if self.guid is not None and other.guid is not None:
            return self.guid == other.guid
        return self.full_name == other.full_name

    def __hash__(self) -> int:
        return hash(self.full_name)

    def __repr__(self) -> str:
        state = "resolved" if self.is_resolved else "unresolved"
        return "TypeRef(%r, %s)" % (self.full_name, state)


class ParameterInfo:
    """A formal parameter of a method or constructor."""

    __slots__ = ("name", "type_ref")

    def __init__(self, name: str, type_ref: TypeRef):
        self.name = name
        self.type_ref = type_ref

    def __repr__(self) -> str:
        return "ParameterInfo(%s: %s)" % (self.name, self.type_ref.full_name)


class FieldInfo:
    """A named, typed field (rule ii quantifies over these)."""

    __slots__ = ("name", "type_ref", "visibility", "modifiers")

    def __init__(
        self,
        name: str,
        type_ref: TypeRef,
        visibility: Visibility = Visibility.PUBLIC,
        modifiers: Modifiers = Modifiers.NONE,
    ):
        self.name = name
        self.type_ref = type_ref
        self.visibility = visibility
        self.modifiers = modifiers

    def signature(self) -> str:
        return "%s %s %s" % (self.visibility, self.type_ref.full_name, self.name)

    def __repr__(self) -> str:
        return "FieldInfo(%s)" % self.signature()


class MethodInfo:
    """A method signature plus (optionally) an executable IL body.

    The body is *not* part of the signature: type descriptions strip it, and
    the conformance rules never look at it (the paper explicitly scopes out
    behavioural conformance).
    """

    __slots__ = ("name", "parameters", "return_type", "visibility", "modifiers", "body")

    def __init__(
        self,
        name: str,
        parameters: Sequence[ParameterInfo],
        return_type: TypeRef,
        visibility: Visibility = Visibility.PUBLIC,
        modifiers: Modifiers = Modifiers.NONE,
        body=None,
    ):
        self.name = name
        self.parameters = list(parameters)
        self.return_type = return_type
        self.visibility = visibility
        self.modifiers = modifiers
        self.body = body

    @property
    def arity(self) -> int:
        return len(self.parameters)

    def parameter_type_names(self) -> List[str]:
        return [p.type_ref.full_name for p in self.parameters]

    def signature(self) -> str:
        params = ", ".join(
            "%s %s" % (p.type_ref.full_name, p.name) for p in self.parameters
        )
        mods = " ".join(self.modifiers.tokens())
        head = "%s %s" % (self.visibility, mods) if mods else str(self.visibility)
        return "%s %s %s(%s)" % (head, self.return_type.full_name, self.name, params)

    def __repr__(self) -> str:
        return "MethodInfo(%s)" % self.signature()


class ConstructorInfo:
    """A constructor: like a method, "except that there are no return values"
    (rule v)."""

    __slots__ = ("parameters", "visibility", "modifiers", "body")

    def __init__(
        self,
        parameters: Sequence[ParameterInfo],
        visibility: Visibility = Visibility.PUBLIC,
        modifiers: Modifiers = Modifiers.NONE,
        body=None,
    ):
        self.parameters = list(parameters)
        self.visibility = visibility
        self.modifiers = modifiers
        self.body = body

    @property
    def arity(self) -> int:
        return len(self.parameters)

    def parameter_type_names(self) -> List[str]:
        return [p.type_ref.full_name for p in self.parameters]

    def signature(self) -> str:
        params = ", ".join(
            "%s %s" % (p.type_ref.full_name, p.name) for p in self.parameters
        )
        return "%s .ctor(%s)" % (self.visibility, params)

    def __repr__(self) -> str:
        return "ConstructorInfo(%s)" % self.signature()
