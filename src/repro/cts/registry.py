"""Type registry: the per-peer catalogue of locally known types.

Every peer in the distributed system owns a registry; the optimistic
transport protocol consults it to decide whether a received object's type is
already known (no description fetch needed) or not (fetch description, check
conformance, maybe fetch the assembly).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .identity import Guid
from .members import TypeRef
from .types import BUILTINS, TypeInfo, lookup_builtin


class TypeNotFoundError(KeyError):
    """Raised when a type cannot be resolved locally."""


class DuplicateTypeError(ValueError):
    """Raised when registering a name that is already bound to a different type."""


class TypeRegistry:
    """Maps full names and GUIDs to :class:`TypeInfo`.

    The registry is pre-populated with the CTS builtins so that primitive
    type references always resolve locally (the paper's descriptions never
    ship primitive definitions either).
    """

    def __init__(self, include_builtins: bool = True):
        self._by_name: Dict[str, TypeInfo] = {}
        self._by_guid: Dict[Guid, TypeInfo] = {}
        #: Monotonic mutation counter.  Caches keyed on registry contents
        #: (e.g. the TPS routing index's verdict cache) compare this to
        #: decide whether their entries may have gone stale.
        self.version = 0
        if include_builtins:
            for info in BUILTINS.values():
                self._register(info)

    # -- registration ------------------------------------------------------

    def _register(self, info: TypeInfo) -> None:
        self._by_name[info.full_name] = info
        self._by_guid[info.guid] = info
        self.version += 1

    def register(self, info: TypeInfo, replace: bool = False,
                 shadow: bool = False) -> TypeInfo:
        """Register a type.

        ``shadow=True`` permits coexisting *versions*: a second type with
        the same full name but a different identity is recorded under its
        GUID only (name lookups keep resolving to the first registration).
        This is how a peer holds V1 and V2 of a module simultaneously —
        GUID-bearing references always find the right one.
        """
        existing = self._by_name.get(info.full_name)
        if existing is not None and not replace:
            if existing.guid == info.guid:
                return existing
            if shadow:
                self._by_guid[info.guid] = info
                self.version += 1
                return info
            raise DuplicateTypeError(
                "type %r already registered with a different identity"
                % info.full_name
            )
        self._register(info)
        return info

    def register_all(self, infos: Iterable[TypeInfo], replace: bool = False) -> None:
        for info in infos:
            self.register(info, replace=replace)

    # -- lookup --------------------------------------------------------------

    def contains_name(self, full_name: str) -> bool:
        return full_name in self._by_name or lookup_builtin(full_name) is not None

    def contains_guid(self, guid: Guid) -> bool:
        return guid in self._by_guid

    def get(self, full_name: str) -> Optional[TypeInfo]:
        info = self._by_name.get(full_name)
        if info is None and full_name.endswith("[]"):
            element = self.get(full_name[:-2])
            if element is not None:
                from .types import array_of

                return array_of(element)
        if info is None:
            info = lookup_builtin(full_name)
        return info

    def require(self, full_name: str) -> TypeInfo:
        info = self.get(full_name)
        if info is None:
            raise TypeNotFoundError(full_name)
        return info

    def get_by_guid(self, guid: Guid) -> Optional[TypeInfo]:
        return self._by_guid.get(guid)

    def resolve(self, ref: TypeRef) -> TypeInfo:
        """Resolve a :class:`TypeRef` against local knowledge.

        Resolution order follows identity first (GUIDs are globally unique),
        then name.  The ref is memoised in place on success.
        """
        if ref.is_resolved:
            return ref.resolved  # type: ignore[return-value]
        if ref.guid is not None:
            info = self._by_guid.get(ref.guid)
            if info is not None:
                ref.resolve_with(info)
                return info
        info = self.get(ref.full_name)
        if info is None:
            raise TypeNotFoundError(ref.full_name)
        ref.resolve_with(info)
        return info

    def try_resolve(self, ref: TypeRef) -> Optional[TypeInfo]:
        try:
            return self.resolve(ref)
        except TypeNotFoundError:
            return None

    # -- iteration -------------------------------------------------------------

    def __iter__(self) -> Iterator[TypeInfo]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def user_types(self) -> List[TypeInfo]:
        """All registered non-builtin types."""
        return [t for t in self._by_name.values() if t.full_name not in BUILTINS]
