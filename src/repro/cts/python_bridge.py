"""Bridge from live Python classes to the CTS.

The paper builds type descriptions "by means of introspection" over .NET
reflection; this module is the analogous facility for native Python classes:
it derives a :class:`~repro.cts.types.TypeInfo` from a class via
``inspect`` + type annotations, so ordinary Python objects can take part in
conformance checks, pub/sub subscriptions and pass-by-reference remoting.

Bridged types carry native bodies, so they cannot be shipped as assemblies
(just like native code on a real platform); they can still be described,
compared and proxied.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Optional, Sequence, get_type_hints

from .members import (
    ConstructorInfo,
    FieldInfo,
    MethodInfo,
    ParameterInfo,
    TypeRef,
    Visibility,
)
from .types import (
    BOOL,
    DOUBLE,
    INT,
    OBJECT,
    STRING,
    TypeInfo,
    TypeKind,
    VOID,
)

_PY_TO_CTS = {
    int: INT,
    float: DOUBLE,
    str: STRING,
    bool: BOOL,
    type(None): VOID,
}


def _annotation_ref(annotation: Any) -> TypeRef:
    if annotation is inspect.Signature.empty or annotation is None:
        return TypeRef.to(OBJECT)
    if annotation in _PY_TO_CTS:
        return TypeRef.to(_PY_TO_CTS[annotation])
    if isinstance(annotation, str):
        simple = {"int": INT, "float": DOUBLE, "str": STRING, "bool": BOOL,
                  "None": VOID}.get(annotation)
        if simple is not None:
            return TypeRef.to(simple)
        return TypeRef(annotation)
    if isinstance(annotation, type):
        return TypeRef("python.%s" % annotation.__name__)
    return TypeRef.to(OBJECT)


def _method_params(func: Any) -> Sequence[ParameterInfo]:
    try:
        signature = inspect.signature(func)
        hints = get_type_hints(func)
    except (ValueError, TypeError, NameError):
        return []
    params = []
    for name, param in signature.parameters.items():
        if name in ("self", "cls"):
            continue
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            continue
        params.append(ParameterInfo(name, _annotation_ref(hints.get(name, param.annotation))))
    return params


def _return_ref(func: Any) -> TypeRef:
    try:
        hints = get_type_hints(func)
    except (ValueError, TypeError, NameError):
        hints = {}
    annotation = hints.get("return", inspect.Signature.empty)
    if annotation is type(None):
        return TypeRef.to(VOID)
    return _annotation_ref(annotation)


def bridge_class(
    cls: type,
    full_name: Optional[str] = None,
    assembly_name: str = "python",
    field_types: Optional[Dict[str, Any]] = None,
) -> TypeInfo:
    """Derive a :class:`TypeInfo` from a live Python class.

    Fields come from class-level annotations (``name: str``) plus any
    explicit ``field_types`` overrides.  Methods come from public callables;
    ``__init__`` becomes the constructor.  Leading-underscore members map to
    private visibility and are excluded, matching the rules' focus on the
    public surface.
    """
    name = full_name or "python.%s" % cls.__name__

    fields = []
    annotations: Dict[str, Any] = {}
    for klass in reversed(cls.__mro__):
        annotations.update(getattr(klass, "__annotations__", {}))
    if field_types:
        annotations.update(field_types)
    for fname, annotation in annotations.items():
        visibility = Visibility.PRIVATE if fname.startswith("_") else Visibility.PUBLIC
        fields.append(FieldInfo(fname.lstrip("_"), _annotation_ref(annotation), visibility))

    methods = []
    for mname, func in inspect.getmembers(cls, predicate=callable):
        if mname.startswith("_"):
            continue
        underlying = getattr(func, "__func__", func)

        def make_body(method_name: str):
            def body(self_obj: Any, *args: Any) -> Any:
                return getattr(self_obj, method_name)(*args)
            return body

        methods.append(
            MethodInfo(
                mname,
                _method_params(underlying),
                _return_ref(underlying),
                visibility=Visibility.PUBLIC,
                body=make_body(mname),
            )
        )

    ctors = []
    init = cls.__dict__.get("__init__")
    if init is not None:
        ctors.append(
            ConstructorInfo(
                _method_params(init),
                Visibility.PUBLIC,
                body=lambda self_obj, *args: None,  # construction happens natively
            )
        )

    bases = [b for b in cls.__bases__ if b is not object]
    superclass = (
        TypeRef("python.%s" % bases[0].__name__) if bases else TypeRef.to(OBJECT)
    )

    return TypeInfo(
        name,
        kind=TypeKind.CLASS,
        superclass=superclass,
        fields=fields,
        methods=methods,
        constructors=ctors,
        assembly_name=assembly_name,
        language="python",
    )


class BridgedInstance:
    """Adapter giving a native Python object the ``_repro_invoke`` protocol.

    Wrap a Python object in this to let IL code, dynamic proxies and the
    remoting layer treat it uniformly with :class:`CtsInstance`.
    """

    __slots__ = ("target", "type_info")

    def __init__(self, target: Any, type_info: Optional[TypeInfo] = None):
        self.target = target
        self.type_info = type_info if type_info is not None else bridge_class(type(target))

    def _repro_invoke(self, method_name: str, args: Sequence[Any]) -> Any:
        return getattr(self.target, method_name)(*args)

    def _repro_type(self) -> TypeInfo:
        return self.type_info

    def get_field(self, name: str) -> Any:
        if hasattr(self.target, name):
            return getattr(self.target, name)
        return getattr(self.target, "_" + name)

    def set_field(self, name: str, value: Any) -> None:
        if hasattr(self.target, name):
            setattr(self.target, name, value)
        else:
            setattr(self.target, "_" + name, value)

    def invoke(self, method_name: str, *args: Any) -> Any:
        return self._repro_invoke(method_name, args)

    def __repr__(self) -> str:
        return "BridgedInstance(%r as %s)" % (self.target, self.type_info.full_name)
