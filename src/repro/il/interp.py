"""Interpreter for the common intermediate language.

The interpreter is intentionally environment-parameterised: it never imports
the runtime object model.  Instead the caller supplies an
:class:`ExecutionEnvironment` that knows how to read/write fields, dispatch
method calls and construct objects.  ``repro.runtime.loader`` provides the
production environment; tests can supply minimal fakes.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from .instructions import Instr, MethodBody, Op


class IlError(Exception):
    """Base class for interpreter failures."""


class IlRuntimeError(IlError):
    """A well-formed program performed an illegal operation."""


class IlLimitExceeded(IlError):
    """The per-invocation instruction budget was exhausted (runaway loop)."""


class ExecutionEnvironment:
    """Services the interpreter needs from the surrounding runtime."""

    def get_field(self, receiver: Any, name: str) -> Any:
        raise NotImplementedError

    def set_field(self, receiver: Any, name: str, value: Any) -> None:
        raise NotImplementedError

    def call_method(self, receiver: Any, name: str, args: Sequence[Any]) -> Any:
        raise NotImplementedError

    def new_instance(self, type_name: str, args: Sequence[Any]) -> Any:
        raise NotImplementedError


def _binary(op: str, lhs: Any, rhs: Any) -> Any:
    if op == "&":
        return _stringify(lhs) + _stringify(rhs)
    if op == "+":
        if isinstance(lhs, str) or isinstance(rhs, str):
            return _stringify(lhs) + _stringify(rhs)
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if isinstance(lhs, int) and isinstance(rhs, int):
            if rhs == 0:
                raise IlRuntimeError("integer division by zero")
            quotient = abs(lhs) // abs(rhs)
            return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
        return lhs / rhs
    if op == "%":
        if rhs == 0:
            raise IlRuntimeError("modulo by zero")
        remainder = abs(lhs) % abs(rhs)
        return remainder if lhs >= 0 else -remainder
    if op == "==":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    if op == "&&":
        return bool(lhs) and bool(rhs)
    if op == "||":
        return bool(lhs) or bool(rhs)
    raise IlRuntimeError("unknown binary operator %r" % op)


def _stringify(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _unary(op: str, operand: Any) -> Any:
    if op == "-":
        return -operand
    if op == "!":
        return not operand
    raise IlRuntimeError("unknown unary operator %r" % op)


class Interpreter:
    """Executes :class:`MethodBody` objects against an environment."""

    def __init__(self, env: ExecutionEnvironment, max_steps: int = 1_000_000):
        self.env = env
        self.max_steps = max_steps

    def execute(self, body: MethodBody, self_obj: Any, args: Sequence[Any]) -> Any:
        stack: List[Any] = []
        locals_: List[Any] = [None] * max(body.n_locals, 0)
        instructions = body.instructions
        n = len(instructions)
        pc = 0
        steps = 0
        while pc < n:
            steps += 1
            if steps > self.max_steps:
                raise IlLimitExceeded(
                    "method exceeded %d instruction steps" % self.max_steps
                )
            instr = instructions[pc]
            op = instr.op
            pc += 1
            if op is Op.PUSH_CONST:
                stack.append(instr.arg)
            elif op is Op.LOAD_ARG:
                try:
                    stack.append(args[instr.arg])
                except IndexError:
                    raise IlRuntimeError(
                        "argument index %r out of range (got %d args)"
                        % (instr.arg, len(args))
                    )
            elif op is Op.LOAD_LOCAL:
                stack.append(locals_[instr.arg])
            elif op is Op.STORE_LOCAL:
                locals_[instr.arg] = stack.pop()
            elif op is Op.LOAD_SELF:
                stack.append(self_obj)
            elif op is Op.GET_FIELD:
                receiver = stack.pop()
                stack.append(self.env.get_field(receiver, instr.arg))
            elif op is Op.SET_FIELD:
                value = stack.pop()
                receiver = stack.pop()
                self.env.set_field(receiver, instr.arg, value)
            elif op is Op.CALL_METHOD:
                name, argc = instr.arg
                call_args = _pop_n(stack, argc)
                receiver = stack.pop()
                stack.append(self.env.call_method(receiver, name, call_args))
            elif op is Op.NEW:
                type_name, argc = instr.arg
                ctor_args = _pop_n(stack, argc)
                stack.append(self.env.new_instance(type_name, ctor_args))
            elif op is Op.BIN_OP:
                rhs = stack.pop()
                lhs = stack.pop()
                stack.append(_binary(instr.arg, lhs, rhs))
            elif op is Op.NEW_LIST:
                stack.append(_pop_n(stack, instr.arg))
            elif op is Op.INDEX_GET:
                index = stack.pop()
                receiver = stack.pop()
                stack.append(_index_get(receiver, index))
            elif op is Op.INDEX_SET:
                value = stack.pop()
                index = stack.pop()
                receiver = stack.pop()
                _index_set(receiver, index, value)
            elif op is Op.LIST_LEN:
                receiver = stack.pop()
                if not isinstance(receiver, (list, str, dict)):
                    raise IlRuntimeError(
                        "length of non-collection %r" % type(receiver).__name__
                    )
                stack.append(len(receiver))
            elif op is Op.UN_OP:
                stack.append(_unary(instr.arg, stack.pop()))
            elif op is Op.JUMP:
                pc = instr.arg
            elif op is Op.JUMP_IF_FALSE:
                if not stack.pop():
                    pc = instr.arg
            elif op is Op.POP:
                stack.pop()
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.RETURN:
                return stack.pop()
            elif op is Op.RETURN_VOID:
                return None
            else:  # pragma: no cover - exhaustive over Op
                raise IlRuntimeError("unhandled opcode %s" % op)
        return None


def _index_get(receiver: Any, index: Any) -> Any:
    if isinstance(receiver, (list, str)):
        if not isinstance(index, int) or isinstance(index, bool):
            raise IlRuntimeError("index must be an integer, got %r" % (index,))
        if not 0 <= index < len(receiver):
            raise IlRuntimeError(
                "index %d out of range (length %d)" % (index, len(receiver))
            )
        return receiver[index]
    if isinstance(receiver, dict):
        if index not in receiver:
            raise IlRuntimeError("missing key %r" % (index,))
        return receiver[index]
    raise IlRuntimeError("cannot index %r" % type(receiver).__name__)


def _index_set(receiver: Any, index: Any, value: Any) -> None:
    if isinstance(receiver, list):
        if not isinstance(index, int) or isinstance(index, bool):
            raise IlRuntimeError("index must be an integer, got %r" % (index,))
        if not 0 <= index < len(receiver):
            raise IlRuntimeError(
                "index %d out of range (length %d)" % (index, len(receiver))
            )
        receiver[index] = value
        return
    if isinstance(receiver, dict):
        receiver[index] = value
        return
    raise IlRuntimeError("cannot index-assign %r" % type(receiver).__name__)


def _pop_n(stack: List[Any], count: int) -> List[Any]:
    if count == 0:
        return []
    values = stack[-count:]
    del stack[-count:]
    return values
