"""Instruction set of the common intermediate language.

The paper's platform compiles C#, VB.NET, etc. into one intermediate
language executed by the CLR; this gives it language interoperability
"underneath" type interoperability.  We reproduce that layer with a small
stack machine: every language frontend in ``repro.langs`` compiles method
bodies down to these instructions, and ``repro.runtime`` executes them.

The instruction set is deliberately compact but complete enough for the
kinds of types the paper exchanges (accessors, arithmetic, conditionals,
loops, object construction and method calls).
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional, Sequence, Tuple


class Op(enum.Enum):
    """Opcodes of the stack machine."""

    PUSH_CONST = "push_const"     # arg: literal (int/float/str/bool/None)
    LOAD_ARG = "load_arg"         # arg: argument index
    LOAD_LOCAL = "load_local"     # arg: local slot index
    STORE_LOCAL = "store_local"   # arg: local slot index
    LOAD_SELF = "load_self"       # arg: None
    GET_FIELD = "get_field"       # arg: field name; pops receiver
    SET_FIELD = "set_field"       # arg: field name; pops value, receiver
    CALL_METHOD = "call_method"   # arg: (method name, argc); pops args then receiver
    NEW = "new"                   # arg: (type full name, argc); pops args
    BIN_OP = "bin_op"             # arg: operator token; pops rhs, lhs
    UN_OP = "un_op"               # arg: operator token; pops operand
    NEW_LIST = "new_list"         # arg: element count; pops elements
    INDEX_GET = "index_get"       # arg: None; pops index, receiver
    INDEX_SET = "index_set"       # arg: None; pops value, index, receiver
    LIST_LEN = "list_len"         # arg: None; pops receiver
    JUMP = "jump"                 # arg: absolute target pc
    JUMP_IF_FALSE = "jump_if_false"  # arg: absolute target pc; pops condition
    POP = "pop"                   # arg: None
    DUP = "dup"                   # arg: None
    RETURN = "return"             # arg: None; pops return value
    RETURN_VOID = "return_void"   # arg: None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Binary operator tokens understood by :data:`Op.BIN_OP`.
BINARY_OPERATORS = (
    "+", "-", "*", "/", "%",
    "==", "!=", "<", "<=", ">", ">=",
    "&&", "||", "&",
)

#: Unary operator tokens understood by :data:`Op.UN_OP`.
UNARY_OPERATORS = ("-", "!")


class Instr:
    """One instruction: an opcode and an optional immediate argument."""

    __slots__ = ("op", "arg")

    def __init__(self, op: Op, arg: Any = None):
        self.op = op
        self.arg = arg

    def __repr__(self) -> str:
        if self.arg is None:
            return "Instr(%s)" % self.op
        return "Instr(%s, %r)" % (self.op, self.arg)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instr):
            return NotImplemented
        return self.op is other.op and self.arg == other.arg

    def __hash__(self) -> int:
        return hash((self.op, repr(self.arg)))

    # -- wire form ---------------------------------------------------------

    def to_tuple(self) -> List[Any]:
        """Wire form: a plain 2-element list (tuples are not serializable)."""
        arg = self.arg
        if isinstance(arg, tuple):
            arg = list(arg)
        return [self.op.value, arg]

    @classmethod
    def from_tuple(cls, data: Sequence[Any]) -> "Instr":
        op = Op(data[0])
        arg = data[1]
        if op in (Op.CALL_METHOD, Op.NEW) and isinstance(arg, list):
            arg = (arg[0], arg[1])
        return cls(op, arg)


class MethodBody:
    """An executable method body: instructions plus a local-variable count.

    This is what "the code" of a type means in the reproduction — assemblies
    carry :class:`MethodBody` objects, and downloading code over the
    optimistic protocol transfers their wire form.
    """

    __slots__ = ("instructions", "n_locals", "local_names")

    def __init__(
        self,
        instructions: Sequence[Instr],
        n_locals: int = 0,
        local_names: Optional[Sequence[str]] = None,
    ):
        self.instructions = list(instructions)
        self.n_locals = n_locals
        self.local_names = list(local_names) if local_names is not None else []

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return "MethodBody(%d instrs, %d locals)" % (len(self.instructions), self.n_locals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MethodBody):
            return NotImplemented
        return (
            self.instructions == other.instructions
            and self.n_locals == other.n_locals
        )

    def disassemble(self) -> str:
        lines = []
        for pc, instr in enumerate(self.instructions):
            if instr.arg is None:
                lines.append("%4d  %s" % (pc, instr.op.value))
            else:
                lines.append("%4d  %-14s %r" % (pc, instr.op.value, instr.arg))
        return "\n".join(lines)

    # -- wire form ---------------------------------------------------------

    def to_wire(self) -> dict:
        return {
            "instructions": [i.to_tuple() for i in self.instructions],
            "n_locals": self.n_locals,
            "local_names": list(self.local_names),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "MethodBody":
        return cls(
            [Instr.from_tuple(t) for t in data["instructions"]],
            n_locals=data.get("n_locals", 0),
            local_names=data.get("local_names", []),
        )


class BodyBuilder:
    """Convenience emitter used by the compiler in ``repro.langs``."""

    def __init__(self):
        self._instructions: List[Instr] = []
        self._local_names: List[str] = []

    def emit(self, op: Op, arg: Any = None) -> int:
        """Append an instruction; returns its pc (useful for patching jumps)."""
        self._instructions.append(Instr(op, arg))
        return len(self._instructions) - 1

    def patch(self, pc: int, target: int) -> None:
        """Set the jump target of a previously emitted jump instruction."""
        instr = self._instructions[pc]
        if instr.op not in (Op.JUMP, Op.JUMP_IF_FALSE):
            raise ValueError("cannot patch non-jump instruction at %d" % pc)
        instr.arg = target

    @property
    def next_pc(self) -> int:
        return len(self._instructions)

    def local_slot(self, name: str) -> int:
        """Slot index for a named local, allocating on first use."""
        try:
            return self._local_names.index(name)
        except ValueError:
            self._local_names.append(name)
            return len(self._local_names) - 1

    def has_local(self, name: str) -> bool:
        return name in self._local_names

    def build(self) -> MethodBody:
        instrs = list(self._instructions)
        if not instrs or instrs[-1].op not in (Op.RETURN, Op.RETURN_VOID):
            instrs.append(Instr(Op.RETURN_VOID))
        return MethodBody(instrs, n_locals=len(self._local_names), local_names=self._local_names)
