"""Common intermediate language: instruction set and interpreter."""

from .instructions import (
    BINARY_OPERATORS,
    BodyBuilder,
    Instr,
    MethodBody,
    Op,
    UNARY_OPERATORS,
)
from .interp import (
    ExecutionEnvironment,
    IlError,
    IlLimitExceeded,
    IlRuntimeError,
    Interpreter,
)

__all__ = [
    "BINARY_OPERATORS",
    "BodyBuilder",
    "ExecutionEnvironment",
    "IlError",
    "IlLimitExceeded",
    "IlRuntimeError",
    "Instr",
    "Interpreter",
    "MethodBody",
    "Op",
    "UNARY_OPERATORS",
]
