"""Peers: addressable endpoints with pluggable request handlers."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .network import MessageDropped, NetworkError, SimulatedNetwork

KindHandler = Callable[[bytes, str], bytes]


class Peer:
    """A named endpoint on a :class:`SimulatedNetwork`.

    Subsystems (transport, remoting, code repository, pub/sub broker)
    register per-kind handlers; a request for an unknown kind is an error
    response by convention (empty payload prefixed with ``ERR:``).
    """

    def __init__(self, peer_id: str, network: SimulatedNetwork):
        self.peer_id = peer_id
        self.network = network
        self._handlers: Dict[str, KindHandler] = {}
        network.register(peer_id, self._dispatch)

    # -- server side ---------------------------------------------------------

    def on(self, kind: str, handler: KindHandler) -> None:
        self._handlers[kind] = handler

    def _dispatch(self, kind: str, payload: bytes, src: str) -> bytes:
        handler = self._handlers.get(kind)
        if handler is None:
            return b"ERR:unknown-kind:" + kind.encode("utf-8")
        return handler(payload, src)

    # -- client side ---------------------------------------------------------

    def request(self, dst: str, kind: str, payload: bytes = b"",
                retries: int = 0) -> bytes:
        """Round trip; with ``retries`` > 0, dropped messages are resent.

        Retrying is safe on this fabric: a drop raises *before* the remote
        handler runs, so no request is ever executed twice.
        """
        attempts = retries + 1
        for attempt in range(attempts):
            try:
                response = self.network.request(self.peer_id, dst, kind, payload)
            except MessageDropped:
                if attempt + 1 == attempts:
                    raise
                continue
            if response.startswith(b"ERR:"):
                raise NetworkError(response[4:].decode("utf-8", "replace"))
            return response
        raise MessageDropped("unreachable")  # pragma: no cover

    def post(self, dst: str, kind: str, payload: bytes = b"",
             retries: int = 0) -> None:
        attempts = retries + 1
        for attempt in range(attempts):
            try:
                self.network.post(self.peer_id, dst, kind, payload)
                return
            except MessageDropped:
                if attempt + 1 == attempts:
                    raise

    def post_async(self, dst: str, kind: str, payload: bytes = b"") -> None:
        """Enqueue a one-way message; it is delivered when the network's
        scheduler drains (``flush``/``run_until_idle``), never inline."""
        self.network.post_async(self.peer_id, dst, kind, payload)

    def close(self) -> None:
        self.network.unregister(self.peer_id)

    def __repr__(self) -> str:
        return "Peer(%s)" % self.peer_id


def error_response(message: str) -> bytes:
    """Encode an application-level error for a request handler."""
    return b"ERR:" + message.encode("utf-8")
