"""Simulated network: deterministic message passing with cost accounting.

The paper's claim for the optimistic protocol is resource economy — "the
code of the object as well as its type representation are not always sent
with the object itself, but only when needed".  To evaluate that claim
reproducibly we need a network that *counts*: every message's bytes, every
round trip, and a simulated clock driven by a latency + bandwidth model.

The model is intentionally simple and synchronous (request/response), which
matches the protocol of Figure 1; the apps layer adds one-way posts for
publish/subscribe fan-out.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

Handler = Callable[[str, bytes, str], bytes]


class NetworkError(Exception):
    """Delivery failure (unknown peer, simulated drop, handler error)."""


class UnknownPeerError(NetworkError):
    pass


class MessageDropped(NetworkError):
    """The loss model dropped this message."""


class NetworkStats:
    """Aggregate counters, plus per-kind breakdowns for the benchmarks."""

    def __init__(self):
        self.messages = 0
        self.bytes_sent = 0
        self.round_trips = 0
        self.by_kind_messages: Dict[str, int] = {}
        self.by_kind_bytes: Dict[str, int] = {}

    def record(self, kind: str, size: int, round_trip: bool) -> None:
        self.messages += 1
        self.bytes_sent += size
        if round_trip:
            self.round_trips += 1
        self.by_kind_messages[kind] = self.by_kind_messages.get(kind, 0) + 1
        self.by_kind_bytes[kind] = self.by_kind_bytes.get(kind, 0) + size

    def snapshot(self) -> Dict[str, int]:
        return {
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "round_trips": self.round_trips,
        }

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.round_trips = 0
        self.by_kind_messages.clear()
        self.by_kind_bytes.clear()

    def __repr__(self) -> str:
        return "NetworkStats(msgs=%d, bytes=%d, rtts=%d)" % (
            self.messages, self.bytes_sent, self.round_trips,
        )


class SimulatedNetwork:
    """Synchronous message fabric between named peers.

    Parameters
    ----------
    latency_s:
        One-way propagation delay charged per message.
    bandwidth_bps:
        Bytes per simulated second; transfer time = size / bandwidth.
    drop_rate:
        Probability a message is dropped (deterministic via ``seed``);
        0 by default — the protocol benchmarks run on a reliable fabric.
    """

    def __init__(
        self,
        latency_s: float = 0.001,
        bandwidth_bps: float = 10_000_000.0,
        drop_rate: float = 0.0,
        seed: int = 0,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)
        self._handlers: Dict[str, Handler] = {}
        self.clock_s = 0.0
        self.stats = NetworkStats()
        self.log: List[Tuple[str, str, str, int]] = []  # (src, dst, kind, size)
        self.log_enabled = True

    # -- membership ------------------------------------------------------------

    def register(self, peer_id: str, handler: Handler) -> None:
        if peer_id in self._handlers:
            raise NetworkError("peer id %r already registered" % peer_id)
        self._handlers[peer_id] = handler

    def unregister(self, peer_id: str) -> None:
        self._handlers.pop(peer_id, None)

    def peers(self) -> List[str]:
        return sorted(self._handlers)

    # -- delivery ------------------------------------------------------------

    def _charge(self, kind: str, size: int, round_trip: bool) -> None:
        transfer = size / self.bandwidth_bps
        hops = 2 if round_trip else 1
        self.clock_s += self.latency_s * hops + transfer
        self.stats.record(kind, size, round_trip)

    def _maybe_drop(self) -> None:
        if self.drop_rate and self._rng.random() < self.drop_rate:
            raise MessageDropped("message dropped by loss model")

    def request(self, src: str, dst: str, kind: str, payload: bytes) -> bytes:
        """Synchronous round trip; returns the destination's response bytes."""
        handler = self._handlers.get(dst)
        if handler is None:
            raise UnknownPeerError("no peer %r" % dst)
        self._maybe_drop()
        if self.log_enabled:
            self.log.append((src, dst, kind, len(payload)))
        response = handler(kind, payload, src)
        if not isinstance(response, bytes):
            raise NetworkError(
                "handler for %r returned %s, expected bytes" % (kind, type(response).__name__)
            )
        self._charge(kind, len(payload) + len(response), round_trip=True)
        return response

    def post(self, src: str, dst: str, kind: str, payload: bytes) -> None:
        """One-way delivery; the response (if any) is discarded."""
        handler = self._handlers.get(dst)
        if handler is None:
            raise UnknownPeerError("no peer %r" % dst)
        self._maybe_drop()
        if self.log_enabled:
            self.log.append((src, dst, kind, len(payload)))
        self._charge(kind, len(payload), round_trip=False)
        handler(kind, payload, src)

    # -- introspection ------------------------------------------------------------

    def reset_accounting(self) -> None:
        self.stats.reset()
        self.log.clear()
        self.clock_s = 0.0
