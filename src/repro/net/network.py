"""Simulated network: deterministic message passing with cost accounting.

The paper's claim for the optimistic protocol is resource economy — "the
code of the object as well as its type representation are not always sent
with the object itself, but only when needed".  To evaluate that claim
reproducibly we need a network that *counts*: every message's bytes, every
round trip, and a simulated clock driven by a latency + bandwidth model.

Two delivery disciplines coexist:

- :meth:`SimulatedNetwork.request` — the synchronous round trip of the
  Figure-1 control plane (descriptions, code, subscribe/unsubscribe).
- :meth:`SimulatedNetwork.post` / :meth:`SimulatedNetwork.post_async` —
  one-way traffic for publish/subscribe fan-out.  ``post`` delivers
  inline (the seed behaviour, kept for simple two-peer scenarios) but
  isolates handler failures from the sender; ``post_async`` enqueues on a
  per-link FIFO and delivers on :meth:`flush` / :meth:`run_until_idle`,
  so fan-out handlers never execute inside the publisher's call stack.

The scheduler is deterministic: links drain round-robin in creation
order, each link strictly FIFO, and the loss model draws from the seeded
RNG in delivery order.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

Handler = Callable[[str, bytes, str], bytes]

#: Per-link queue entry: (kind, payload).
_Queued = Tuple[str, bytes]


class NetworkError(Exception):
    """Delivery failure (unknown peer, simulated drop, handler error)."""


class UnknownPeerError(NetworkError):
    pass


class MessageDropped(NetworkError):
    """The loss model dropped this message."""


class NetworkStats:
    """Aggregate counters, plus per-kind breakdowns for the benchmarks."""

    def __init__(self):
        self.messages = 0
        self.bytes_sent = 0
        self.round_trips = 0
        self.dropped = 0
        self.handler_errors = 0
        self.stalled = 0
        self.by_kind_messages: Dict[str, int] = {}
        self.by_kind_bytes: Dict[str, int] = {}

    def record(self, kind: str, size: int, round_trip: bool) -> None:
        self.messages += 1
        self.bytes_sent += size
        if round_trip:
            self.round_trips += 1
        self.by_kind_messages[kind] = self.by_kind_messages.get(kind, 0) + 1
        self.by_kind_bytes[kind] = self.by_kind_bytes.get(kind, 0) + size

    def record_drop(self) -> None:
        self.dropped += 1

    def record_handler_error(self) -> None:
        self.handler_errors += 1

    def record_stall(self) -> None:
        """A drain loop exhausted its round budget with work still queued —
        the signature of a stuck mesh (e.g. two peers ping-ponging
        messages forever).  Counted so dashboards can alert on it even
        when the accompanying :class:`NetworkError` is swallowed."""
        self.stalled += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "round_trips": self.round_trips,
            "dropped": self.dropped,
            "handler_errors": self.handler_errors,
            "stalled": self.stalled,
            "by_kind_messages": dict(self.by_kind_messages),
            "by_kind_bytes": dict(self.by_kind_bytes),
        }

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.round_trips = 0
        self.dropped = 0
        self.handler_errors = 0
        self.stalled = 0
        self.by_kind_messages.clear()
        self.by_kind_bytes.clear()

    def __repr__(self) -> str:
        return "NetworkStats(msgs=%d, bytes=%d, rtts=%d, drops=%d, herrs=%d)" % (
            self.messages, self.bytes_sent, self.round_trips,
            self.dropped, self.handler_errors,
        )


class SimulatedNetwork:
    """Message fabric between named peers.

    Parameters
    ----------
    latency_s:
        One-way propagation delay charged per message.
    bandwidth_bps:
        Bytes per simulated second; transfer time = size / bandwidth.
    drop_rate:
        Probability a message is dropped (deterministic via ``seed``);
        0 by default — the protocol benchmarks run on a reliable fabric.
    """

    def __init__(
        self,
        latency_s: float = 0.001,
        bandwidth_bps: float = 10_000_000.0,
        drop_rate: float = 0.0,
        seed: int = 0,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)
        self._handlers: Dict[str, Handler] = {}
        #: Per-link FIFO queues, keyed by (src, dst) in link-creation order.
        self._queues: Dict[Tuple[str, str], Deque[_Queued]] = {}
        self.clock_s = 0.0
        self.stats = NetworkStats()
        self.log: List[Tuple[str, str, str, int]] = []  # (src, dst, kind, size)
        self.log_enabled = True
        #: Last 100 isolated one-way handler failures, for debugging.
        self.handler_error_log: Deque[Tuple[str, str, str]] = deque(maxlen=100)

    # -- membership ------------------------------------------------------------

    def register(self, peer_id: str, handler: Handler) -> None:
        if peer_id in self._handlers:
            raise NetworkError("peer id %r already registered" % peer_id)
        self._handlers[peer_id] = handler

    def unregister(self, peer_id: str) -> None:
        self._handlers.pop(peer_id, None)

    def peers(self) -> List[str]:
        return sorted(self._handlers)

    def can_route(self, peer_id: str) -> bool:
        """Whether a send to ``peer_id`` can currently be delivered (it
        may still be dropped by the loss model).  On the simulated fabric
        every registered peer is reachable."""
        return peer_id in self._handlers

    # -- delivery ------------------------------------------------------------

    def _charge(self, kind: str, size: int, round_trip: bool) -> None:
        transfer = size / self.bandwidth_bps
        hops = 2 if round_trip else 1
        self.clock_s += self.latency_s * hops + transfer
        self.stats.record(kind, size, round_trip)

    def _maybe_drop(self) -> None:
        if self.drop_rate and self._rng.random() < self.drop_rate:
            self.stats.record_drop()
            raise MessageDropped("message dropped by loss model")

    def _record_handler_error(self, dst: str, kind: str, exc: Exception) -> None:
        self.stats.record_handler_error()
        self.handler_error_log.append((dst, kind, repr(exc)))

    def request(self, src: str, dst: str, kind: str, payload: bytes) -> bytes:
        """Synchronous round trip; returns the destination's response bytes."""
        handler = self._handlers.get(dst)
        if handler is None:
            raise UnknownPeerError("no peer %r" % dst)
        self._maybe_drop()
        if self.log_enabled:
            self.log.append((src, dst, kind, len(payload)))
        response = handler(kind, payload, src)
        if not isinstance(response, bytes):
            raise NetworkError(
                "handler for %r returned %s, expected bytes" % (kind, type(response).__name__)
            )
        self._charge(kind, len(payload) + len(response), round_trip=True)
        return response

    def post(self, src: str, dst: str, kind: str, payload: bytes) -> None:
        """One-way inline delivery; the response (if any) is discarded.

        A drop still raises :class:`MessageDropped` at the sender (that is
        what makes resends meaningful), but a *handler* failure is the
        receiver's problem: it is counted in :attr:`NetworkStats` and does
        not propagate into the sender's call stack.
        """
        handler = self._handlers.get(dst)
        if handler is None:
            raise UnknownPeerError("no peer %r" % dst)
        self._maybe_drop()
        if self.log_enabled:
            self.log.append((src, dst, kind, len(payload)))
        self._charge(kind, len(payload), round_trip=False)
        try:
            handler(kind, payload, src)
        except Exception as exc:
            self._record_handler_error(dst, kind, exc)

    # -- queued one-way delivery ------------------------------------------------

    def post_async(self, src: str, dst: str, kind: str, payload: bytes) -> None:
        """Enqueue a one-way message on the (src, dst) link FIFO.

        Nothing executes until :meth:`flush` — publishers never run
        subscriber handlers inline.  Loss, accounting and delivery all
        happen at drain time, in deterministic order.
        """
        if dst not in self._handlers:
            raise UnknownPeerError("no peer %r" % dst)
        queue = self._queues.get((src, dst))
        if queue is None:
            queue = self._queues[(src, dst)] = deque()
        queue.append((kind, payload))

    def pending(self) -> int:
        """Number of queued (not yet delivered) async messages."""
        return sum(len(queue) for queue in self._queues.values())

    def flush(self) -> int:
        """One drain pass: deliver every message queued at call time.

        Links are serviced round-robin in creation order, one message per
        link per turn; each link is strictly FIFO.  Messages enqueued *by
        handlers during the pass* stay queued for the next pass (use
        :meth:`run_until_idle` to drain transitively).  Returns the number
        of messages processed (delivered + dropped).
        """
        budgets = {
            link: len(queue) for link, queue in self._queues.items() if queue
        }
        processed = 0
        while budgets:
            for link in list(budgets):
                src, dst = link
                kind, payload = self._queues[link].popleft()
                processed += 1
                budgets[link] -= 1
                if not budgets[link]:
                    del budgets[link]
                self._deliver_queued(src, dst, kind, payload)
        return processed

    def run_until_idle(self, max_rounds: int = 10_000) -> int:
        """Flush repeatedly until no async messages remain queued.

        Exhausting ``max_rounds`` with messages still queued records a
        ``stalled`` count in :attr:`stats` and raises — a silently
        half-drained network is indistinguishable from a healthy one.
        """
        total = 0
        for _ in range(max_rounds):
            if not self.pending():
                return total
            total += self.flush()
        if not self.pending():
            return total
        self.stats.record_stall()
        raise NetworkError("network did not go idle in %d rounds "
                           "(%d messages still queued)"
                           % (max_rounds, self.pending()))

    def _deliver_queued(self, src: str, dst: str, kind: str, payload: bytes) -> None:
        handler = self._handlers.get(dst)
        if handler is None:
            # Peer left between enqueue and drain: account as a drop.
            self.stats.record_drop()
            return
        try:
            self._maybe_drop()
        except MessageDropped:
            return  # already counted; async senders observe drops via stats
        if self.log_enabled:
            self.log.append((src, dst, kind, len(payload)))
        self._charge(kind, len(payload), round_trip=False)
        try:
            handler(kind, payload, src)
        except Exception as exc:
            self._record_handler_error(dst, kind, exc)

    # -- introspection ------------------------------------------------------------

    def reset_accounting(self) -> None:
        self.stats.reset()
        self.log.clear()
        self.handler_error_log.clear()
        self.clock_s = 0.0
