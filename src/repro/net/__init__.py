"""Network substrate: peers, cost accounting, code repository.

Two interchangeable fabrics share one peer surface: the deterministic
:class:`SimulatedNetwork` (the twin every protocol property is proved
on) and the asyncio :class:`SocketNetwork` (real TCP / Unix-domain
bytes, pumped single-threaded).
"""

from .codeserver import CodeRepository, KIND_GET_ASSEMBLY, KIND_GET_DESCRIPTION
from .network import (
    MessageDropped,
    NetworkError,
    NetworkStats,
    SimulatedNetwork,
    UnknownPeerError,
)
from .peer import Peer, error_response
from .socket_transport import (
    DEFAULT_ZERO_COPY_KINDS,
    SocketHub,
    SocketNetwork,
    format_address,
    parse_address,
)

__all__ = [
    "CodeRepository",
    "DEFAULT_ZERO_COPY_KINDS",
    "KIND_GET_ASSEMBLY",
    "KIND_GET_DESCRIPTION",
    "MessageDropped",
    "NetworkError",
    "NetworkStats",
    "Peer",
    "SimulatedNetwork",
    "SocketHub",
    "SocketNetwork",
    "UnknownPeerError",
    "error_response",
    "format_address",
    "parse_address",
]
