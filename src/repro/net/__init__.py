"""Simulated network substrate: peers, cost accounting, code repository."""

from .codeserver import CodeRepository, KIND_GET_ASSEMBLY, KIND_GET_DESCRIPTION
from .network import (
    MessageDropped,
    NetworkError,
    NetworkStats,
    SimulatedNetwork,
    UnknownPeerError,
)
from .peer import Peer, error_response

__all__ = [
    "CodeRepository",
    "KIND_GET_ASSEMBLY",
    "KIND_GET_DESCRIPTION",
    "MessageDropped",
    "NetworkError",
    "NetworkStats",
    "Peer",
    "SimulatedNetwork",
    "UnknownPeerError",
    "error_response",
]
