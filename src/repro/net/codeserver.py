"""Code repository: the peer that serves type descriptions and assemblies.

In the paper objects travel with "download paths information to get the
code"; this is the server those paths point at.  It answers two kinds of
requests, mirroring steps 2-3 and 4-5 of Figure 1:

- ``get_description`` — the XML type description for a type name, so a
  receiver can check conformance *without* downloading any code;
- ``get_assembly`` — the full assembly (types + IL bodies) for a download
  path, fetched only after a successful conformance check.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cts.assembly import Assembly
from ..describe.description import TypeDescription
from ..describe.xml_codec import serialize_description_bytes
from ..serialization.binary import BinarySerializer
from .network import SimulatedNetwork
from .peer import Peer, error_response

KIND_GET_DESCRIPTION = "get_description"
KIND_GET_ASSEMBLY = "get_assembly"

#: Shared codec for plain-data (no object graph) wire forms; stateless
#: across calls, so one instance serves every decode_assembly.
_PLAIN_WIRE = BinarySerializer()


class CodeRepository(Peer):
    """A :class:`Peer` hosting published assemblies."""

    def __init__(self, peer_id: str, network: SimulatedNetwork):
        super().__init__(peer_id, network)
        self._assemblies_by_path: Dict[str, Assembly] = {}
        self._descriptions_by_name: Dict[str, TypeDescription] = {}
        self._paths_by_type: Dict[str, str] = {}
        self._codec = _PLAIN_WIRE  # assembly wire form is plain data
        self.on(KIND_GET_DESCRIPTION, self._serve_description)
        self.on(KIND_GET_ASSEMBLY, self._serve_assembly)

    # -- publication ------------------------------------------------------------

    def publish(self, assembly: Assembly) -> str:
        """Host an assembly; returns its download path."""
        self._assemblies_by_path[assembly.download_path] = assembly
        for info in assembly.types:
            self._descriptions_by_name[info.full_name] = TypeDescription.from_type_info(info)
            self._paths_by_type[info.full_name] = assembly.download_path
        return assembly.download_path

    def published_types(self):
        return sorted(self._descriptions_by_name)

    def path_for_type(self, full_name: str) -> Optional[str]:
        return self._paths_by_type.get(full_name)

    # -- request handlers ------------------------------------------------------------

    def _serve_description(self, payload: bytes, src: str) -> bytes:
        type_name = payload.decode("utf-8")
        description = self._descriptions_by_name.get(type_name)
        if description is None:
            return error_response("no description for %s" % type_name)
        return serialize_description_bytes(description)

    def _serve_assembly(self, payload: bytes, src: str) -> bytes:
        path = payload.decode("utf-8")
        assembly = self._assemblies_by_path.get(path)
        if assembly is None:
            # Fall back: the path may actually be a type name.
            mapped = self._paths_by_type.get(path)
            if mapped is not None:
                assembly = self._assemblies_by_path.get(mapped)
        if assembly is None:
            return error_response("no assembly at %s" % path)
        return self._codec.serialize(assembly.to_wire())

    # -- client helpers (used by the transport layer) -----------------------------

    @staticmethod
    def decode_assembly(data: bytes) -> Assembly:
        return Assembly.from_wire(_PLAIN_WIRE.deserialize(data))
