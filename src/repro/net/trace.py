"""Protocol tracing: render network logs as message sequence charts.

The simulated network records every message; this module turns that log
into the kind of ASCII sequence diagram Figure 1 of the paper shows — handy
for debugging protocol behaviour and for the examples' output.

Example output::

    alice                bob
      |--- object ------->|      571 B
      |<-- get_descri.. --|       13 B
      ...
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .network import SimulatedNetwork

LogEntry = Tuple[str, str, str, int]


def sequence_chart(
    log: Sequence[LogEntry],
    peers: Optional[Sequence[str]] = None,
    max_label: int = 16,
) -> str:
    """Render a message log as a two-or-more-lifeline sequence chart.

    ``peers`` fixes the lifeline order; by default lifelines appear in
    first-contact order.
    """
    if peers is None:
        seen: List[str] = []
        for src, dst, _, __ in log:
            for peer in (src, dst):
                if peer not in seen:
                    seen.append(peer)
        peers = seen
    if not peers:
        return "(no traffic)"

    column: Dict[str, int] = {peer: index for index, peer in enumerate(peers)}
    width = 22
    lines: List[str] = []

    header = ""
    for peer in peers:
        header += peer.ljust(width)
    lines.append(header.rstrip())

    for src, dst, kind, size in log:
        if src not in column or dst not in column:
            continue
        label = kind if len(kind) <= max_label else kind[: max_label - 2] + ".."
        left, right = sorted((column[src], column[dst]))
        rightward = column[src] <= column[dst]
        span = (right - left) * width - 2
        if rightward:
            arrow = "|" + ("-- %s " % label).ljust(span - 1, "-") + ">|"
        else:
            arrow = "|<" + ("-- %s " % label).ljust(span - 1, "-") + "|"
        line = " " * (left * width) + arrow
        lines.append("%s  %6d B" % (line.ljust(len(peers) * width), size))
    return "\n".join(lines)


def chart_for(network: SimulatedNetwork,
              peers: Optional[Sequence[str]] = None) -> str:
    """Sequence chart of everything the network has logged so far."""
    return sequence_chart(network.log, peers)


def kind_summary(log: Sequence[LogEntry]) -> Dict[str, Tuple[int, int]]:
    """Per-kind (message count, total bytes) summary of a log."""
    summary: Dict[str, Tuple[int, int]] = {}
    for _, __, kind, size in log:
        count, total = summary.get(kind, (0, 0))
        summary[kind] = (count + 1, total + size)
    return summary
