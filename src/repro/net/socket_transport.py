"""Real socket transport: the production twin of :class:`SimulatedNetwork`.

:class:`SocketNetwork` carries the exact peer-facing surface of the
simulator (``register``/``request``/``post``/``post_async``/``flush``/
``pending``/``stats``) over asyncio TCP or Unix-domain sockets, so every
endpoint built on :class:`~repro.net.peer.Peer` — brokers, mesh shards,
publishers, subscribers — runs unchanged on real bytes.

Wire layout — one transport message is a varint-length-prefixed frame::

    message := varint(len(body)) body
    body    := flags(1) varint(req_id)
               varint(len(src)) src  varint(len(dst)) dst
               varint(len(kind)) kind  payload

``payload`` is the application frame verbatim — for the bulk kinds
(``object``, ``object_batch``, ``mesh_forward``) that is an ``XME2``
envelope or ``XMEB`` multi-frame container, handed to the handler as a
**memoryview into the link's pooled receive buffer**: a drain cycle
allocates O(links), not O(records), and lazy batch admission decodes
nothing the subscriber does not dispatch.  All other kinds (control
plane, acks, replication protocol messages) are copied to ``bytes``
before dispatch, because their handlers may retain them.

The send path is scatter-gather: encoding builds only the small frame
header (length prefix, flags, request id and memoized length-prefixed
``src``/``dst``/``kind`` encodings) and queues it alongside the payload
*by reference* as a :class:`_WireFrame` segment list; draining flushes
each frame with ``transport.writelines`` (writev-style), so a
steady-state send never materializes a payload-sized buffer.  Payloads
that arrive as anything but ``bytes`` are snapshotted once — queued
frames outlive their caller's buffers — and that copy is counted in
``bytes_copied``, keeping the zero-copy claim observable.

Delivery discipline:

- **Send queues are bounded per link** (``max_queue_bytes``).  A full
  queue *blocks the publisher* — ``post_async`` pumps the event loop
  until the kernel drains enough to make room — and never drops or
  buffers without bound.  Overflowing past ``backpressure_timeout``
  raises :class:`NetworkError`.
- The event loop is **explicitly pumped, single-threaded**: I/O happens
  inside :meth:`poll`'s run phase, handlers run synchronously in its
  dispatch phase (never inside a socket callback), exactly like the
  simulator's drain — so broker code needs no locking and a handler may
  issue nested :meth:`request` calls mid-dispatch.
- Peers are discovered per link: each side of a connection announces its
  registered peer ids (and keeps announcing as peers register and
  unregister), so one socket multiplexes every peer of a process and
  responses ride the link the request arrived on.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple, Union

from ..serialization.envelope import CodecStats, _BufferPool
from .network import Handler, NetworkError, NetworkStats, UnknownPeerError

__all__ = [
    "DEFAULT_ZERO_COPY_KINDS",
    "SocketHub",
    "SocketNetwork",
    "format_address",
    "parse_address",
]

#: Kinds whose payloads are dispatched as zero-copy memoryviews into the
#: link's receive buffer.  Everything on this list must treat the payload
#: as borrowed for the duration of the handler call (the envelope/frame
#: readers do: decodes snapshot, stores copy).
DEFAULT_ZERO_COPY_KINDS = frozenset(
    {"object", "object_batch", "mesh_forward"})

_FLAG_ONEWAY = 0
_FLAG_REQUEST = 1
_FLAG_RESPONSE = 2
_FLAG_CONTROL = 3

_CTRL_HELLO = "hello"
_CTRL_ANNOUNCE = "announce"
_CTRL_REVOKE = "revoke"

#: Sanity bound on one wire frame; anything larger is a framing error
#: (a corrupted length prefix would otherwise stall the link forever
#: waiting for petabytes that never come).
_MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Transport write-buffer high-water mark: beyond it the protocol gets
#: ``pause_writing`` and the link stops draining its queue, which is what
#: makes the queue bound (and its backpressure) meaningful.
_WRITE_HIGH_WATER = 64 * 1024

#: Payload size above which a scatter frame is flushed as two ``write``
#: calls instead of one ``writelines`` when the transport's ``writelines``
#: is the joining base implementation (CPython < 3.12 selector
#: transports): past this point the joined payload-sized copy costs more
#: than the extra syscall.  Transports with a native scatter-gather
#: ``writelines`` (sendmsg-based) always get the single segmented call.
_SEGMENT_WRITE_MIN = 4096


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _varint_size(value: int) -> int:
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size


#: Cap on the memoized ``src``/``dst``/``kind`` field encodings.  The
#: stable strings of a mesh (node ids, peer ids, message kinds) number in
#: the hundreds; the cap only matters under unbounded peer churn, where
#: the oldest (coldest) entry is evicted FIFO.
_FIELD_MEMO_MAX = 1024


def _scan_varint(data, pos: int, end: int) -> Optional[Tuple[int, int]]:
    """Read one varint in ``data[pos:end]``; ``None`` when incomplete,
    :class:`NetworkError` when malformed (too long to be a sane length)."""
    shift = 0
    value = 0
    while pos < end:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise NetworkError("malformed varint in frame header")
    return None


def parse_address(address: str) -> Tuple[str, object]:
    """``"unix:/path"`` or ``"tcp:host:port"`` → (scheme, target)."""
    if address.startswith("unix:"):
        return "unix", address[5:]
    if address.startswith("tcp:"):
        host, _, port = address[4:].rpartition(":")
        if not host or not port:
            raise ValueError("tcp address must be tcp:host:port")
        return "tcp", (host, int(port))
    raise ValueError("address must be unix:/path or tcp:host:port, got %r"
                     % address)


def format_address(scheme: str, target) -> str:
    if scheme == "unix":
        return "unix:%s" % target
    return "tcp:%s:%d" % target


class _WireFrame:
    """One encoded outbound message as a scatter-gather segment list.

    ``segments`` is ``(header, payload)``: the small frame header (length
    prefix + flags + req id + field table, ~20 bytes steady-state) plus
    the payload carried **by reference** — encoding a send allocates the
    header only, never a payload-sized buffer.  ``len()`` is the total
    wire size, so every byte-accounting site (``tx_bytes``, high-water,
    the backpressure bound) works unchanged on either frame shape.
    """

    __slots__ = ("segments", "size")

    def __init__(self, segments: Tuple[bytes, ...], size: int):
        self.segments = segments
        self.size = size

    def __len__(self) -> int:
        return self.size


#: What a link's send queue holds: scatter-gather frames on the default
#: path, flat ``bytes`` on the ``scatter_send=False`` baseline path.
_OutFrame = Union[bytes, _WireFrame]


class _Inbound:
    """One parsed-but-not-yet-dispatched inbound frame: header fields are
    decoded eagerly (they are tiny), the payload stays as ``[start, end)``
    offsets into the link's receive buffer — offsets, not memoryviews, so
    the buffer can keep growing while frames wait for the dispatch phase."""

    __slots__ = ("flags", "req_id", "src", "dst", "kind", "start", "end")

    def __init__(self, flags, req_id, src, dst, kind, start, end):
        self.flags = flags
        self.req_id = req_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.start = start
        self.end = end


class _Link(asyncio.Protocol):
    """One socket connection: bounded send queue + pooled receive buffer."""

    def __init__(self, network: "SocketNetwork", address: Optional[str]):
        self.network = network
        self.address = address          # dial address; None for inbound
        self.transport: Optional[asyncio.Transport] = None
        self.connected = False
        self.dead = False
        self.failed = False
        self.paused = False
        self._draining = False
        self._joining_writelines = True
        #: Outbound frames not yet written to the transport.
        self.tx: Deque[_OutFrame] = deque()
        self.tx_bytes = 0
        self.tx_high_water = 0
        #: Pooled receive buffer; ``scan`` is the parse position.
        self.rx = network._recv_pool.acquire()
        self.scan = 0
        self.inbound: Deque[_Inbound] = deque()
        self.remote_node: Optional[str] = None
        self.remote_peers: Set[str] = set()
        #: The membership epoch the remote node last advertised (0 until
        #: a hello/announce carried an ``!epoch=`` tag).
        self.remote_epoch = 0

    # -- sending -----------------------------------------------------------

    def send_frame(self, frame: _OutFrame) -> None:
        self.tx.append(frame)
        self.tx_bytes += len(frame)
        if self.tx_bytes > self.tx_high_water:
            self.tx_high_water = self.tx_bytes
        if self.connected and not self.paused:
            self._drain()

    def _drain(self) -> None:
        # Idempotent under re-entry: a write that crosses the transport's
        # high-water mark can fire pause_writing and (once the kernel
        # drains) resume_writing *synchronously*, and resume_writing calls
        # _drain while the outer loop still owns the queue.  The guard
        # turns the nested call into a no-op, so each frame is popped and
        # written exactly once, in order, at recursion depth one.
        if self._draining:
            return
        self._draining = True
        try:
            transport = self.transport
            while self.tx and not self.paused and transport is not None:
                frame = self.tx.popleft()
                self.tx_bytes -= len(frame)
                if type(frame) is _WireFrame:
                    # writev-style flush: header + payload go down as
                    # separate segments, no joined payload-sized copy.
                    segments = frame.segments
                    if (self._joining_writelines
                            and len(segments[-1]) >= _SEGMENT_WRITE_MIN):
                        for segment in segments:
                            transport.write(segment)
                    else:
                        transport.writelines(segments)
                else:
                    transport.write(frame)
        finally:
            self._draining = False

    def pause_writing(self) -> None:
        self.paused = True

    def resume_writing(self) -> None:
        self.paused = False
        self._drain()

    # -- asyncio.Protocol --------------------------------------------------

    def connection_made(self, transport) -> None:
        self.transport = transport
        self.connected = True
        self._joining_writelines = (
            type(transport).writelines
            is asyncio.transports.WriteTransport.writelines)
        transport.set_write_buffer_limits(high=_WRITE_HIGH_WATER)
        sock = transport.get_extra_info("socket")
        if sock is not None and sock.family == getattr(socket, "AF_INET",
                                                       object()):
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.network._link_connected(self)
        self._drain()

    def data_received(self, data: bytes) -> None:
        try:
            self.rx += data
        except BufferError:
            # A live memoryview pins the buffer against resizing — this
            # happens when a handler pumps the loop mid-dispatch (a nested
            # request) while still holding its zero-copy payload.  The
            # content moves to a fresh buffer (same layout, so queued
            # frame offsets stay valid); view holders keep the old one.
            fresh = bytearray(self.rx)
            fresh += data
            self.rx = fresh
        self._scan()

    def connection_lost(self, exc) -> None:
        self.network._link_lost(self, exc)

    def eof_received(self):
        return False  # close when the other side half-closes

    # -- frame scanning ----------------------------------------------------

    def _scan(self) -> None:
        """Parse every complete frame out of the receive buffer.

        Runs inside ``data_received`` (the I/O phase): header fields are
        decoded, control frames and request responses are handled on the
        spot (they are small and must not wait behind a busy dispatch
        loop), data frames queue as buffer offsets for the dispatch
        phase.  A malformed header kills the link — framing has no
        resync point."""
        rx = self.rx
        try:
            while True:
                total = len(rx)
                parsed = _scan_varint(rx, self.scan, total)
                if parsed is None:
                    return
                body_len, body_start = parsed
                if body_len > _MAX_FRAME_BYTES:
                    raise NetworkError("frame of %d bytes exceeds limit"
                                       % body_len)
                end = body_start + body_len
                if end > total:
                    return  # incomplete: wait for more bytes
                self._parse_body(rx, body_start, end)
                self.scan = end
        except NetworkError:
            self.network._framing_error(self)

    def _parse_body(self, rx, pos: int, end: int) -> None:
        if pos >= end:
            raise NetworkError("empty frame body")
        flags = rx[pos]
        pos += 1
        fields: List[str] = []
        parsed = _scan_varint(rx, pos, end)
        if parsed is None:
            raise NetworkError("truncated frame header")
        req_id, pos = parsed
        for _ in range(3):  # src, dst, kind
            parsed = _scan_varint(rx, pos, end)
            if parsed is None:
                raise NetworkError("truncated frame header")
            length, pos = parsed
            if pos + length > end:
                raise NetworkError("truncated frame header field")
            fields.append(bytes(rx[pos:pos + length]).decode("utf-8"))
            pos += length
        src, dst, kind = fields
        if flags == _FLAG_CONTROL:
            self.network._handle_control(self, kind, bytes(rx[pos:end]))
        elif flags == _FLAG_RESPONSE:
            self.network._fulfill(req_id, bytes(rx[pos:end]))
        elif flags in (_FLAG_ONEWAY, _FLAG_REQUEST):
            self.inbound.append(
                _Inbound(flags, req_id, src, dst, kind, pos, end))
        else:
            raise NetworkError("unknown frame flags %d" % flags)

    # -- buffer hygiene ----------------------------------------------------

    def compact(self) -> None:
        """Drop consumed bytes once every parsed frame is dispatched.

        Called only at dispatch depth zero, when no payload memoryview
        can be live.  A handler that (wrongly) retained a view makes the
        trim impossible — the buffer is abandoned to the view holders and
        a fresh one takes over, so nothing ever reads recycled bytes."""
        if self.inbound or not self.scan:
            return
        try:
            del self.rx[:self.scan]
        except BufferError:
            self.rx = bytearray(memoryview(self.rx)[self.scan:])
        self.scan = 0

    def queued(self) -> int:
        return len(self.tx)


class SocketNetwork:
    """A socket-backed message fabric with the simulator's peer surface.

    One instance per process (or per node in a shared-loop test hub).
    Local peers :meth:`register` handlers; remote peers are reached via a
    static :meth:`add_route` address book or learned dynamically from the
    peer announcements each connection carries.  All I/O and all handler
    dispatch happen inside explicit pump calls (:meth:`poll`,
    :meth:`flush`, :meth:`request`) on the calling thread.
    """

    def __init__(self, node_id: str,
                 loop: Optional[asyncio.AbstractEventLoop] = None,
                 max_queue_bytes: int = 4 * 1024 * 1024,
                 request_timeout: float = 30.0,
                 backpressure_timeout: float = 30.0,
                 zero_copy_kinds=DEFAULT_ZERO_COPY_KINDS,
                 recv_pool_stats: Optional[CodecStats] = None,
                 scatter_send: bool = True):
        self.node_id = node_id
        #: The topology epoch this node advertises in its greetings (0 =
        #: not membership-aware); see :meth:`set_epoch`.
        self.epoch = 0
        #: Encode sends as scatter-gather segment lists (header + payload
        #: by reference); False restores the flat per-send bytes copy
        #: (benchmark baseline).
        self.scatter_send = bool(scatter_send)
        self._owns_loop = loop is None
        self._loop = loop if loop is not None else asyncio.new_event_loop()
        self.max_queue_bytes = max_queue_bytes
        self.request_timeout = request_timeout
        self.backpressure_timeout = backpressure_timeout
        self.zero_copy_kinds = frozenset(zero_copy_kinds)
        self._handlers: Dict[str, Handler] = {}
        self._routes: Dict[str, str] = {}
        self._links: List[_Link] = []
        self._links_by_address: Dict[str, _Link] = {}
        self._learned: Dict[str, _Link] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self.listen_addresses: List[str] = []
        self._local: Deque[Tuple[str, str, str, bytes]] = deque()
        self._responses: Dict[int, object] = {}
        self._pending_requests: Dict[int, _Link] = {}
        self._next_req_id = 1
        self._connecting = 0
        self._dispatch_depth = 0
        self._closed = False
        #: Set when this node lives on a :class:`SocketHub` — pumping must
        #: then dispatch every sibling node, or a request to an in-process
        #: peer would wait forever for a handler that never runs.
        self.hub: Optional["SocketHub"] = None
        self.stats = NetworkStats()
        #: Receive-side buffer pool (the zero-copy ingest path); its
        #: ``buffer_pool_hits`` counts links served a warm buffer.
        self.recv_pool_stats = recv_pool_stats if recv_pool_stats is not None \
            else CodecStats()
        self._recv_pool = _BufferPool(self.recv_pool_stats, max_free=64)
        #: Scratch pool for frame headers and memoized length-prefixed
        #: ``src``/``dst``/``kind`` encodings (see :meth:`_encode_frame`).
        self._header_pool = _BufferPool()
        self._field_memo: Dict[str, bytes] = {}
        # Transport counters beyond the simulator's NetworkStats.
        self.frames_sent = 0          # data frames enqueued (incl. responses)
        self.frames_received = 0      # data frames dispatched/fulfilled
        self.frames_lost = 0          # queued frames a dead link took down
        self.bytes_received = 0
        self.framing_errors = 0
        self.blocked_sends = 0        # post_async calls that hit backpressure
        self.bytes_copied = 0         # payload bytes snapshotted at encode
        #: Opt-in bounded frame log in the simulator's ``(src, dst, kind,
        #: size)`` shape, so :func:`repro.net.trace.sequence_chart` renders
        #: real socket traffic exactly like simulated traffic.
        self.frame_log_enabled = False
        self.frame_log: Deque[Tuple[str, str, str, int]] = deque(maxlen=512)

    # -- membership (simulator-compatible) ---------------------------------

    def register(self, peer_id: str, handler: Handler) -> None:
        if peer_id in self._handlers:
            raise NetworkError("peer id %r already registered" % peer_id)
        self._handlers[peer_id] = handler
        self._broadcast_control(_CTRL_ANNOUNCE, [peer_id])

    def unregister(self, peer_id: str) -> None:
        if self._handlers.pop(peer_id, None) is not None and not self._closed:
            self._broadcast_control(_CTRL_REVOKE, [peer_id])

    def peers(self) -> List[str]:
        return sorted(self._handlers)

    def can_route(self, peer_id: str) -> bool:
        """Whether a send to ``peer_id`` can currently be resolved: a
        local handler, a live link that announced the peer, or a static
        directory entry.  Lets callers defer work for a peer that has
        simply not dialed this node yet instead of burning a send."""
        if peer_id in self._handlers or peer_id in self._routes:
            return True
        link = self._learned.get(peer_id)
        return link is not None and not link.dead

    # -- addressing --------------------------------------------------------

    def listen(self, address: str) -> str:
        """Open a listening endpoint; returns the canonical address (TCP
        port 0 is resolved to the bound port)."""
        scheme, target = parse_address(address)
        if scheme == "unix":
            server = self._loop.run_until_complete(
                self._loop.create_unix_server(
                    lambda: _Link(self, None), path=target))
            bound = format_address("unix", target)
        else:
            host, port = target
            server = self._loop.run_until_complete(
                self._loop.create_server(
                    lambda: _Link(self, None), host=host, port=port))
            sock = server.sockets[0]
            bound = format_address("tcp", sock.getsockname()[:2])
        self._servers.append(server)
        self.listen_addresses.append(bound)
        return bound

    def add_route(self, peer_id: str, address: str) -> None:
        """Static directory entry: ``peer_id`` lives behind ``address``."""
        parse_address(address)  # validate early
        self._routes[peer_id] = address

    def add_routes(self, routes: Dict[str, str]) -> None:
        for peer_id, address in routes.items():
            self.add_route(peer_id, address)

    def remove_route(self, peer_id: str) -> None:
        """Forget the directory entry for a departed peer (an open link,
        if any, stays up until it drains or dies — only *new* resolution
        stops)."""
        self._routes.pop(peer_id, None)

    def set_epoch(self, epoch: int) -> None:
        """Advertise a committed membership epoch: stamped into every
        future ``hello`` and announced immediately on live links as an
        ``!epoch=N`` tag riding the ``announce`` control kind (the ``!``
        prefix reserves a tag namespace no legal peer id uses)."""
        if epoch == self.epoch:
            return
        self.epoch = int(epoch)
        self._broadcast_control(_CTRL_ANNOUNCE, ["!epoch=%d" % self.epoch])

    def connect(self, address: str) -> None:
        """Pre-open a link (links otherwise open lazily on first send)."""
        self._link_to(address)

    # -- delivery (simulator-compatible) -----------------------------------

    def request(self, src: str, dst: str, kind: str, payload: bytes) -> bytes:
        if self.frame_log_enabled:
            self.frame_log.append((src, dst, kind, len(payload)))
        handler = self._handlers.get(dst)
        if handler is not None:
            # Local round trip, exactly like the simulator: inline call.
            response = handler(kind, payload, src)
            if not isinstance(response, bytes):
                raise NetworkError("handler for %r returned %s, expected "
                                   "bytes" % (kind, type(response).__name__))
            self.stats.record(kind, len(payload) + len(response),
                              round_trip=True)
            return response
        link = self._link_for(dst)
        req_id = self._next_req_id
        self._next_req_id += 1
        frame = self._encode_frame(_FLAG_REQUEST, req_id, src, dst, kind,
                                   payload)
        self._pending_requests[req_id] = link
        self.stats.record(kind, len(payload), round_trip=True)
        try:
            self._send_with_backpressure(link, frame)
            deadline = time.monotonic() + self.request_timeout
            while req_id not in self._responses:
                # Serve inbound *requests* while waiting: the responder
                # may need us (or a third node) to answer something first.
                # One-way data frames stay queued — dispatching them here
                # would run fan-out handlers mid-request and reorder the
                # publish stream around the blocked frame.
                self._pump(0.002, requests_only=True)
                if req_id not in self._responses \
                        and time.monotonic() > deadline:
                    raise NetworkError("request %s->%s %r timed out"
                                       % (src, dst, kind))
        finally:
            self._pending_requests.pop(req_id, None)
        result = self._responses.pop(req_id)
        if isinstance(result, Exception):
            raise result
        return result  # type: ignore[return-value]

    def post(self, src: str, dst: str, kind: str, payload: bytes) -> None:
        self.post_async(src, dst, kind, payload)

    def post_async(self, src: str, dst: str, kind: str,
                   payload: bytes) -> None:
        if self.frame_log_enabled:
            self.frame_log.append((src, dst, kind, len(payload)))
        if dst in self._handlers:
            self._local.append((src, dst, kind, bytes(payload)))
            self.stats.record(kind, len(payload), round_trip=False)
            return
        link = self._link_for(dst)
        frame = self._encode_frame(_FLAG_ONEWAY, 0, src, dst, kind, payload)
        self.stats.record(kind, len(payload), round_trip=False)
        self._send_with_backpressure(link, frame)

    def pending(self) -> int:
        return (len(self._local)
                + sum(link.queued() + len(link.inbound)
                      for link in self._links))

    def flush(self) -> int:
        """One pump: run the I/O phase briefly, dispatch what arrived."""
        return self.poll(0.001)

    def run_until_idle(self, max_rounds: int = 10_000,
                       settle: float = 0.05) -> int:
        """Pump until this node has nothing queued in either direction and
        ``settle`` seconds pass without new work.  A single node cannot
        see bytes in flight elsewhere — use :meth:`SocketHub.run_until_idle`
        (or application-level accounting) for whole-fabric quiescence."""
        total = 0
        quiet_since: Optional[float] = None
        for _ in range(max_rounds):
            progressed = self.poll(0.002)
            total += progressed
            if progressed or self.pending():
                quiet_since = None
                continue
            now = time.monotonic()
            if quiet_since is None:
                quiet_since = now
            elif now - quiet_since >= settle:
                return total
        raise NetworkError("socket network did not go idle in %d rounds "
                           "(%d messages pending)"
                           % (max_rounds, self.pending()))

    # -- pumping -----------------------------------------------------------

    def poll(self, wait: float = 0.0, requests_only: bool = False) -> int:
        """Run the event loop for up to ``wait`` seconds (the I/O phase),
        then dispatch parsed inbound frames (the dispatch phase).
        Returns the number of frames dispatched."""
        self._run_io(wait)
        return self._dispatch_ready(requests_only=requests_only)

    def _pump(self, wait: float, requests_only: bool = False) -> int:
        if self.hub is not None:
            return self.hub.poll(wait, requests_only=requests_only)
        return self.poll(wait, requests_only=requests_only)

    def _run_io(self, wait: float) -> None:
        if self._loop.is_running() or self._loop.is_closed():
            return  # re-entered from a handler running inside the loop
        self._loop.run_until_complete(asyncio.sleep(wait))

    def _dispatch_ready(self, requests_only: bool = False) -> int:
        processed = 0
        self._dispatch_depth += 1
        try:
            progress = True
            while progress:
                progress = False
                if not requests_only:
                    while self._local:
                        src, dst, kind, payload = self._local.popleft()
                        self._dispatch_local(src, dst, kind, payload)
                        processed += 1
                        progress = True
                for link in list(self._links):
                    if requests_only:
                        # Requests jump the queue; one-way frames keep
                        # their relative FIFO order for the next full
                        # dispatch phase.
                        if not any(entry.flags == _FLAG_REQUEST
                                   for entry in link.inbound):
                            continue
                        keep = deque()
                        while link.inbound:
                            entry = link.inbound.popleft()
                            if entry.flags == _FLAG_REQUEST:
                                self._dispatch_entry(link, entry)
                                processed += 1
                                progress = True
                            else:
                                keep.append(entry)
                        link.inbound = keep
                        continue
                    while link.inbound:
                        entry = link.inbound.popleft()
                        self._dispatch_entry(link, entry)
                        processed += 1
                        progress = True
        finally:
            self._dispatch_depth -= 1
        if self._dispatch_depth == 0:
            for link in list(self._links):
                link.compact()
                if link.dead and not link.inbound:
                    self._reap(link)
        return processed

    def _dispatch_local(self, src: str, dst: str, kind: str,
                        payload: bytes) -> None:
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.record_drop()  # peer left between enqueue and drain
            return
        try:
            handler(kind, payload, src)
        except Exception as exc:
            self.stats.record_handler_error()
            self.handler_error_log.append((dst, kind, repr(exc)))

    def _dispatch_entry(self, link: _Link, entry: _Inbound) -> None:
        self.frames_received += 1
        self.bytes_received += entry.end - entry.start
        if self.frame_log_enabled:
            self.frame_log.append((entry.src, entry.dst, entry.kind,
                                   entry.end - entry.start))
        handler = self._handlers.get(entry.dst)
        if handler is None:
            if entry.flags == _FLAG_REQUEST:
                self._respond(link, entry.req_id,
                              b"ERR:unknown-peer:" +
                              entry.dst.encode("utf-8"))
            else:
                self.stats.record_drop()
            return
        if entry.kind in self.zero_copy_kinds:
            payload: object = memoryview(link.rx)[entry.start:entry.end]
        else:
            payload = bytes(link.rx[entry.start:entry.end])
        try:
            response = handler(entry.kind, payload, entry.src)
        except Exception as exc:
            self.stats.record_handler_error()
            self.handler_error_log.append((entry.dst, entry.kind, repr(exc)))
            if entry.flags == _FLAG_REQUEST:
                self._respond(link, entry.req_id,
                              b"ERR:handler-error:" +
                              repr(exc).encode("utf-8", "replace"))
            return
        finally:
            if payload is not link.rx and isinstance(payload, memoryview):
                payload.release()
        if entry.flags == _FLAG_REQUEST:
            if not isinstance(response, bytes):
                response = b"ERR:bad-handler-response"
            self._respond(link, entry.req_id, response)

    def _respond(self, link: _Link, req_id: int, payload: bytes) -> None:
        # Responses bypass the backpressure block: they are produced inside
        # the dispatch phase, where pumping for queue space would recurse.
        frame = self._encode_frame(_FLAG_RESPONSE, req_id, "", "", "",
                                   payload)
        self.frames_sent += 1
        if not link.dead:
            link.send_frame(frame)
        else:
            self.frames_lost += 1

    # -- links -------------------------------------------------------------

    def _link_for(self, dst: str) -> _Link:
        link = self._learned.get(dst)
        if link is not None and not link.dead:
            return link
        address = self._routes.get(dst)
        if address is None:
            raise UnknownPeerError("no peer %r (no route, not announced)"
                                   % dst)
        return self._link_to(address)

    def _link_to(self, address: str) -> _Link:
        link = self._links_by_address.get(address)
        if link is not None and not link.dead:
            return link
        scheme, target = parse_address(address)
        link = _Link(self, address)
        self._links.append(link)
        self._links_by_address[address] = link
        link.send_frame(self._hello_frame())
        self._connecting += 1

        async def _open() -> None:
            try:
                if scheme == "unix":
                    await self._loop.create_unix_connection(
                        lambda: link, path=target)
                else:
                    host, port = target
                    await self._loop.create_connection(
                        lambda: link, host=host, port=port)
            except OSError as exc:
                self._link_lost(link, exc)
            finally:
                self._connecting -= 1

        asyncio.ensure_future(_open(), loop=self._loop)
        return link

    def _hello_frame(self) -> _OutFrame:
        lines = [self.node_id]
        if self.epoch:
            lines.append("!epoch=%d" % self.epoch)
        body = "\n".join(lines + sorted(self._handlers))
        return self._encode_frame(_FLAG_CONTROL, 0, "", "", _CTRL_HELLO,
                                  body.encode("utf-8"))

    def _broadcast_control(self, kind: str, peer_ids: List[str]) -> None:
        if not self._links:
            return
        frame = self._encode_frame(_FLAG_CONTROL, 0, "", "", kind,
                                   "\n".join(peer_ids).encode("utf-8"))
        for link in self._links:
            if not link.dead:
                link.send_frame(frame)

    def _link_connected(self, link: _Link) -> None:
        if link.address is None:      # inbound: adopt and greet back
            self._links.append(link)
            link.send_frame(self._hello_frame())

    def _handle_control(self, link: _Link, kind: str,
                        payload: bytes) -> None:
        names = payload.decode("utf-8").split("\n") if payload else []
        if kind == _CTRL_HELLO:
            if names:
                link.remote_node = names[0]
                names = names[1:]
        elif kind == _CTRL_REVOKE:
            for peer_id in names:
                link.remote_peers.discard(peer_id)
                if self._learned.get(peer_id) is link:
                    del self._learned[peer_id]
            return
        elif kind != _CTRL_ANNOUNCE:
            return  # unknown control frames are ignored (forward compat)
        for peer_id in names:
            if not peer_id:
                continue
            if peer_id.startswith("!"):
                # Reserved tag line, not a peer: currently only the
                # advertised membership epoch.
                key, _, value = peer_id[1:].partition("=")
                if key == "epoch":
                    try:
                        link.remote_epoch = int(value)
                    except ValueError:
                        pass
                continue
            link.remote_peers.add(peer_id)
            self._learned[peer_id] = link

    def _fulfill(self, req_id: int, payload: bytes) -> None:
        self.frames_received += 1
        self.bytes_received += len(payload)
        if req_id in self._pending_requests:
            self._responses[req_id] = payload

    def _framing_error(self, link: _Link) -> None:
        self.framing_errors += 1
        self.stats.record_drop()
        link.failed = True
        if link.transport is not None:
            link.transport.abort()
        else:
            self._link_lost(link, NetworkError("malformed frame"))

    def _link_lost(self, link: _Link, exc) -> None:
        if link.dead:
            return
        link.dead = True
        link.connected = False
        if link.tx:
            self.frames_lost += len(link.tx)
            self.stats.dropped += len(link.tx)
            link.tx.clear()
            link.tx_bytes = 0
        if len(link.rx) > link.scan and not link.failed:
            # The peer vanished mid-frame: a truncated frame on the wire.
            self.framing_errors += 1
            self.stats.record_drop()
        for peer_id in list(link.remote_peers):
            if self._learned.get(peer_id) is link:
                del self._learned[peer_id]
        link.remote_peers.clear()
        if link.address is not None \
                and self._links_by_address.get(link.address) is link:
            del self._links_by_address[link.address]
        failure = NetworkError("link %s lost: %r"
                               % (link.address or "inbound", exc))
        for req_id, pending_link in list(self._pending_requests.items()):
            if pending_link is link:
                self._responses[req_id] = failure
        if not link.inbound:
            self._reap(link)

    def _reap(self, link: _Link) -> None:
        """Final teardown once a dead link's parsed frames are dispatched:
        the receive buffer goes back to the pool for the next link."""
        if link in self._links:
            self._links.remove(link)
        link.scan = 0
        self._recv_pool.release(link.rx)
        link.rx = bytearray()

    # -- sending machinery -------------------------------------------------

    def _encode_frame(self, flags: int, req_id: int, src: str, dst: str,
                      kind: str, payload: bytes) -> _OutFrame:
        if not isinstance(payload, bytes):
            # A queued frame can outlive the caller's buffer (a paused
            # link, a blocked peer, a receive buffer about to compact) —
            # non-bytes payloads must be snapshotted, and the copy is
            # accounted so the zero-copy claim stays checkable.
            payload = bytes(payload)
            self.bytes_copied += len(payload)
        if not self.scatter_send:
            body = bytearray()
            body.append(flags)
            _write_varint(body, req_id)
            for field in (src, dst, kind):
                raw = field.encode("utf-8")
                _write_varint(body, len(raw))
                body += raw
            body += payload
            frame = bytearray()
            _write_varint(frame, len(body))
            frame += body
            return bytes(frame)
        memo = self._field_memo
        entries = []
        body_len = 1 + _varint_size(req_id) + len(payload)
        for field in (src, dst, kind):
            entry = memo.get(field)
            if entry is None:
                raw = field.encode("utf-8")
                scratch = self._header_pool.acquire()
                try:
                    _write_varint(scratch, len(raw))
                    scratch += raw
                    entry = bytes(scratch)
                finally:
                    self._header_pool.release(scratch)
                if len(memo) >= _FIELD_MEMO_MAX:
                    memo.pop(next(iter(memo)))
                memo[field] = entry
            entries.append(entry)
            body_len += len(entry)
        header = self._header_pool.acquire()
        try:
            _write_varint(header, body_len)
            header.append(flags)
            _write_varint(header, req_id)
            for entry in entries:
                header += entry
            return _WireFrame((bytes(header), payload),
                              len(header) + len(payload))
        finally:
            self._header_pool.release(header)

    def _send_with_backpressure(self, link: _Link,
                                frame: _OutFrame) -> None:
        if link.tx_bytes + len(frame) > self.max_queue_bytes \
                and not link.dead:
            # Block the publisher: pump I/O (never dispatch — handlers
            # must not run inside a send) until the kernel drains room.
            self.blocked_sends += 1
            deadline = time.monotonic() + self.backpressure_timeout
            while not link.dead \
                    and link.tx_bytes + len(frame) > self.max_queue_bytes:
                self._run_io(0.002)
                if time.monotonic() > deadline:
                    raise NetworkError(
                        "send queue to %s full for %.0fs (%d bytes queued)"
                        % (link.address or link.remote_node,
                           self.backpressure_timeout, link.tx_bytes))
        if link.dead:
            self.frames_lost += 1
            self.stats.record_drop()
            return
        self.frames_sent += 1
        link.send_frame(frame)

    # -- observability -----------------------------------------------------

    def frame_chart(self, peers=None) -> str:
        """Message sequence chart of the bounded frame log (opt in with
        ``frame_log_enabled = True``): the simulator's renderer applied
        to real socket frames."""
        from .trace import sequence_chart
        return sequence_chart(list(self.frame_log), peers=peers)

    #: Kept API-compatible with the simulator for error forensics.
    @property
    def handler_error_log(self):
        log = self.__dict__.get("_handler_error_log")
        if log is None:
            log = self.__dict__["_handler_error_log"] = deque(maxlen=100)
        return log

    @property
    def queue_high_water(self) -> int:
        """The largest send-queue depth (bytes) any link ever reached."""
        waters = [link.tx_high_water for link in self._links]
        cached = self.__dict__.get("_hw_peak", 0)
        peak = max(waters + [cached])
        self.__dict__["_hw_peak"] = peak
        return peak

    def transport_snapshot(self) -> Dict[str, object]:
        """Socket-specific counters, shaped for the BENCH json flow."""
        return {
            "node": self.node_id,
            "epoch": self.epoch,
            "peer_epochs": {link.remote_node: link.remote_epoch
                            for link in self._links
                            if link.remote_node is not None},
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "frames_lost": self.frames_lost,
            "bytes_received": self.bytes_received,
            "framing_errors": self.framing_errors,
            "blocked_sends": self.blocked_sends,
            "bytes_copied": self.bytes_copied,
            "queue_high_water": self.queue_high_water,
            "links": len(self._links),
            "recv_pool": self.recv_pool_stats.as_dict(),
            "by_kind_messages": dict(self.stats.by_kind_messages),
            "by_kind_bytes": dict(self.stats.by_kind_bytes),
        }

    # -- lifecycle ---------------------------------------------------------

    def idle(self) -> bool:
        """No queued work on this node (in-flight wire bytes invisible)."""
        return (not self._local
                and not self._connecting
                and not self._pending_requests
                and all(not link.tx and not link.inbound
                        for link in self._links))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for server in self._servers:
            server.close()
        for link in list(self._links):
            if link.transport is not None:
                link.transport.close()
        if not self._loop.is_closed() and not self._loop.is_running():
            # Let close handshakes and connection_lost callbacks run.
            try:
                self._loop.run_until_complete(asyncio.sleep(0.01))
            except RuntimeError:  # pragma: no cover - loop torn down already
                pass
        for address in self.listen_addresses:
            scheme, target = parse_address(address)
            if scheme == "unix":
                try:
                    os.unlink(target)
                except OSError:
                    pass
        if self._owns_loop and not self._loop.is_closed():
            self._loop.close()


class SocketHub:
    """Several :class:`SocketNetwork` nodes sharing one event loop — the
    single-process way to run real sockets end to end (tests, benchmarks,
    and any in-process client of a socket mesh).

    Because every node lives on the hub's loop, one :meth:`poll` pumps
    the whole fabric, and global quiescence is decidable: all queues
    empty and every data frame sent was received or accounted lost."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self.nodes: List[SocketNetwork] = []

    def network(self, node_id: str, **kwargs) -> SocketNetwork:
        node = SocketNetwork(node_id, loop=self.loop, **kwargs)
        node.hub = self
        self.nodes.append(node)
        return node

    def poll(self, wait: float = 0.0, requests_only: bool = False) -> int:
        if not self.loop.is_running() and not self.loop.is_closed():
            self.loop.run_until_complete(asyncio.sleep(wait))
        return sum(node._dispatch_ready(requests_only=requests_only)
                   for node in self.nodes)

    def idle(self) -> bool:
        if not all(node.idle() for node in self.nodes):
            return False
        sent = sum(node.frames_sent for node in self.nodes)
        received = sum(node.frames_received for node in self.nodes)
        lost = sum(node.frames_lost for node in self.nodes)
        return sent == received + lost

    def run_until_idle(self, max_rounds: int = 10_000) -> int:
        total = 0
        for _ in range(max_rounds):
            total += self.poll(0.001)
            if self.idle():
                return total
        raise NetworkError("socket hub did not go idle in %d rounds"
                           % max_rounds)

    def close(self) -> None:
        for node in self.nodes:
            node.close()
        if not self.loop.is_closed():
            self.loop.close()
